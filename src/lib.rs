//! # graphmark — microbenchmark-based graph database evaluation
//!
//! A Rust reproduction of *Beyond Macrobenchmarks: Microbenchmark-based Graph
//! Database Evaluation* (Lissandrini, Brugnara & Velegrakis, PVLDB 12(4),
//! 2018). This facade crate re-exports the whole workspace:
//!
//! * [`model`] — graph data model, JSON/GraphSON, the [`model::GraphDb`] trait;
//! * [`storage`] — storage substrates (B+Tree, bitmaps, LSM, record files);
//! * seven engines ([`engines`]), one per architecture class of the paper;
//! * [`traversal`] — the Gremlin-like step machine and graph algorithms;
//! * [`datasets`] — generators for Yeast/MiCo/Freebase/LDBC-shaped data;
//! * [`core`] — the microbenchmark framework (catalog, runner, reports);
//! * [`workload`] — the concurrent multi-client driver (closed/open loop,
//!   latency histograms, scalability sweeps).
//!
//! One workspace crate sits *above* this facade and is therefore not
//! re-exported: `gm-net` (`crates/net`), the socket server front-end
//! (`gm-server` bin) and remote-engine client for network-attached
//! benchmarking — it links this crate for the engine registry.
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/concurrent_clients.rs` for the multi-client driver, and
//! `crates/net/examples/remote_clients.rs` for driving engines over a
//! socket.

pub use gm_core as core;
pub use gm_datasets as datasets;
pub use gm_model as model;
pub use gm_mvcc as mvcc;
pub use gm_shard as shard;
pub use gm_storage as storage;
pub use gm_traversal as traversal;
pub use gm_workload as workload;

/// The seven storage engines, each reproducing the physical architecture of
/// one system from the paper (Table 1).
pub mod engines {
    pub use engine_bitmap as bitmap;
    pub use engine_cluster as cluster;
    pub use engine_columnar as columnar;
    pub use engine_document as document;
    pub use engine_linked as linked;
    pub use engine_relational as relational;
    pub use engine_triple as triple;
}

/// Engine registry: the nine engine variants the benchmark compares
/// (seven architectures; the linked and columnar engines come in the two
/// versions the paper tests).
pub mod registry {
    use gm_model::GraphDb;
    use gm_mvcc::{CowCell, SnapshotMode, SnapshotSource};
    use gm_shard::{ShardedDyn, ShardedGraph, ShardedSource};

    /// One engine variant under test.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum EngineKind {
        /// Neo4j 1.9-class.
        LinkedV1,
        /// Neo4j 3.0-class.
        LinkedV2,
        /// OrientDB-class.
        Cluster,
        /// Sparksee-class.
        Bitmap,
        /// ArangoDB-class.
        Document,
        /// BlazeGraph-class.
        Triple,
        /// Sqlg/Postgres-class.
        Relational,
        /// Titan 0.5-class.
        ColumnarV05,
        /// Titan 1.0-class.
        ColumnarV10,
    }

    impl EngineKind {
        /// All nine variants, in Table 1 order.
        pub const ALL: [EngineKind; 9] = [
            EngineKind::Document,
            EngineKind::Triple,
            EngineKind::LinkedV1,
            EngineKind::LinkedV2,
            EngineKind::Cluster,
            EngineKind::Bitmap,
            EngineKind::Relational,
            EngineKind::ColumnarV05,
            EngineKind::ColumnarV10,
        ];

        /// Stable display name (matches `GraphDb::name`).
        pub fn name(&self) -> &'static str {
            match self {
                EngineKind::LinkedV1 => "linked(v1)",
                EngineKind::LinkedV2 => "linked(v2)",
                EngineKind::Cluster => "cluster",
                EngineKind::Bitmap => "bitmap",
                EngineKind::Document => "document",
                EngineKind::Triple => "triple",
                EngineKind::Relational => "relational",
                EngineKind::ColumnarV05 => "columnar(v05)",
                EngineKind::ColumnarV10 => "columnar(v10)",
            }
        }

        /// Which paper system this engine emulates.
        pub fn emulates(&self) -> &'static str {
            match self {
                EngineKind::LinkedV1 => "Neo4j 1.9",
                EngineKind::LinkedV2 => "Neo4j 3.0",
                EngineKind::Cluster => "OrientDB 2.2",
                EngineKind::Bitmap => "Sparksee 5.1",
                EngineKind::Document => "ArangoDB 2.8",
                EngineKind::Triple => "BlazeGraph 2.1.4",
                EngineKind::Relational => "Sqlg 1.2 / Postgres 9.6",
                EngineKind::ColumnarV05 => "Titan 0.5",
                EngineKind::ColumnarV10 => "Titan 1.0",
            }
        }

        /// Instantiate a fresh, empty engine.
        pub fn make(&self) -> Box<dyn GraphDb> {
            match self {
                EngineKind::LinkedV1 => Box::new(engine_linked::LinkedGraph::v1()),
                EngineKind::LinkedV2 => Box::new(engine_linked::LinkedGraph::v2()),
                EngineKind::Cluster => Box::new(engine_cluster::ClusterGraph::new()),
                EngineKind::Bitmap => Box::new(engine_bitmap::BitmapGraph::new()),
                EngineKind::Document => Box::new(engine_document::DocumentGraph::new()),
                EngineKind::Triple => Box::new(engine_triple::TripleGraph::new()),
                EngineKind::Relational => Box::new(engine_relational::RelationalGraph::new()),
                EngineKind::ColumnarV05 => Box::new(engine_columnar::ColumnarGraph::v05()),
                EngineKind::ColumnarV10 => Box::new(engine_columnar::ColumnarGraph::v10()),
            }
        }

        /// Parse a display name back to a kind.
        pub fn parse(name: &str) -> Option<EngineKind> {
            EngineKind::ALL.iter().copied().find(|k| k.name() == name)
        }

        /// Instantiate a fresh, empty MVCC snapshot source for this engine.
        ///
        /// `SnapshotMode::Cow` wraps the engine in the generic copy-on-write
        /// [`CowCell`]; `SnapshotMode::Native` uses the engine's own cheap
        /// snapshot path where one exists (the columnar variants' freeze
        /// cell over `Arc`-shared segments) and falls back to `CowCell`
        /// elsewhere.
        pub fn make_snapshot_source(&self, mode: SnapshotMode) -> Box<dyn SnapshotSource> {
            if mode == SnapshotMode::Native {
                match self {
                    EngineKind::ColumnarV05 => {
                        return Box::new(engine_columnar::native_cell(
                            engine_columnar::Variant::V05,
                        ))
                    }
                    EngineKind::ColumnarV10 => {
                        return Box::new(engine_columnar::native_cell(
                            engine_columnar::Variant::V10,
                        ))
                    }
                    _ => {}
                }
            }
            match self {
                EngineKind::LinkedV1 => Box::new(CowCell::new(engine_linked::LinkedGraph::v1())),
                EngineKind::LinkedV2 => Box::new(CowCell::new(engine_linked::LinkedGraph::v2())),
                EngineKind::Cluster => Box::new(CowCell::new(engine_cluster::ClusterGraph::new())),
                EngineKind::Bitmap => Box::new(CowCell::new(engine_bitmap::BitmapGraph::new())),
                EngineKind::Document => {
                    Box::new(CowCell::new(engine_document::DocumentGraph::new()))
                }
                EngineKind::Triple => Box::new(CowCell::new(engine_triple::TripleGraph::new())),
                EngineKind::Relational => {
                    Box::new(CowCell::new(engine_relational::RelationalGraph::new()))
                }
                EngineKind::ColumnarV05 => {
                    Box::new(CowCell::new(engine_columnar::ColumnarGraph::v05()))
                }
                EngineKind::ColumnarV10 => {
                    Box::new(CowCell::new(engine_columnar::ColumnarGraph::v10()))
                }
            }
        }

        /// Instantiate a fresh hash-partitioned composite of `shards` inner
        /// engines of this kind, each behind its own lock (`gm-shard`).
        /// With `shards == 1` the composite is bit-compatible with
        /// [`EngineKind::make`]'s engine — the sharding equivalence suite's
        /// baseline.
        pub fn make_sharded(&self, shards: usize) -> ShardedDyn {
            ShardedGraph::from_factory(shards, || self.make())
        }

        /// Instantiate a fresh snapshot-mode sharded composite: one MVCC
        /// cell (per [`EngineKind::make_snapshot_source`]) per shard, so
        /// writers to different shards never share a writer mutex and reads
        /// pin composite epochs (min over shard epochs).
        pub fn make_sharded_source(&self, shards: usize, mode: SnapshotMode) -> ShardedSource {
            ShardedSource::from_factory(shards, || self.make_snapshot_source(mode))
        }
    }
}
