//! Suite extensibility: new queries arrive as Gremlin-style scripts (§5,
//! "to test a new query it suffices to write it into a dedicated script").
//! Every script must parse, run on every engine, and return identical
//! results everywhere.

use graphmark::datasets::{self, DatasetId, Scale};
use graphmark::model::api::LoadOptions;
use graphmark::model::QueryCtx;
use graphmark::registry::EngineKind;
use graphmark::traversal::parser;

/// A few "user-contributed" query scripts over the LDBC schema.
const SCRIPTS: [&str; 7] = [
    "g.V().count()",
    "g.E().label().dedup().count()",
    "g.V().hasLabel('person').count()",
    "g.V().hasLabel('person').out('knows').dedup().count()",
    "g.V().hasLabel('forum').out('hasModerator').dedup().count()",
    "g.E().hasLabel('likes').count()",
    "g.V().hasLabel('tag').in('hasInterest').dedup().limit(5).count()",
];

#[test]
fn scripts_agree_across_engines() {
    let data = datasets::generate(DatasetId::Ldbc, Scale::tiny(), 99);
    let ctx = QueryCtx::unbounded();
    for script in SCRIPTS {
        let traversal = parser::parse(script).unwrap_or_else(|e| panic!("{script}: {e}"));
        let mut want: Option<i64> = None;
        for kind in EngineKind::ALL {
            let mut db = kind.make();
            db.bulk_load(&data, &LoadOptions::default()).expect("load");
            let got = traversal
                .run_count(db.as_ref(), &ctx)
                .unwrap_or_else(|e| panic!("{} on `{script}`: {e}", kind.name()));
            match want {
                None => want = Some(got),
                Some(w) => assert_eq!(got, w, "{} disagrees on `{script}`", kind.name()),
            }
        }
        assert!(want.unwrap_or(0) >= 0);
    }
}

#[test]
fn scripts_observe_deadlines() {
    let data = datasets::generate(DatasetId::Mico, Scale::tiny(), 7);
    let traversal = parser::parse("g.V().out().dedup().count()").expect("parse");
    let mut db = EngineKind::Triple.make();
    db.bulk_load(&data, &LoadOptions::default()).expect("load");
    let ctx = QueryCtx::with_timeout(std::time::Duration::from_nanos(1));
    std::thread::sleep(std::time::Duration::from_millis(1));
    let result = traversal.run_count(db.as_ref(), &ctx);
    assert_eq!(result, Err(graphmark::model::GdbError::Timeout));
}
