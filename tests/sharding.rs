//! Sharded-vs-unsharded equivalence suite.
//!
//! The contract of `gm-shard`: a `ShardedGraph<E>` (or sharded snapshot
//! source) answers **every** query exactly like the unsharded engine `E` —
//! partitioning may only change *where* data lives and *what* runs in
//! parallel, never an answer. Checked for every engine variant and shard
//! counts {1, 2, 4}, under locked and snapshot isolation:
//!
//! 1. concurrent read-only driver runs match the unsharded sequential
//!    replay op for op;
//! 2. the full Table-2 query suite — reads, traversals, BFS, shortest
//!    paths, *and mutations* — produces identical cardinalities in order;
//! 3. the user-contributed Gremlin-style query scripts agree;
//! 4. traversal results agree at the canonical-id level (not just counts),
//!    so cross-shard hops land on the *same* vertices;
//! 5. the sequential `Runner` accepts a sharded composite unchanged.

use std::collections::BTreeSet;

use graphmark::core::catalog::{self, QueryInstance};
use graphmark::core::params::Workload;
use graphmark::core::report::{Outcome, RunMode};
use graphmark::core::runner::{BenchConfig, Runner};
use graphmark::model::api::{Direction, GraphDb, GraphSnapshot, LoadOptions};
use graphmark::model::{testkit, QueryCtx};
use graphmark::mvcc::{SnapshotMode, SnapshotSource};
use graphmark::registry::EngineKind;
use graphmark::shard::{run_sharded, ShardedGraph};
use graphmark::traversal::parser;
use graphmark::workload::{
    run_sequential, run_snapshot, run_snapshot_sequential, MixKind, WorkloadConfig, WORKLOAD_SLOTS,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn cfg(mix: MixKind, threads: u32, ops: u64) -> WorkloadConfig {
    WorkloadConfig {
        mix,
        threads,
        ops_per_worker: ops,
        seed: 77,
        record_cardinalities: true,
        ..WorkloadConfig::default()
    }
}

/// 1. The concurrent sharded driver (per-shard locks) reproduces the
///    unsharded sequential replay on a read-only mix — for every engine
///    variant and shard count.
#[test]
fn sharded_read_only_matches_unsharded_sequential_on_every_engine() {
    let data = testkit::chain_dataset(150);
    for kind in EngineKind::ALL {
        let factory = move || kind.make();
        let c = cfg(MixKind::ReadOnly, 3, 20);
        let unsharded = run_sequential(&factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}: unsharded replay failed: {e}", kind.name()));
        for shards in SHARD_COUNTS {
            let sharded = run_sharded(&factory, shards, &data, &c)
                .unwrap_or_else(|e| panic!("{}/s{shards}: sharded run failed: {e}", kind.name()));
            assert_eq!(
                sharded.cardinality_trace(),
                unsharded.cardinality_trace(),
                "{}/s{shards}: sharded reads must equal the unsharded replay",
                kind.name()
            );
            assert_eq!(sharded.errors(), 0, "{}/s{shards}", kind.name());
            assert_eq!(sharded.isolation, "sharded-locked");
            assert!(
                sharded.engine.ends_with(&format!("/s{shards}")),
                "engine label carries the shard count: {}",
                sharded.engine
            );
        }
    }
}

/// 1b. Snapshot-mode sharding (one MVCC cell per shard, composite epochs)
///    reproduces the same answers — for every engine at 2 shards, and across
///    all shard counts for one engine.
#[test]
fn sharded_snapshot_reads_match_unsharded_on_every_engine() {
    let data = testkit::chain_dataset(150);
    let c = cfg(MixKind::ReadOnly, 3, 15);
    for kind in EngineKind::ALL {
        let factory = move || kind.make();
        let unsharded = run_sequential(&factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}: unsharded replay failed: {e}", kind.name()));
        let src_factory = move || -> Box<dyn SnapshotSource> {
            Box::new(kind.make_sharded_source(2, SnapshotMode::Cow))
        };
        let snap = run_snapshot(&src_factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}/s2 snapshot run failed: {e}", kind.name()));
        assert_eq!(
            snap.cardinality_trace(),
            unsharded.cardinality_trace(),
            "{}/s2: snapshot-sharded reads must equal the unsharded replay",
            kind.name()
        );
        assert_eq!(
            snap.epoch_skew(),
            0,
            "{}: composite epochs never skew",
            kind.name()
        );
        assert_eq!(snap.errors(), 0, "{}", kind.name());
    }
    // All shard counts on one engine, concurrent and sequential snapshot
    // paths both.
    let kind = EngineKind::LinkedV2;
    let factory = move || kind.make();
    let unsharded = run_sequential(&factory, &data, &c).unwrap();
    for shards in SHARD_COUNTS {
        let src_factory = move || -> Box<dyn SnapshotSource> {
            Box::new(kind.make_sharded_source(shards, SnapshotMode::Cow))
        };
        for report in [
            run_snapshot(&src_factory, &data, &c).unwrap(),
            run_snapshot_sequential(&src_factory, &data, &c).unwrap(),
        ] {
            assert_eq!(
                report.cardinality_trace(),
                unsharded.cardinality_trace(),
                "linked(v2)/s{shards}: {} trace",
                report.isolation
            );
        }
    }
}

/// 2. The full Table-2 suite — including the mutating queries — produces
///    identical cardinalities in execution order, and leaves both graphs in
///    agreeing end states.
#[test]
fn full_query_suite_agrees_op_for_op_on_every_engine() {
    let data = testkit::chain_dataset(120);
    let workload = Workload::choose(&data, 13, WORKLOAD_SLOTS);
    let ctx = QueryCtx::unbounded();
    for kind in EngineKind::ALL {
        // Reference: the unsharded engine runs the whole suite once.
        let mut reference = kind.make();
        reference.bulk_load(&data, &LoadOptions::default()).unwrap();
        let ref_params = workload.resolve(reference.as_ref()).unwrap();
        let suite = QueryInstance::full_suite(ref_params.k);
        let mut expected = Vec::with_capacity(suite.len());
        for inst in &suite {
            expected.push(
                catalog::execute(inst, reference.as_mut(), &ref_params, 0, &ctx)
                    .map_err(|e| e.to_string()),
            );
        }
        for shards in SHARD_COUNTS {
            let mut sharded = ShardedGraph::from_factory(shards, || kind.make());
            sharded.bulk_load(&data, &LoadOptions::default()).unwrap();
            let params = workload.resolve(&sharded).unwrap();
            for (inst, want) in suite.iter().zip(&expected) {
                let got = catalog::execute(inst, &mut sharded, &params, 0, &ctx)
                    .map_err(|e| e.to_string());
                // Error *messages* carry engine-internal ids, so compare
                // outcome shape + cardinality, not message text.
                match (&got, want) {
                    (Ok(g), Ok(w)) => assert_eq!(
                        g,
                        w,
                        "{}/s{shards}: {} cardinality diverged",
                        kind.name(),
                        inst.name()
                    ),
                    (Err(_), Err(_)) => {}
                    _ => panic!(
                        "{}/s{shards}: {} outcome diverged (sharded {got:?}, unsharded {want:?})",
                        kind.name(),
                        inst.name()
                    ),
                }
            }
            // End states agree on the whole-graph aggregates.
            assert_eq!(
                sharded.vertex_count(&ctx).unwrap(),
                reference.vertex_count(&ctx).unwrap(),
                "{}/s{shards}: end-state vertex count",
                kind.name()
            );
            assert_eq!(
                sharded.edge_count(&ctx).unwrap(),
                reference.edge_count(&ctx).unwrap(),
                "{}/s{shards}: end-state edge count",
                kind.name()
            );
            assert_eq!(
                sharded.edge_label_set(&ctx).unwrap().len(),
                reference.edge_label_set(&ctx).unwrap().len(),
                "{}/s{shards}: end-state label set",
                kind.name()
            );
        }
    }
}

/// 3. The "user-contributed" Gremlin-style scripts (suite extensibility, §5)
///    agree between sharded and unsharded deployments of every engine.
#[test]
fn query_scripts_agree_sharded_vs_unsharded() {
    let data = graphmark::datasets::generate(
        graphmark::datasets::DatasetId::Ldbc,
        graphmark::datasets::Scale::tiny(),
        99,
    );
    let scripts = [
        "g.V().count()",
        "g.E().label().dedup().count()",
        "g.V().hasLabel('person').count()",
        "g.V().hasLabel('person').out('knows').dedup().count()",
        "g.E().hasLabel('likes').count()",
    ];
    let ctx = QueryCtx::unbounded();
    for kind in [
        EngineKind::LinkedV2,
        EngineKind::Relational,
        EngineKind::Triple,
    ] {
        let mut reference = kind.make();
        reference.bulk_load(&data, &LoadOptions::default()).unwrap();
        for shards in [2usize, 4] {
            let mut sharded = ShardedGraph::from_factory(shards, || kind.make());
            sharded.bulk_load(&data, &LoadOptions::default()).unwrap();
            for script in scripts {
                let traversal = parser::parse(script).unwrap();
                let want = traversal.run_count(reference.as_ref(), &ctx).unwrap();
                let got = traversal
                    .run_count(&sharded, &ctx)
                    .unwrap_or_else(|e| panic!("{}/s{shards} `{script}`: {e}", kind.name()));
                assert_eq!(
                    got,
                    want,
                    "{}/s{shards} disagrees on `{script}`",
                    kind.name()
                );
            }
        }
    }
}

/// 4. Canonical-level traversal equivalence: cross-shard hops land on the
///    *same vertices*, not just the same counts. Composite and unsharded ids
///    differ, so results are mapped back to canonical ids through the resolve
///    tables before comparison.
#[test]
fn traversals_agree_at_canonical_level_across_shards() {
    let data = testkit::chain_dataset(80);
    let kind = EngineKind::LinkedV2;
    let ctx = QueryCtx::unbounded();

    // canonical → internal maps for both deployments, inverted for lookup.
    let canonicalize = |db: &dyn GraphSnapshot| -> std::collections::HashMap<u64, u64> {
        (0..80u64)
            .map(|c| (db.resolve_vertex(c).expect("resolves").0, c))
            .collect()
    };

    let mut reference = kind.make();
    reference.bulk_load(&data, &LoadOptions::default()).unwrap();
    let ref_inv = canonicalize(reference.as_ref());

    for shards in SHARD_COUNTS {
        let mut sharded = ShardedGraph::from_factory(shards, || kind.make());
        sharded.bulk_load(&data, &LoadOptions::default()).unwrap();
        let sh_inv = canonicalize(&sharded);

        for canonical in (0..80u64).step_by(7) {
            let rv = reference.resolve_vertex(canonical).unwrap();
            let sv = sharded.resolve_vertex(canonical).unwrap();
            for dir in Direction::ALL {
                let want: BTreeSet<u64> = reference
                    .neighbors(rv, dir, None, &ctx)
                    .unwrap()
                    .into_iter()
                    .map(|v| ref_inv[&v.0])
                    .collect();
                let got: BTreeSet<u64> = sharded
                    .neighbors(sv, dir, None, &ctx)
                    .unwrap()
                    .into_iter()
                    .map(|v| sh_inv[&v.0])
                    .collect();
                assert_eq!(
                    got, want,
                    "s{shards}: neighbors({canonical}, {dir:?}) canonical sets"
                );
            }
            // BFS frontier from this anchor, depth 3, canonical sets.
            let want: BTreeSet<u64> =
                graphmark::traversal::algo::bfs(reference.as_ref(), rv, 3, None, &ctx)
                    .unwrap()
                    .into_iter()
                    .map(|v| ref_inv[&v.0])
                    .collect();
            let got: BTreeSet<u64> = graphmark::traversal::algo::bfs(&sharded, sv, 3, None, &ctx)
                .unwrap()
                .into_iter()
                .map(|v| sh_inv[&v.0])
                .collect();
            assert_eq!(got, want, "s{shards}: bfs({canonical}, d=3) canonical sets");
        }
    }
}

/// 5. The sequential `Runner` accepts a sharded composite unchanged (the
///    "drops into the harness" half of the tentpole).
#[test]
fn runner_accepts_sharded_composite() {
    let data = testkit::chain_dataset(100);
    let kind = EngineKind::Cluster;
    let workload = Workload::choose(&data, 5, 16);

    let sharded_factory =
        move || -> Box<dyn GraphDb> { Box::new(ShardedGraph::from_factory(3, || kind.make())) };
    let mut sharded_runner =
        Runner::new(&sharded_factory, &data, &workload, BenchConfig::default());
    assert_eq!(sharded_runner.engine_name(), "cluster/s3");

    let plain_factory = move || kind.make();
    let mut plain_runner = Runner::new(&plain_factory, &data, &workload, BenchConfig::default());

    for id in [
        graphmark::core::catalog::QueryId::Q8,
        graphmark::core::catalog::QueryId::Q9,
        graphmark::core::catalog::QueryId::Q22,
        graphmark::core::catalog::QueryId::Q28,
        graphmark::core::catalog::QueryId::Q32,
        graphmark::core::catalog::QueryId::Q34,
    ] {
        let inst = QueryInstance::plain(id);
        let sharded = sharded_runner.run_instance(&inst, RunMode::Isolation);
        let plain = plain_runner.run_instance(&inst, RunMode::Isolation);
        assert_eq!(sharded.outcome, Outcome::Completed, "{id:?}");
        assert_eq!(
            sharded.cardinality, plain.cardinality,
            "{id:?}: sharded Runner answer must equal unsharded"
        );
    }
}
