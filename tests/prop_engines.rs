//! Model-based property test: all nine engines vs a naive reference graph.
//!
//! Random mutation sequences (vertex/edge adds, property updates, removals)
//! are applied simultaneously to every engine and to a trivially correct
//! in-memory model; afterwards every read and traversal primitive must
//! agree. This is the strongest guarantee behind the benchmark's fairness
//! claim — engines can only differ in *time*, never in *answers*.

#![allow(clippy::type_complexity)]

use gm_model::api::{Direction, GraphDb};
use gm_model::value::prop_get;
use gm_model::{QueryCtx, Value, Vid};
use graphmark::registry::EngineKind;
use proptest::prelude::*;

/// Reference implementation: plain vectors, obviously correct.
#[derive(Default, Clone, Debug)]
struct RefGraph {
    vertices: Vec<Option<(String, Vec<(String, Value)>)>>,
    edges: Vec<Option<(usize, usize, String, Vec<(String, Value)>)>>,
}

impl RefGraph {
    fn live_vertices(&self) -> Vec<usize> {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    fn live_edges(&self) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    fn add_vertex(&mut self, label: &str, props: Vec<(String, Value)>) -> usize {
        self.vertices.push(Some((label.to_string(), props)));
        self.vertices.len() - 1
    }

    fn add_edge(&mut self, src: usize, dst: usize, label: &str) -> usize {
        self.edges
            .push(Some((src, dst, label.to_string(), Vec::new())));
        self.edges.len() - 1
    }

    fn remove_vertex(&mut self, v: usize) {
        self.vertices[v] = None;
        for e in self.edges.iter_mut() {
            if let Some((s, d, _, _)) = e {
                if *s == v || *d == v {
                    *e = None;
                }
            }
        }
    }

    fn neighbors(&self, v: usize, dir: Direction) -> Vec<usize> {
        let mut out = Vec::new();
        for e in self.edges.iter().flatten() {
            let (s, d, _, _) = e;
            if matches!(dir, Direction::Out | Direction::Both) && *s == v {
                out.push(*d);
            }
            if matches!(dir, Direction::In | Direction::Both) && *d == v {
                out.push(*s);
            }
        }
        out.sort_unstable();
        out
    }

    fn degree(&self, v: usize, dir: Direction) -> u64 {
        self.neighbors(v, dir).len() as u64
    }

    fn label_set(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .edges
            .iter()
            .flatten()
            .map(|(_, _, l, _)| l.clone())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }
}

#[derive(Debug, Clone)]
enum Op {
    AddVertex(u8, bool), // label selector, with property?
    AddEdge(u8, u8, u8), // src selector, dst selector, label selector
    SetVertexProp(u8, i64),
    RemoveEdge(u8),
    RemoveVertex(u8),
    RemoveVertexProp(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (any::<u8>(), any::<bool>()).prop_map(|(l, p)| Op::AddVertex(l, p)),
            4 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, l)| Op::AddEdge(a, b, l)),
            2 => (any::<u8>(), any::<i64>()).prop_map(|(v, x)| Op::SetVertexProp(v, x)),
            1 => any::<u8>().prop_map(Op::RemoveEdge),
            1 => any::<u8>().prop_map(Op::RemoveVertex),
            1 => any::<u8>().prop_map(Op::RemoveVertexProp),
        ],
        1..50,
    )
}

const LABELS: [&str; 3] = ["alpha", "beta", "gamma"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engines_match_reference_model(ops in arb_ops()) {
        let ctx = QueryCtx::unbounded();
        let mut model = RefGraph::default();
        // Engine state + model-index → engine-Vid/Eid maps.
        let mut engines: Vec<(Box<dyn GraphDb>, Vec<Vid>, Vec<gm_model::Eid>)> =
            EngineKind::ALL
                .iter()
                .map(|k| (k.make(), Vec::new(), Vec::new()))
                .collect();

        for op in &ops {
            match op {
                Op::AddVertex(l, with_prop) => {
                    let label = LABELS[*l as usize % LABELS.len()];
                    let props = if *with_prop {
                        vec![("p".to_string(), Value::Int(*l as i64))]
                    } else {
                        Vec::new()
                    };
                    model.add_vertex(label, props.clone());
                    for (db, vmap, _) in engines.iter_mut() {
                        let vid = db.add_vertex(label, &props).expect("add_vertex");
                        vmap.push(vid);
                    }
                }
                Op::AddEdge(a, b, l) => {
                    let live = model.live_vertices();
                    if live.is_empty() {
                        continue;
                    }
                    let src = live[*a as usize % live.len()];
                    let dst = live[*b as usize % live.len()];
                    let label = LABELS[*l as usize % LABELS.len()];
                    model.add_edge(src, dst, label);
                    for (db, vmap, emap) in engines.iter_mut() {
                        let eid = db
                            .add_edge(vmap[src], vmap[dst], label, &Vec::new())
                            .expect("add_edge");
                        emap.push(eid);
                    }
                }
                Op::SetVertexProp(sel, value) => {
                    let live = model.live_vertices();
                    if live.is_empty() {
                        continue;
                    }
                    let v = live[*sel as usize % live.len()];
                    let entry = model.vertices[v].as_mut().expect("live");
                    gm_model::value::prop_set(&mut entry.1, "p", Value::Int(*value));
                    for (db, vmap, _) in engines.iter_mut() {
                        db.set_vertex_property(vmap[v], "p", Value::Int(*value))
                            .expect("set prop");
                    }
                }
                Op::RemoveEdge(sel) => {
                    let live = model.live_edges();
                    if live.is_empty() {
                        continue;
                    }
                    let e = live[*sel as usize % live.len()];
                    model.edges[e] = None;
                    for (db, _, emap) in engines.iter_mut() {
                        db.remove_edge(emap[e]).expect("remove_edge");
                    }
                }
                Op::RemoveVertex(sel) => {
                    let live = model.live_vertices();
                    if live.is_empty() {
                        continue;
                    }
                    let v = live[*sel as usize % live.len()];
                    model.remove_vertex(v);
                    for (db, vmap, _) in engines.iter_mut() {
                        db.remove_vertex(vmap[v]).expect("remove_vertex");
                    }
                }
                Op::RemoveVertexProp(sel) => {
                    let live = model.live_vertices();
                    if live.is_empty() {
                        continue;
                    }
                    let v = live[*sel as usize % live.len()];
                    let expect = {
                        let entry = model.vertices[v].as_mut().expect("live");
                        gm_model::value::prop_remove(&mut entry.1, "p")
                    };
                    for (db, vmap, _) in engines.iter_mut() {
                        let got = db.remove_vertex_property(vmap[v], "p").expect("remove prop");
                        prop_assert_eq!(&got, &expect, "{} remove prop", db.name());
                    }
                }
            }
        }

        // ---- verification against the model --------------------------------
        let v_count = model.live_vertices().len() as u64;
        let e_count = model.live_edges().len() as u64;
        let labels = model.label_set();
        for (db, vmap, _) in engines.iter() {
            let name = db.name();
            prop_assert_eq!(db.vertex_count(&ctx).unwrap(), v_count, "{} |V|", name);
            prop_assert_eq!(db.edge_count(&ctx).unwrap(), e_count, "{} |E|", name);
            let mut got_labels = db.edge_label_set(&ctx).unwrap();
            got_labels.sort();
            prop_assert_eq!(&got_labels, &labels, "{} labels", name);

            for v in model.live_vertices() {
                // Degrees in all directions.
                for dir in Direction::ALL {
                    prop_assert_eq!(
                        db.vertex_degree(vmap[v], dir, &ctx).unwrap(),
                        model.degree(v, dir),
                        "{} degree({}, {:?})", name, v, dir
                    );
                }
                // Neighbor multisets (mapped back through vmap).
                let rev: std::collections::HashMap<Vid, usize> = vmap
                    .iter()
                    .enumerate()
                    .map(|(i, vid)| (*vid, i))
                    .collect();
                for dir in Direction::ALL {
                    let mut got: Vec<usize> = db
                        .neighbors(vmap[v], dir, None, &ctx)
                        .unwrap()
                        .into_iter()
                        .map(|n| rev[&n])
                        .collect();
                    got.sort_unstable();
                    prop_assert_eq!(
                        &got,
                        &model.neighbors(v, dir),
                        "{} neighbors({}, {:?})", name, v, dir
                    );
                }
                // Property agreement.
                let want = model.vertices[v]
                    .as_ref()
                    .and_then(|(_, props)| prop_get(props, "p").cloned());
                prop_assert_eq!(
                    db.vertex_property(vmap[v], "p").unwrap(),
                    want,
                    "{} prop of {}", name, v
                );
            }
            // Property search agrees with a model filter.
            let hits = db
                .vertices_with_property("p", &Value::Int(1), &ctx)
                .unwrap()
                .len();
            let want = model
                .vertices
                .iter()
                .flatten()
                .filter(|(_, props)| prop_get(props, "p") == Some(&Value::Int(1)))
                .count();
            prop_assert_eq!(hits, want, "{} Q11", name);
        }
    }
}
