//! Cross-engine tests for the concurrent workload driver (`gm-workload`).
//!
//! Three guarantees, checked on **every** engine variant:
//!
//! 1. a mixed read/write multi-client run completes without panics or op
//!    errors;
//! 2. the merged latency histogram is consistent: bucket counts sum to the
//!    op count, cumulative counts are monotone, and quantiles are ordered;
//! 3. read-only concurrency is *invisible*: a concurrent run's per-op
//!    results equal a sequential replay of the same seed, and both equal
//!    the sequential `Runner`'s answer for the same query instances.

use std::time::{Duration, Instant};

use graphmark::core::catalog::{execute, QueryInstance};
use graphmark::core::params::Workload;
use graphmark::core::report::{Outcome, RunMode};
use graphmark::core::runner::{BenchConfig, Runner};
use graphmark::model::testkit;
use graphmark::registry::EngineKind;
use graphmark::workload::{run, run_sequential, MixKind, Op, Pacing, WorkloadConfig, SHED_CARD};

fn cfg(mix: MixKind, threads: u32, ops: u64) -> WorkloadConfig {
    WorkloadConfig {
        mix,
        threads,
        ops_per_worker: ops,
        seed: 1234,
        record_cardinalities: true,
        ..WorkloadConfig::default()
    }
}

/// Guarantee 1: every engine survives a concurrent mixed workload.
#[test]
fn mixed_run_completes_on_every_engine() {
    let data = testkit::chain_dataset(150);
    for kind in EngineKind::ALL {
        let factory = move || kind.make();
        let report = run(&factory, &data, &cfg(MixKind::Mixed, 4, 40))
            .unwrap_or_else(|e| panic!("{}: driver failed: {e}", kind.name()));
        assert_eq!(
            report.ops() + report.errors(),
            4 * 40,
            "{}: all ops accounted for",
            kind.name()
        );
        assert_eq!(report.errors(), 0, "{}: no op errors", kind.name());
    }
}

/// Guarantee 2: histogram bookkeeping is internally consistent.
#[test]
fn histogram_counts_are_monotone_and_complete() {
    let data = testkit::chain_dataset(150);
    for kind in [
        EngineKind::LinkedV2,
        EngineKind::ColumnarV05,
        EngineKind::Triple,
    ] {
        let factory = move || kind.make();
        let report = run(&factory, &data, &cfg(MixKind::Mixed, 3, 50)).unwrap();
        let h = &report.hist;
        let bucket_sum: u64 = h.buckets().iter().sum();
        assert_eq!(
            bucket_sum,
            h.count(),
            "{}: buckets sum to count",
            kind.name()
        );
        assert_eq!(h.count(), 3 * 50, "{}: every op recorded", kind.name());
        // Monotone histograms: the quantile function must be non-decreasing
        // in q, and the bucket prefix sums must end exactly at the count.
        let mut prev_q = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(
                v >= prev_q,
                "{}: quantile({q}) = {v} < previous {prev_q}",
                kind.name()
            );
            prev_q = v;
        }
        let prefix_end: u64 = h.buckets().iter().sum();
        assert_eq!(prefix_end, h.count(), "{}: prefix sums close", kind.name());
        assert!(h.p50() <= h.p95(), "{}: p50 <= p95", kind.name());
        assert!(h.p95() <= h.p99(), "{}: p95 <= p99", kind.name());
        assert!(h.p99() <= h.max_nanos(), "{}: p99 <= max", kind.name());
        assert!(h.min_nanos() <= h.p50(), "{}: min <= p50", kind.name());
        // Per-worker histograms merge into exactly the totals.
        let worker_sum: u64 = report.workers.iter().map(|w| w.hist.count()).sum();
        assert_eq!(worker_sum, h.count(), "{}: merge is lossless", kind.name());
    }
}

/// Guarantee 3a: concurrent read-only results equal the sequential replay.
#[test]
fn concurrent_reads_match_sequential_on_every_engine() {
    let data = testkit::chain_dataset(200);
    for kind in EngineKind::ALL {
        let factory = move || kind.make();
        let c = cfg(MixKind::ReadOnly, 4, 30);
        let concurrent = run(&factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}: concurrent run failed: {e}", kind.name()));
        let sequential = run_sequential(&factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", kind.name()));
        assert_eq!(
            concurrent.cardinality_trace(),
            sequential.cardinality_trace(),
            "{}: concurrent read results must match the sequential replay",
            kind.name()
        );
        assert_eq!(concurrent.errors(), 0, "{}: reads never error", kind.name());
    }
}

/// Guarantee 3b: the driver's per-op answers equal the sequential `Runner`
/// executing the same query instances on the same seed.
#[test]
fn driver_results_match_sequential_runner() {
    let data = testkit::chain_dataset(200);
    let kind = EngineKind::LinkedV1;
    let c = cfg(MixKind::ReadOnly, 2, 25);

    // What the driver answered, op by op.
    let factory = move || kind.make();
    let report = run(&factory, &data, &c).unwrap();

    // The same op sequence replayed through catalog::execute on a fresh
    // engine (the Runner's execution path), with the same Workload seed.
    let mix = c.mix.mix();
    let workload = Workload::choose(&data, c.seed, 16);
    let mut db = kind.make();
    db.bulk_load(&data, &graphmark::model::api::LoadOptions::default())
        .unwrap();
    let params = workload.resolve(db.as_ref()).unwrap();
    let ctx = graphmark::model::QueryCtx::unbounded();
    let mut expected = Vec::new();
    for worker in 0..c.threads as usize {
        for op in mix.sequence(c.seed, worker, c.ops_per_worker) {
            match op {
                Op::Read(inst) => {
                    expected.push(execute(&inst, db.as_mut(), &params, 0, &ctx).unwrap())
                }
                Op::Write(_) => unreachable!("read-only mix"),
            }
        }
    }
    assert_eq!(
        report.cardinality_trace(),
        expected,
        "driver answers equal catalog::execute on the same seed"
    );

    // And the Runner agrees for a representative instance (Q8).
    let runner_factory = move || kind.make();
    let mut runner = Runner::new(&runner_factory, &data, &workload, BenchConfig::default());
    let q8 = QueryInstance::plain(graphmark::core::catalog::QueryId::Q8);
    let m = runner.run_instance(&q8, RunMode::Isolation);
    assert_eq!(m.outcome, Outcome::Completed);
    assert_eq!(m.cardinality, Some(data.vertex_count() as u64));
}

/// Overload guarantee: an open-loop run offered far more than an engine can
/// absorb terminates within a wall-clock bound, reports `shed > 0`, keeps
/// `ops + errors + shed == threads * ops_per_worker`, and — because shedding
/// never advances or skips the deterministic op stream — every *executed*
/// position of a read-only trace still matches the sequential replay.
#[test]
fn overloaded_open_loop_sheds_is_bounded_and_deterministic() {
    let data = testkit::chain_dataset(1_500);
    for kind in [EngineKind::LinkedV2, EngineKind::Triple] {
        let factory = move || kind.make();
        let c = WorkloadConfig {
            // Scan-heavy is read-only and slow per op: offered at 2M ops/s
            // it overloads every engine, so the 5 ms backlog bound engages.
            pacing: Pacing::open_bounded(2_000_000.0, Duration::from_millis(5)),
            ..cfg(MixKind::ScanHeavy, 2, 1_500)
        };
        let t0 = Instant::now();
        let report = run(&factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}: overload run failed: {e}", kind.name()));
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "{}: overload run must terminate in bounded time",
            kind.name()
        );
        assert!(report.shed() > 0, "{}: overload must shed", kind.name());
        assert_eq!(
            report.ops() + report.errors() + report.shed(),
            2 * 1_500,
            "{}: completed + errored + shed covers every scheduled op",
            kind.name()
        );
        assert_eq!(
            report.hist.count(),
            report.ops() + report.errors(),
            "{}: shed ops stay out of the latency histogram",
            kind.name()
        );
        // The scaling row and CSV carry the shed/offered accounting.
        let row = report.scaling_row();
        assert_eq!(row.shed, report.shed(), "{}", kind.name());
        assert_eq!(
            row.offered_ops_per_sec,
            Some(2_000_000.0),
            "{}",
            kind.name()
        );
        let csv = graphmark::core::summary::scaling_to_csv(&[row]);
        assert!(csv.contains("2000000.0"), "{}: {csv}", kind.name());

        // Read-only determinism under shedding.
        let sequential = run_sequential(&factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}: sequential replay failed: {e}", kind.name()));
        let (ct, st) = (report.cardinality_trace(), sequential.cardinality_trace());
        assert_eq!(ct.len(), st.len(), "{}", kind.name());
        for (i, (c, s)) in ct.iter().zip(st.iter()).enumerate() {
            if *c != SHED_CARD {
                assert_eq!(
                    c,
                    s,
                    "{}: executed position {i} must match the sequential replay",
                    kind.name()
                );
            }
        }
    }
}

/// The scalability sweep wiring: scaling rows render for a 1→2-thread sweep.
#[test]
fn scaling_rows_render() {
    let data = testkit::chain_dataset(120);
    let mut rows = Vec::new();
    for threads in [1, 2] {
        let kind = EngineKind::Relational;
        let factory = move || kind.make();
        let report = run(&factory, &data, &cfg(MixKind::ReadHeavy, threads, 30)).unwrap();
        rows.push(report.scaling_row());
    }
    let text = graphmark::core::summary::render_scaling(&rows);
    assert!(text.contains("relational/read-heavy"), "{text}");
    assert!(text.contains("1.00x"), "baseline speedup present:\n{text}");
    let csv = graphmark::core::summary::scaling_to_csv(&rows);
    assert_eq!(csv.lines().count(), 3);
}
