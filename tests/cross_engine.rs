//! Cross-engine equivalence: the foundation of the whole benchmark.
//!
//! Every engine must return *identical answers* for every query — only the
//! latencies may differ (§5, *Fairness*). These tests load the same
//! datasets into all nine engine variants and compare results element by
//! element through canonical ids.

use std::collections::BTreeSet;

use graphmark::core::catalog::{execute, QueryId, QueryInstance};
use graphmark::core::params::Workload;
use graphmark::datasets::{self, DatasetId, Scale};
use graphmark::model::api::{Direction, GraphDb, LoadOptions};
use graphmark::model::{Dataset, QueryCtx};
use graphmark::registry::EngineKind;

fn load_all(data: &Dataset) -> Vec<Box<dyn GraphDb>> {
    EngineKind::ALL
        .iter()
        .map(|k| {
            let mut db = k.make();
            db.bulk_load(data, &LoadOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to load: {e}", k.name()));
            db
        })
        .collect()
}

/// Map internal neighbor ids back to canonical ids via a reverse map.
fn canonical_neighbors(
    db: &dyn GraphDb,
    data: &Dataset,
    canonical_v: u64,
    dir: Direction,
    label: Option<&str>,
) -> Vec<u64> {
    let ctx = QueryCtx::unbounded();
    let v = db.resolve_vertex(canonical_v).expect("resolve");
    // Reverse map: internal -> canonical.
    let mut rev = std::collections::HashMap::new();
    for c in 0..data.vertex_count() as u64 {
        rev.insert(db.resolve_vertex(c).expect("resolve all"), c);
    }
    let mut out: Vec<u64> = db
        .neighbors(v, dir, label, &ctx)
        .expect("neighbors")
        .into_iter()
        .map(|n| rev[&n])
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn all_engines_agree_on_yeast() {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 11);
    let engines = load_all(&data);
    let ctx = QueryCtx::unbounded();

    let expected_v = data.vertex_count() as u64;
    let expected_e = data.edge_count() as u64;
    let expected_labels: BTreeSet<String> = data
        .edge_label_set()
        .into_iter()
        .map(String::from)
        .collect();

    for db in &engines {
        assert_eq!(
            db.vertex_count(&ctx).unwrap(),
            expected_v,
            "{} vertex count",
            db.name()
        );
        assert_eq!(
            db.edge_count(&ctx).unwrap(),
            expected_e,
            "{} edge count",
            db.name()
        );
        let labels: BTreeSet<String> = db.edge_label_set(&ctx).unwrap().into_iter().collect();
        assert_eq!(labels, expected_labels, "{} label set", db.name());
    }
}

#[test]
fn all_engines_agree_on_neighborhoods() {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 13);
    let engines = load_all(&data);
    // Pick a handful of vertices with edges.
    let degrees = data.degrees();
    let picks: Vec<u64> = (0..data.vertex_count() as u64)
        .filter(|&v| degrees[v as usize].total() > 0)
        .take(8)
        .collect();
    let reference = &engines[0];
    for &v in &picks {
        for dir in Direction::ALL {
            let want = canonical_neighbors(reference.as_ref(), &data, v, dir, None);
            for db in &engines[1..] {
                let got = canonical_neighbors(db.as_ref(), &data, v, dir, None);
                assert_eq!(
                    got,
                    want,
                    "{} neighbors({v}, {dir:?}) disagree with {}",
                    db.name(),
                    reference.name()
                );
            }
        }
    }
}

#[test]
fn all_engines_agree_on_full_query_suite() {
    let data = datasets::generate(DatasetId::Ldbc, Scale::tiny(), 17);
    let workload = Workload::choose(&data, 23, 12);
    let suite = QueryInstance::full_suite(workload.k);
    let ctx = QueryCtx::unbounded();

    // Reference cardinalities from the linked(v1) engine.
    let mut reference: Vec<(String, u64)> = Vec::new();
    {
        let mut db = EngineKind::LinkedV1.make();
        db.bulk_load(&data, &LoadOptions::default()).unwrap();
        let params = workload.resolve(db.as_ref()).unwrap();
        for inst in &suite {
            let card = execute(inst, db.as_mut(), &params, 0, &ctx)
                .unwrap_or_else(|e| panic!("linked(v1) {}: {e}", inst.name()));
            reference.push((inst.name(), card));
        }
    }

    for kind in EngineKind::ALL.iter().skip(1) {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).unwrap();
        let params = workload.resolve(db.as_ref()).unwrap();
        for (inst, (name, want)) in suite.iter().zip(&reference) {
            match execute(inst, db.as_mut(), &params, 0, &ctx) {
                Ok(card) => {
                    assert_eq!(
                        card,
                        *want,
                        "{} disagrees on {name} (got {card}, want {want})",
                        kind.name()
                    );
                }
                Err(gm_err) => {
                    // The bitmap engine's adapter-faithful degree-scan
                    // failure is the only sanctioned divergence.
                    assert!(
                        matches!(gm_err, graphmark::model::GdbError::ResourceExhausted(_))
                            && matches!(inst.id, QueryId::Q28 | QueryId::Q29 | QueryId::Q30),
                        "{} failed {name}: {gm_err}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn deletions_cascade_identically() {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 29);
    let workload = Workload::choose(&data, 31, 6);
    let ctx = QueryCtx::unbounded();
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).unwrap();
        let params = workload.resolve(db.as_ref()).unwrap();
        for round in 0..3 {
            db.remove_vertex(params.delete_vertex(round)).unwrap();
        }
        results.push((
            kind.name(),
            db.vertex_count(&ctx).unwrap(),
            db.edge_count(&ctx).unwrap(),
        ));
    }
    let (_, v0, e0) = results[0];
    for (name, v, e) in &results {
        assert_eq!((*v, *e), (v0, e0), "{name} diverged after deletions");
    }
}

#[test]
fn index_preserves_results_everywhere() {
    let data = datasets::generate(DatasetId::Mico, Scale::tiny(), 37);
    let workload = Workload::choose(&data, 41, 4);
    let ctx = QueryCtx::unbounded();
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).unwrap();
        let before = db
            .vertices_with_property(&workload.vertex_prop.0, &workload.vertex_prop.1, &ctx)
            .unwrap()
            .len();
        match db.create_vertex_index(&workload.vertex_prop.0) {
            Ok(()) => {}
            Err(graphmark::model::GdbError::Unsupported(_)) => continue, // triple engine
            Err(e) => panic!("{}: {e}", kind.name()),
        }
        let after = db
            .vertices_with_property(&workload.vertex_prop.0, &workload.vertex_prop.1, &ctx)
            .unwrap()
            .len();
        assert_eq!(before, after, "{} index changed results", kind.name());
    }
}
