//! End-to-end framework tests: runner suites, complex workload, GraphSON
//! interchange, and Table 4 derivation across all engines.

use graphmark::core::complex::{self, ComplexParams, ComplexQuery};
use graphmark::core::params::Workload;
use graphmark::core::report::{Report, RunMode};
use graphmark::core::runner::{BenchConfig, Runner};
use graphmark::core::summary;
use graphmark::datasets::{self, DatasetId, Scale};
use graphmark::model::api::LoadOptions;
use graphmark::model::{graphson, QueryCtx};
use graphmark::registry::EngineKind;

#[test]
fn runner_full_suite_on_two_engines() {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 3);
    let workload = Workload::choose(&data, 5, 12);
    let mut report = Report::default();
    for kind in [EngineKind::LinkedV1, EngineKind::Relational] {
        let factory = move || kind.make();
        let mut runner = Runner::new(
            &factory,
            &data,
            &workload,
            BenchConfig {
                batch: 3,
                ..BenchConfig::default()
            },
        );
        report.extend(runner.run_suite(&[RunMode::Isolation, RunMode::Batch]));
    }
    // Q1 (isolation only) + 40 instances × 2 modes, × 2 engines.
    assert_eq!(report.rows.len(), 2 * (1 + 40 * 2));
    let dnf: Vec<&str> = report
        .rows
        .iter()
        .filter(|r| r.outcome.is_dnf())
        .map(|r| r.query.as_str())
        .collect();
    assert!(dnf.is_empty(), "unexpected non-completions: {dnf:?}");

    // The summary derives a full matrix.
    let table4 = summary::derive(&report);
    assert_eq!(table4.engines.len(), 2);
    assert_eq!(table4.groups.len(), 13);
    let rendered = table4.render();
    assert!(rendered.contains("linked(v1)"));
    assert!(rendered.contains("relational"));
}

#[test]
fn complex_queries_agree_across_engines() {
    let data = datasets::generate(DatasetId::Ldbc, Scale::tiny(), 7);
    let params = ComplexParams::choose(&data, 9);
    let ctx = QueryCtx::unbounded();

    let mut reference: Vec<(&str, u64)> = Vec::new();
    {
        let mut db = EngineKind::LinkedV1.make();
        db.bulk_load(&data, &LoadOptions::default()).unwrap();
        let p = params.resolve(db.as_ref()).unwrap();
        for q in ComplexQuery::ALL {
            let mut fresh = EngineKind::LinkedV1.make();
            fresh.bulk_load(&data, &LoadOptions::default()).unwrap();
            let p2 = params.resolve(fresh.as_ref()).unwrap();
            let card = complex::execute(q, fresh.as_mut(), &p2, &ctx).unwrap();
            reference.push((q.name(), card));
        }
        let _ = p;
    }

    for kind in EngineKind::ALL.iter().skip(1) {
        for (q, (name, want)) in ComplexQuery::ALL.iter().zip(&reference) {
            let mut db = kind.make();
            db.bulk_load(&data, &LoadOptions::default()).unwrap();
            let p = params.resolve(db.as_ref()).unwrap();
            let card = complex::execute(*q, db.as_mut(), &p, &ctx)
                .unwrap_or_else(|e| panic!("{} failed {name}: {e}", kind.name()));
            assert_eq!(card, *want, "{} disagrees on {name}", kind.name());
        }
    }
}

#[test]
fn graphson_file_feeds_every_engine() {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 21);
    let dir = std::env::temp_dir().join("graphmark-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("yeast.graphson.json");
    graphson::write_file(&data, &path).unwrap();
    let loaded = graphson::read_file(&path).unwrap();
    assert_eq!(loaded.vertex_count(), data.vertex_count());

    let ctx = QueryCtx::unbounded();
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&loaded, &LoadOptions::default()).unwrap();
        assert_eq!(
            db.vertex_count(&ctx).unwrap(),
            data.vertex_count() as u64,
            "{} after graphson round-trip",
            kind.name()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_options_ablation_runs() {
    // Bulk off vs on must produce the same data (and is the knob behind the
    // triple-engine load ablation).
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 33);
    let ctx = QueryCtx::unbounded();
    for kind in [EngineKind::Triple, EngineKind::ColumnarV10] {
        let mut bulk = kind.make();
        bulk.bulk_load(
            &data,
            &LoadOptions {
                bulk: true,
                index_during_load: false,
            },
        )
        .unwrap();
        let mut slow = kind.make();
        slow.bulk_load(
            &data,
            &LoadOptions {
                bulk: false,
                index_during_load: false,
            },
        )
        .unwrap();
        assert_eq!(
            bulk.edge_count(&ctx).unwrap(),
            slow.edge_count(&ctx).unwrap(),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn space_reports_are_complete() {
    let data = datasets::generate(DatasetId::Yeast, Scale::tiny(), 43);
    for kind in EngineKind::ALL {
        let mut db = kind.make();
        db.bulk_load(&data, &LoadOptions::default()).unwrap();
        let report = db.space();
        assert!(report.total() > 0, "{}", kind.name());
        // Raw JSON reference for Figure 1.
        let raw = graphson::raw_json_bytes(&data);
        assert!(raw > 0);
    }
}

#[test]
fn timeouts_surface_in_report() {
    let data = datasets::generate(DatasetId::Mico, Scale::tiny(), 47);
    let workload = Workload::choose(&data, 51, 4);
    let factory = || EngineKind::Triple.make();
    let mut runner = Runner::new(
        &factory,
        &data,
        &workload,
        BenchConfig {
            timeout: std::time::Duration::from_nanos(1),
            batch: 2,
            ..BenchConfig::default()
        },
    );
    let report = runner.run_suite(&[RunMode::Isolation]);
    let dnf = report.timeouts_by_engine(RunMode::Isolation);
    assert!(
        dnf.get("triple").copied().unwrap_or(0) > 0,
        "1ns deadline must cause non-completions"
    );
    // The matrix renderer shows them.
    let matrix = report.render_matrix(RunMode::Isolation);
    assert!(matrix.contains("TIMEOUT") || matrix.contains("FAILED"));
}
