//! Cross-engine snapshot-consistency integration test.
//!
//! The gm-mvcc contract, checked against every registry engine variant
//! under the generic `CowCell` and additionally against the columnar
//! engine's native freeze path:
//!
//! 1. pin a snapshot, then run the full read-query suite against it **while
//!    a writer thread applies interleaved mutations** — every result must
//!    equal the sequential replay at the pinned epoch (a reference engine
//!    loaded with the same dataset and no writes);
//! 2. a snapshot pinned after the writer finishes must equal the sequential
//!    replay of the same writes (reference engine + the same mutation
//!    sequence applied single-threaded);
//! 3. epochs are strictly monotone across the write burst.

use graphmark::core::catalog::{self, QueryInstance};
use graphmark::core::params::{ResolvedParams, Workload};
use graphmark::model::api::{GraphDb, GraphSnapshot, LoadOptions};
use graphmark::model::{testkit, QueryCtx};
use graphmark::mvcc::SnapshotMode;
use graphmark::registry::EngineKind;
use graphmark::workload::{apply_write, WriteOp, WORKLOAD_SLOTS};

const SEED: u64 = 77;
const WRITER_OPS: u64 = 150;

/// The deterministic write burst both sides replay: a cycle over every
/// driver write op, applied by "worker 0".
fn write_sequence() -> Vec<WriteOp> {
    let cycle = [
        WriteOp::AddVertex,
        WriteOp::AddEdge,
        WriteOp::SetVertexProp,
        WriteOp::AddEdge,
        WriteOp::RemoveOwnEdge,
    ];
    (0..WRITER_OPS)
        .map(|i| cycle[(i % cycle.len() as u64) as usize])
        .collect()
}

/// Run every read-only query instance of the paper's suite; returns
/// (name, cardinality) pairs for exact comparison.
fn read_suite(db: &dyn GraphSnapshot, params: &ResolvedParams) -> Vec<(String, u64)> {
    QueryInstance::full_suite(params.k)
        .into_iter()
        .filter(|inst| !inst.id.is_mutation())
        .map(|inst| {
            let ctx = QueryCtx::unbounded();
            let card = catalog::execute_read(&inst, db, params, &ctx)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", inst.name(), db.name()));
            (inst.name(), card)
        })
        .collect()
}

fn check_engine(kind: EngineKind, mode: SnapshotMode) {
    let data = testkit::chain_dataset(240);
    let workload = Workload::choose(&data, SEED, WORKLOAD_SLOTS);

    // The snapshot source under test.
    let source = kind.make_snapshot_source(mode);
    source
        .with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            db.sync()?;
            Ok(0)
        })
        .expect("load source");
    let src_params = {
        let snap = source.snapshot().expect("pin for resolve");
        workload
            .resolve(snap.as_ref())
            .expect("resolve on snapshot")
    };

    // The sequential reference: same dataset, same canonical parameters.
    let mut reference: Box<dyn GraphDb> = kind.make();
    reference
        .bulk_load(&data, &LoadOptions::default())
        .expect("load reference");
    reference.sync().expect("sync reference");
    let ref_params = workload
        .resolve(reference.as_ref())
        .expect("resolve reference");

    // Phase 1: pin, then scan WHILE a writer thread mutates the source.
    let snap0 = source.snapshot().expect("pin snap0");
    let pinned_expected = read_suite(reference.as_ref(), &ref_params);
    std::thread::scope(|s| {
        let source = source.as_ref();
        let params = &src_params;
        let writer = s.spawn(move || {
            let mut owned = Vec::new();
            for (i, wop) in write_sequence().into_iter().enumerate() {
                source
                    .with_write(&mut |db| apply_write(wop, db, params, 0, i as u64, &mut owned))
                    .unwrap_or_else(|e| panic!("write {i} failed on {}: {e}", kind.name()));
            }
        });
        // Interleave: run the suite twice against the pinned epoch while
        // the writer is (probably) mid-burst. Both passes must equal the
        // no-writes sequential replay exactly.
        for pass in 0..2 {
            let got = read_suite(snap0.as_ref(), &src_params);
            assert_eq!(
                got,
                pinned_expected,
                "{} [{}] pass {pass}: pinned scan diverged from the sequential \
                 replay at the pinned epoch",
                kind.name(),
                mode.name()
            );
        }
        writer.join().expect("writer thread");
    });

    // Phase 2: a fresh pin equals the sequential replay of the same writes.
    let mut owned = Vec::new();
    for (i, wop) in write_sequence().into_iter().enumerate() {
        apply_write(
            wop,
            reference.as_mut(),
            &ref_params,
            0,
            i as u64,
            &mut owned,
        )
        .unwrap_or_else(|e| panic!("reference write {i} failed on {}: {e}", kind.name()));
    }
    reference.sync().expect("sync reference after writes");
    let snap1 = source.snapshot().expect("pin snap1");
    assert!(
        snap1.epoch() > snap0.epoch(),
        "{} [{}]: epoch must advance across the write burst",
        kind.name(),
        mode.name()
    );
    let got = read_suite(snap1.as_ref(), &src_params);
    let expected = read_suite(reference.as_ref(), &ref_params);
    assert_eq!(
        got,
        expected,
        "{} [{}]: post-writes snapshot diverged from the sequential replay",
        kind.name(),
        mode.name()
    );

    // The old pin still answers from its epoch (no torn reads, ever).
    assert_eq!(
        read_suite(snap0.as_ref(), &src_params),
        pinned_expected,
        "{} [{}]: the original pin tore after the writes",
        kind.name(),
        mode.name()
    );
}

/// All engine variants under the generic copy-on-write cell.
#[test]
fn cow_snapshots_are_consistent_on_every_engine() {
    for kind in EngineKind::ALL {
        check_engine(kind, SnapshotMode::Cow);
    }
}

/// The columnar engine's native freeze path (Arc-shared LSM runs +
/// append-only segment columns) upholds the same contract.
#[test]
fn native_columnar_snapshots_are_consistent() {
    check_engine(EngineKind::ColumnarV05, SnapshotMode::Native);
    check_engine(EngineKind::ColumnarV10, SnapshotMode::Native);
}
