//! Knowledge-graph exploration on a Freebase-shaped sample.
//!
//! Builds the synthetic Freebase family (the paper's Frb-S/O/M/L), loads
//! Frb-S into three architecturally different engines, and explores it:
//! label statistics, hub discovery (Q28-style degree scan), breadth-first
//! neighborhood growth (Q32), and shortest paths (Q34).
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use std::time::Instant;

use graphmark::datasets::freebase;
use graphmark::datasets::{dataset_stats, Scale};
use graphmark::model::api::{Direction, LoadOptions};
use graphmark::model::QueryCtx;
use graphmark::registry::EngineKind;
use graphmark::traversal::algo;

fn main() {
    let scale = std::env::var("GM_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::tiny());
    println!(
        "generating the synthetic Freebase family at scale '{}' …",
        scale.name
    );
    let family = freebase::generate_all(scale, 42);
    for (name, d) in [
        ("full", &family.full),
        ("frb-o", &family.frb_o),
        ("frb-s", &family.frb_s),
        ("frb-m", &family.frb_m),
        ("frb-l", &family.frb_l),
    ] {
        println!(
            "  {name:<6} |V|={:<7} |E|={:<7} |L|={}",
            d.vertex_count(),
            d.edge_count(),
            d.edge_label_set().len()
        );
    }

    let data = &family.frb_m;
    let stats = dataset_stats(data);
    println!(
        "\nfrb-m shape: {} components (max {}), avg degree {:.1}, max degree {}, diameter ≈ {}\n",
        stats.components, stats.max_component, stats.avg_degree, stats.max_degree, stats.diameter
    );

    let ctx = QueryCtx::unbounded();
    for kind in [
        EngineKind::LinkedV2,
        EngineKind::ColumnarV10,
        EngineKind::Triple,
    ] {
        let mut db = kind.make();
        let t0 = Instant::now();
        db.bulk_load(data, &LoadOptions::default()).expect("load");
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Hub discovery: Q30 with a high threshold.
        let t1 = Instant::now();
        let hubs = db
            .degree_scan(Direction::Both, stats.avg_degree as u64 * 4, &ctx)
            .expect("degree scan");
        let hubs_ms = t1.elapsed().as_secs_f64() * 1e3;

        // BFS from the first hub (or vertex 0).
        let start = hubs
            .first()
            .copied()
            .or_else(|| db.resolve_vertex(0))
            .expect("start vertex");
        let t2 = Instant::now();
        let frontier = algo::bfs(db.as_ref(), start, 3, None, &ctx).expect("bfs");
        let bfs_ms = t2.elapsed().as_secs_f64() * 1e3;

        // Shortest path between two BFS-reachable vertices.
        let sp_info = if let (Some(&a), Some(&b)) = (frontier.first(), frontier.last()) {
            let t3 = Instant::now();
            let sp = algo::shortest_path(db.as_ref(), a, b, None, &ctx).expect("sp");
            let ms = t3.elapsed().as_secs_f64() * 1e3;
            match sp {
                Some(p) => format!("{} hops in {ms:.2} ms", p.hops()),
                None => format!("disconnected ({ms:.2} ms)"),
            }
        } else {
            "n/a".to_string()
        };

        println!("{:<14} (emulating {})", db.name(), kind.emulates());
        println!("  load:        {load_ms:>9.2} ms");
        println!("  hub scan:    {hubs_ms:>9.2} ms ({} hubs)", hubs.len());
        println!(
            "  bfs depth 3: {bfs_ms:>9.2} ms ({} reached)",
            frontier.len()
        );
        println!("  short path:  {sp_info}");
        println!(
            "  space:       {:>9.1} KiB\n",
            db.space().total() as f64 / 1024.0
        );
    }
}
