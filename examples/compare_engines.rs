//! Mini Table 4: run the full microbenchmark suite across all nine engine
//! variants on one dataset and print the derived ✓/⚠ summary matrix.
//!
//! ```sh
//! cargo run --release --example compare_engines
//! GM_SCALE=small GM_DATASET=frb-m cargo run --release --example compare_engines
//! ```

use graphmark::core::params::Workload;
use graphmark::core::report::{Report, RunMode};
use graphmark::core::runner::{BenchConfig, Runner};
use graphmark::core::summary;
use graphmark::datasets::{self, DatasetId, Scale};
use graphmark::registry::EngineKind;

fn main() {
    let scale = std::env::var("GM_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::tiny());
    let dataset_id = std::env::var("GM_DATASET")
        .ok()
        .and_then(|name| DatasetId::ALL.into_iter().find(|d| d.name() == name))
        .unwrap_or(DatasetId::Yeast);

    println!(
        "running the 35-query suite on '{}' at scale '{}' across {} engines …\n",
        dataset_id.name(),
        scale.name,
        EngineKind::ALL.len()
    );
    let data = datasets::generate(dataset_id, scale, 42);
    let workload = Workload::choose(&data, 7, 12);

    let mut report = Report::default();
    for kind in EngineKind::ALL {
        eprintln!("  {} …", kind.name());
        let factory = move || kind.make();
        let mut runner = Runner::new(
            &factory,
            &data,
            &workload,
            BenchConfig {
                batch: 3,
                ..BenchConfig::default()
            },
        );
        report.extend(runner.run_suite(&[RunMode::Isolation]));
    }

    println!("{}", report.render_matrix(RunMode::Isolation));
    println!("\nDerived Table 4 (✓ near-best · ⚠ slow/problems):\n");
    println!("{}", summary::derive(&report).render());

    let dnf = report.timeouts_by_engine(RunMode::Isolation);
    if !dnf.is_empty() {
        println!("non-completions: {dnf:?}");
    }
}
