//! Quickstart for the concurrent workload driver: four clients hammer one
//! engine with a mixed read/write workload, then the latency histogram and
//! scalability row are printed.
//!
//! ```sh
//! cargo run --example concurrent_clients
//! ```
//!
//! Everything here runs **in-process**. For the same driver pointed at a
//! socket server — measuring network-attached latency like the paper's
//! client/server deployments — see `crates/net/examples/remote_clients.rs`
//! (`cargo run -p gm-net --example remote_clients`).

use graphmark::core::summary;
use graphmark::registry::EngineKind;
use graphmark::workload::{run, MixKind, Pacing, WorkloadConfig};

fn main() {
    // 1. A synthetic social-ish dataset (the generators in `gm-datasets`
    //    produce the paper's shapes; any Dataset works).
    let data = graphmark::datasets::generate(
        graphmark::datasets::DatasetId::Yeast,
        graphmark::datasets::Scale::tiny(),
        42,
    );
    println!(
        "dataset {}: |V|={} |E|={}\n",
        data.name,
        data.vertex_count(),
        data.edge_count()
    );

    // 2. Four closed-loop clients, mixed reads+writes, deterministic seed.
    let kind = EngineKind::LinkedV2;
    let factory = move || kind.make();
    let cfg = WorkloadConfig {
        mix: MixKind::Mixed,
        threads: 4,
        ops_per_worker: 500,
        seed: 7,
        ..WorkloadConfig::default()
    };
    let report = run(&factory, &data, &cfg).expect("workload run");

    println!(
        "{} × {} workers × {} ops ({}): {:.0} ops/s, {} errors",
        report.engine,
        report.threads,
        cfg.ops_per_worker,
        report.mix,
        report.throughput(),
        report.errors()
    );
    println!(
        "\nlatency histogram (log2 buckets):\n{}",
        report.hist.render()
    );

    // 3. The same run shape at 1 thread, for a speedup row.
    let base_cfg = WorkloadConfig {
        threads: 1,
        ..cfg.clone()
    };
    let base = run(&factory, &data, &base_cfg).expect("baseline run");
    let rows = vec![base.scaling_row(), report.scaling_row()];
    println!("{}", summary::render_scaling(&rows));

    // 4. Open-loop flavor: fixed arrival rate, latency includes queueing.
    let open = run(
        &factory,
        &data,
        &WorkloadConfig {
            mix: MixKind::ReadHeavy,
            threads: 2,
            ops_per_worker: 200,
            pacing: Pacing::open(5_000.0),
            ..WorkloadConfig::default()
        },
    )
    .expect("open-loop run");
    println!(
        "open-loop @5000/s: p50 {} p99 {} (queueing included)",
        graphmark::workload::format_nanos(open.hist.p50()),
        graphmark::workload::format_nanos(open.hist.p99())
    );

    // 5. Overload: offer 8× the engine's measured closed-loop capacity with
    //    a bounded arrival backlog. Arrivals that slip more than 5 ms behind
    //    schedule are shed (counted, never executed), so the run terminates
    //    in bounded time and the gap between offered and achieved rate —
    //    plus the shed count — makes the overload visible instead of letting
    //    the backlog grow without bound.
    let offered = report.throughput() * 8.0;
    let overloaded = run(
        &factory,
        &data,
        &WorkloadConfig {
            mix: MixKind::Mixed,
            threads: 4,
            ops_per_worker: 2_000,
            pacing: Pacing::open_bounded(offered, std::time::Duration::from_millis(5)),
            ..WorkloadConfig::default()
        },
    )
    .expect("overloaded run");
    println!(
        "\noverloaded open-loop: offered {:.0} ops/s, achieved {:.0} ops/s, \
         shed {} of {} arrivals ({:.1}%), p99 {} (queueing up to the bound)",
        offered,
        overloaded.throughput(),
        overloaded.shed(),
        overloaded.ops() + overloaded.errors() + overloaded.shed(),
        overloaded.scaling_row().shed_fraction() * 100.0,
        graphmark::workload::format_nanos(overloaded.hist.p99()),
    );
    println!("{}", summary::render_scaling(&[overloaded.scaling_row()]));
}
