//! Social recommendation: the paper's motivating LDBC scenario.
//!
//! Generates an LDBC-style social network, then runs the complex workload
//! of Figure 2 (account creation, friend lookups, friend-of-friend
//! recommendation, triangle counting, places hierarchy) on two engines with
//! opposite architectures — the native linked engine and the relational
//! hybrid — and prints latencies side by side.
//!
//! ```sh
//! cargo run --release --example social_recommendation
//! ```

use std::time::Instant;

use graphmark::core::complex::{self, ComplexParams, ComplexQuery};
use graphmark::datasets::{self, DatasetId, Scale};
use graphmark::model::api::LoadOptions;
use graphmark::model::QueryCtx;
use graphmark::registry::EngineKind;

fn main() {
    let scale = std::env::var("GM_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::tiny());
    println!("generating ldbc dataset at scale '{}' …", scale.name);
    let data = datasets::generate(DatasetId::Ldbc, scale, 42);
    println!(
        "  {} vertices, {} edges, {} labels\n",
        data.vertex_count(),
        data.edge_count(),
        data.edge_label_set().len()
    );
    let params = ComplexParams::choose(&data, 7);

    let engines = [EngineKind::LinkedV1, EngineKind::Relational];
    println!(
        "{:<18} {:>16} {:>16}",
        "query",
        engines[0].name(),
        engines[1].name()
    );
    println!("{}", "-".repeat(54));

    for q in ComplexQuery::ALL {
        let mut cells = Vec::new();
        for kind in engines {
            // Fresh state per query, as the paper's isolation mode demands.
            let mut db = kind.make();
            db.bulk_load(&data, &LoadOptions::default()).expect("load");
            let p = params.resolve(db.as_ref()).expect("params");
            let ctx = QueryCtx::unbounded();
            let start = Instant::now();
            let card = complex::execute(q, db.as_mut(), &p, &ctx).expect("query");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            cells.push(format!("{ms:>9.3} ms ({card})"));
        }
        println!("{:<18} {:>16} {:>16}", q.name(), cells[0], cells[1]);
    }
    println!(
        "\nNote the shape: the relational engine wins the single-label hops \
         (city/company/university) while the native engine wins the \
         multi-hop traversals — Figure 2's conclusion."
    );
}
