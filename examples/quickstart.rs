//! Quickstart: build a small graph, query it three ways, inspect space.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use graphmark::model::api::{Direction, LoadOptions};
use graphmark::model::{Dataset, QueryCtx, Value};
use graphmark::registry::EngineKind;
use graphmark::traversal::{algo, parser, Traversal};

fn main() {
    // 1. Describe a graph in the engine-independent canonical form.
    let mut data = Dataset::new("quickstart");
    let ann = data.add_vertex("person", vec![("name".into(), Value::Str("ann".into()))]);
    let bob = data.add_vertex("person", vec![("name".into(), Value::Str("bob".into()))]);
    let carol = data.add_vertex("person", vec![("name".into(), Value::Str("carol".into()))]);
    let dave = data.add_vertex("person", vec![("name".into(), Value::Str("dave".into()))]);
    data.add_edge(ann, bob, "knows", vec![("since".into(), Value::Int(2015))]);
    data.add_edge(
        bob,
        carol,
        "knows",
        vec![("since".into(), Value::Int(2018))],
    );
    data.add_edge(
        carol,
        dave,
        "knows",
        vec![("since".into(), Value::Int(2021))],
    );
    data.add_edge(ann, dave, "follows", vec![]);

    // 2. Load it into an engine — any of the nine; here the Neo4j-class one.
    let mut db = EngineKind::LinkedV1.make();
    db.bulk_load(&data, &LoadOptions::default()).expect("load");
    let ctx = QueryCtx::unbounded();

    // 3a. Query through the trait (what the benchmark's catalog does).
    let ann_id = db.resolve_vertex(ann).expect("ann");
    let friends = db
        .neighbors(ann_id, Direction::Out, Some("knows"), &ctx)
        .expect("neighbors");
    println!("ann --knows--> {} people", friends.len());

    // 3b. Query through the Gremlin-style traversal builder.
    let knows_edges = Traversal::e()
        .has_label("knows")
        .count()
        .run_count(db.as_ref(), &ctx)
        .expect("traversal");
    println!("knows edges: {knows_edges}");

    // 3c. Query from a Gremlin-style string (the suite's extension point).
    let q = parser::parse("g.V().has('name', 'ann').out('knows').values('name')").expect("parse");
    let out = q.run(db.as_ref(), &ctx).expect("run");
    println!("parsed query result: {out:?}");

    // 4. Graph algorithms: BFS and shortest path (Q32/Q34 of the paper).
    let dave_id = db.resolve_vertex(dave).expect("dave");
    let reach = algo::bfs(db.as_ref(), ann_id, 2, None, &ctx).expect("bfs");
    println!("within 2 hops of ann: {} vertices", reach.len());
    let path = algo::shortest_path(db.as_ref(), ann_id, dave_id, Some("knows"), &ctx)
        .expect("sp")
        .expect("connected");
    println!("ann→dave via 'knows': {} hops", path.hops());

    // 5. Space accounting (Figure 1's yardstick).
    println!("\nspace report for {}:", db.name());
    for (component, bytes) in &db.space().components {
        println!("  {component:<24} {bytes:>8} B");
    }
}
