//! Binary encoding of [`Value`]s and property lists.
//!
//! Shared by the engines that serialize records to bytes: the document
//! engine's binary documents, the cluster engine's record payloads, and the
//! columnar engine's cell values. The format is tag-prefixed:
//!
//! ```text
//! 0x00                      Null
//! 0x01 <u8>                 Bool
//! 0x02 <varint zigzag>      Int
//! 0x03 <8 bytes LE>         Float
//! 0x04 <varint len> <utf8>  Str
//! ```

use gm_model::Value;

use crate::codec::{read_varint, unzigzag, write_varint, zigzag};

/// Append the encoding of `v` to `out`.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0x00),
        Value::Bool(b) => {
            out.push(0x01);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(0x02);
            write_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(0x03);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x04);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode a value at `pos`, advancing it. `None` on malformed input.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Option<Value> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    match tag {
        0x00 => Some(Value::Null),
        0x01 => {
            let b = *buf.get(*pos)?;
            *pos += 1;
            Some(Value::Bool(b != 0))
        }
        0x02 => read_varint(buf, pos).map(|v| Value::Int(unzigzag(v))),
        0x03 => {
            let bytes = buf.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(Value::Float(f64::from_le_bytes(bytes.try_into().ok()?)))
        }
        0x04 => {
            let len = read_varint(buf, pos)? as usize;
            let bytes = buf.get(*pos..*pos + len)?;
            *pos += len;
            Some(Value::Str(String::from_utf8(bytes.to_vec()).ok()?))
        }
        _ => None,
    }
}

/// Append a `(name-id, value)` property list. Name ids come from the engine's
/// interner.
pub fn encode_props(out: &mut Vec<u8>, props: &[(u32, Value)]) {
    write_varint(out, props.len() as u64);
    for (name_id, v) in props {
        write_varint(out, *name_id as u64);
        encode_value(out, v);
    }
}

/// Decode a property list at `pos`, advancing it.
pub fn decode_props(buf: &[u8], pos: &mut usize) -> Option<Vec<(u32, Value)>> {
    let n = read_varint(buf, pos)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name_id = read_varint(buf, pos)? as u32;
        let v = decode_value(buf, pos)?;
        out.push((name_id, v));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        let mut pos = 0;
        assert_eq!(decode_value(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn value_round_trips() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Int(0));
        round_trip(Value::Int(-1));
        round_trip(Value::Int(i64::MAX));
        round_trip(Value::Int(i64::MIN));
        round_trip(Value::Float(3.25));
        round_trip(Value::Float(-0.0));
        round_trip(Value::Str(String::new()));
        round_trip(Value::Str("snowman ☃".into()));
    }

    #[test]
    fn props_round_trip() {
        let props = vec![
            (0u32, Value::Str("ann".into())),
            (7, Value::Int(42)),
            (3, Value::Bool(false)),
        ];
        let mut buf = Vec::new();
        encode_props(&mut buf, &props);
        let mut pos = 0;
        assert_eq!(decode_props(&buf, &mut pos), Some(props));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_rejected() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Str("hello".into()));
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert_eq!(decode_value(&buf, &mut pos), None);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut pos = 0;
        assert_eq!(decode_value(&[0x77], &mut pos), None);
    }

    #[test]
    fn small_ints_encode_small() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Int(3));
        assert_eq!(buf.len(), 2, "tag + 1 varint byte");
    }
}
