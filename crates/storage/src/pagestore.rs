//! Append-only record store with logical→physical indirection — OrientDB's
//! core layout.
//!
//! "In OrientDB … record IDs are not linked directly to a physical position,
//! but point to an append-only data structure, where the logical identifier
//! is mapped to a physical position. This allows for changing the physical
//! position of an object without changing its identifier" (§3.2).
//!
//! [`PageStore`] reproduces that: variable-length records are appended to a
//! byte log; a position table maps logical rid → (offset, length). Updates
//! append a new version and repoint the table; old versions remain as
//! garbage until [`PageStore::compact`]. Every lookup pays the extra table
//! hop — the small but measurable indirection cost the paper observes in
//! id lookups versus Neo4j.

/// Entry of the position table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Live { offset: u64, len: u32 },
    Freed,
}

/// Variable-length record store with stable logical ids.
#[derive(Debug, Clone, Default)]
pub struct PageStore {
    log: Vec<u8>,
    table: Vec<Slot>,
    free: Vec<u64>,
    live: u64,
    garbage_bytes: u64,
}

impl PageStore {
    /// An empty store.
    pub fn new() -> Self {
        PageStore::default()
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Append a record, returning its stable logical id.
    pub fn alloc(&mut self, record: &[u8]) -> u64 {
        let offset = self.log.len() as u64;
        self.log.extend_from_slice(record);
        let slot = Slot::Live {
            offset,
            len: record.len() as u32,
        };
        self.live += 1;
        match self.free.pop() {
            Some(rid) => {
                self.table[rid as usize] = slot;
                rid
            }
            None => {
                self.table.push(slot);
                (self.table.len() - 1) as u64
            }
        }
    }

    /// Read a record through the indirection table.
    pub fn get(&self, rid: u64) -> Option<&[u8]> {
        match self.table.get(rid as usize)? {
            Slot::Live { offset, len } => {
                let lo = *offset as usize;
                Some(&self.log[lo..lo + *len as usize])
            }
            Slot::Freed => None,
        }
    }

    /// Replace a record: appends the new version and repoints the logical id
    /// (the physical position changes, the id does not).
    pub fn put(&mut self, rid: u64, record: &[u8]) -> bool {
        match self.table.get(rid as usize) {
            Some(Slot::Live { len, .. }) => {
                self.garbage_bytes += *len as u64;
                let offset = self.log.len() as u64;
                self.log.extend_from_slice(record);
                self.table[rid as usize] = Slot::Live {
                    offset,
                    len: record.len() as u32,
                };
                true
            }
            _ => false,
        }
    }

    /// Free a logical id; the record bytes become garbage.
    pub fn free(&mut self, rid: u64) -> bool {
        match self.table.get(rid as usize) {
            Some(Slot::Live { len, .. }) => {
                self.garbage_bytes += *len as u64;
                self.table[rid as usize] = Slot::Freed;
                self.free.push(rid);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether the logical id maps to a live record.
    pub fn is_live(&self, rid: u64) -> bool {
        matches!(self.table.get(rid as usize), Some(Slot::Live { .. }))
    }

    /// Iterate live logical ids in ascending order.
    pub fn iter_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.table
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Live { .. }))
            .map(|(i, _)| i as u64)
    }

    /// Bytes of superseded/freed record versions still sitting in the log.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage_bytes
    }

    /// Rewrite the log dropping garbage; logical ids are preserved.
    pub fn compact(&mut self) {
        let mut new_log = Vec::with_capacity((self.log.len() as u64 - self.garbage_bytes) as usize);
        for slot in self.table.iter_mut() {
            if let Slot::Live { offset, len } = slot {
                let lo = *offset as usize;
                let new_off = new_log.len() as u64;
                new_log.extend_from_slice(&self.log[lo..lo + *len as usize]);
                *offset = new_off;
            }
        }
        self.log = new_log;
        self.garbage_bytes = 0;
    }

    /// Total footprint: log (including garbage) + position table.
    pub fn bytes(&self) -> u64 {
        self.log.len() as u64 + self.table.len() as u64 * 16 + self.free.len() as u64 * 8 + 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get() {
        let mut s = PageStore::new();
        let a = s.alloc(b"first");
        let b = s.alloc(b"second record");
        assert_eq!(s.get(a), Some(b"first".as_slice()));
        assert_eq!(s.get(b), Some(b"second record".as_slice()));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn update_keeps_id_changes_position() {
        let mut s = PageStore::new();
        let rid = s.alloc(b"v1");
        let log_before = s.bytes();
        assert!(s.put(rid, b"version two is much longer"));
        assert_eq!(s.get(rid), Some(b"version two is much longer".as_slice()));
        assert!(s.bytes() > log_before, "append-only: log grew");
        assert_eq!(s.garbage_bytes(), 2, "old version is garbage");
    }

    #[test]
    fn free_and_reuse_logical_id() {
        let mut s = PageStore::new();
        let a = s.alloc(b"a");
        s.alloc(b"b");
        assert!(s.free(a));
        assert!(!s.free(a));
        assert_eq!(s.get(a), None);
        let c = s.alloc(b"c");
        assert_eq!(c, a, "logical id reused");
        assert_eq!(s.get(c), Some(b"c".as_slice()));
    }

    #[test]
    fn compact_reclaims_garbage_preserves_ids() {
        let mut s = PageStore::new();
        let ids: Vec<u64> = (0..50).map(|i| s.alloc(&[i as u8; 20])).collect();
        for &rid in &ids[..25] {
            s.put(rid, &[0xAB; 20]);
        }
        for &rid in &ids[40..] {
            s.free(rid);
        }
        assert!(s.garbage_bytes() > 0);
        let expect: Vec<Option<Vec<u8>>> =
            ids.iter().map(|&r| s.get(r).map(|b| b.to_vec())).collect();
        let before = s.bytes();
        s.compact();
        assert_eq!(s.garbage_bytes(), 0);
        assert!(s.bytes() < before);
        for (rid, want) in ids.iter().zip(expect) {
            assert_eq!(s.get(*rid).map(|b| b.to_vec()), want);
        }
    }

    #[test]
    fn iter_ids_ascending_live_only() {
        let mut s = PageStore::new();
        let ids: Vec<u64> = (0..5).map(|i| s.alloc(&[i as u8])).collect();
        s.free(ids[2]);
        assert_eq!(s.iter_ids().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn get_out_of_range() {
        let s = PageStore::new();
        assert_eq!(s.get(0), None);
        assert_eq!(s.get(999), None);
    }

    #[test]
    fn put_on_freed_slot_fails() {
        let mut s = PageStore::new();
        let rid = s.alloc(b"x");
        s.free(rid);
        assert!(!s.put(rid, b"y"));
    }

    #[test]
    fn empty_record_is_fine() {
        let mut s = PageStore::new();
        let rid = s.alloc(b"");
        assert_eq!(s.get(rid), Some(b"".as_slice()));
    }
}
