//! Fixed-size record files — Neo4j's core layout.
//!
//! "In Neo4J nodes and edges are stored as records of fixed size and have
//! unique IDs that correspond to the offset of their position within the
//! corresponding file. In this way, given the id of an edge, it is retrieved
//! by multiplying the record size by its id and reading bytes at that offset"
//! (§3.2). [`RecordFile`] reproduces exactly that: a flat byte array of
//! `record_size`-byte slots, id = slot index, O(1) access, and a free list
//! for reuse after deletion.

/// A file of fixed-size records addressed by slot id.
#[derive(Debug, Clone)]
pub struct RecordFile {
    record_size: usize,
    data: Vec<u8>,
    in_use: Vec<bool>,
    free: Vec<u64>,
    live: u64,
}

impl RecordFile {
    /// Create a file whose records are `record_size` bytes.
    pub fn new(record_size: usize) -> Self {
        assert!(record_size > 0, "record size must be positive");
        RecordFile {
            record_size,
            data: Vec::new(),
            in_use: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (the file's high-water mark).
    pub fn capacity_slots(&self) -> u64 {
        self.in_use.len() as u64
    }

    /// Allocate a slot (reusing freed slots first) and write `record` into
    /// it. `record` must be at most `record_size` bytes; shorter records are
    /// zero-padded. Returns the slot id.
    pub fn alloc(&mut self, record: &[u8]) -> u64 {
        assert!(
            record.len() <= self.record_size,
            "record too large: {} > {}",
            record.len(),
            self.record_size
        );
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                let id = self.in_use.len() as u64;
                self.in_use.push(false);
                self.data.resize(self.data.len() + self.record_size, 0);
                id
            }
        };
        let off = id as usize * self.record_size;
        self.data[off..off + self.record_size].fill(0);
        self.data[off..off + record.len()].copy_from_slice(record);
        self.in_use[id as usize] = true;
        self.live += 1;
        id
    }

    /// Read the record at `id`; `None` if the slot is free or out of range.
    pub fn get(&self, id: u64) -> Option<&[u8]> {
        if *self.in_use.get(id as usize)? {
            let off = id as usize * self.record_size;
            Some(&self.data[off..off + self.record_size])
        } else {
            None
        }
    }

    /// Overwrite a live record in place.
    pub fn put(&mut self, id: u64, record: &[u8]) -> bool {
        assert!(record.len() <= self.record_size, "record too large");
        if !self.in_use.get(id as usize).copied().unwrap_or(false) {
            return false;
        }
        let off = id as usize * self.record_size;
        self.data[off..off + self.record_size].fill(0);
        self.data[off..off + record.len()].copy_from_slice(record);
        true
    }

    /// Free a slot; returns true if it was live. The slot id will be reused
    /// by future allocations (as Neo4j's id reuse does).
    pub fn free(&mut self, id: u64) -> bool {
        match self.in_use.get_mut(id as usize) {
            Some(slot) if *slot => {
                *slot = false;
                self.free.push(id);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether the slot is live.
    pub fn is_live(&self, id: u64) -> bool {
        self.in_use.get(id as usize).copied().unwrap_or(false)
    }

    /// Iterate live slot ids in ascending order.
    pub fn iter_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.in_use
            .iter()
            .enumerate()
            .filter(|(_, live)| **live)
            .map(|(i, _)| i as u64)
    }

    /// The file footprint: slots × record size, plus bookkeeping. Freed
    /// slots still occupy file space — exactly like a real record file.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 + self.in_use.len() as u64 / 8 + self.free.len() as u64 * 8 + 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_roundtrip() {
        let mut f = RecordFile::new(16);
        let id = f.alloc(b"hello");
        let rec = f.get(id).unwrap();
        assert_eq!(&rec[..5], b"hello");
        assert!(rec[5..].iter().all(|&b| b == 0), "zero padded");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn ids_are_sequential_offsets() {
        let mut f = RecordFile::new(8);
        for i in 0..10u64 {
            assert_eq!(f.alloc(&i.to_le_bytes()), i);
        }
        // Direct offset access semantics.
        assert_eq!(f.get(7).unwrap(), &7u64.to_le_bytes());
    }

    #[test]
    fn free_then_reuse() {
        let mut f = RecordFile::new(8);
        let a = f.alloc(b"a");
        let _b = f.alloc(b"b");
        assert!(f.free(a));
        assert!(!f.free(a), "double free is a no-op");
        assert_eq!(f.get(a), None);
        assert!(!f.is_live(a));
        // Next alloc reuses the freed slot.
        let c = f.alloc(b"c");
        assert_eq!(c, a);
        assert_eq!(&f.get(c).unwrap()[..1], b"c");
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn put_updates_in_place() {
        let mut f = RecordFile::new(8);
        let id = f.alloc(b"old");
        assert!(f.put(id, b"newdata"));
        assert_eq!(&f.get(id).unwrap()[..7], b"newdata");
        assert!(!f.put(999, b"x"), "missing slot");
    }

    #[test]
    fn iter_ids_skips_free() {
        let mut f = RecordFile::new(4);
        let ids: Vec<u64> = (0..5).map(|i| f.alloc(&[i as u8])).collect();
        f.free(ids[1]);
        f.free(ids[3]);
        let live: Vec<u64> = f.iter_ids().collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    fn bytes_track_high_water_mark() {
        let mut f = RecordFile::new(32);
        for _ in 0..100 {
            f.alloc(b"x");
        }
        let full = f.bytes();
        for id in 0..100 {
            f.free(id);
        }
        assert!(f.bytes() >= full, "freeing does not shrink the file");
        assert_eq!(f.len(), 0);
    }

    #[test]
    #[should_panic(expected = "record too large")]
    fn oversized_record_rejected() {
        RecordFile::new(4).alloc(b"way too big");
    }

    #[test]
    fn out_of_range_get() {
        let f = RecordFile::new(4);
        assert_eq!(f.get(0), None);
        assert_eq!(f.get(12345), None);
    }
}
