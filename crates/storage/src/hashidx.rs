//! Open-addressing hash multimap from `u64` keys to `u64` values.
//!
//! ArangoDB "builds automatically indexes on edge endpoints" and resolves
//! edge traversals through "a specialized hash index" (§3.1/§3.2). The
//! document engine uses two of these (out-endpoint → edges, in-endpoint →
//! edges); the columnar engine uses one as its row-key index.
//!
//! Linear probing with tombstones; duplicate `(key, value)` pairs are
//! rejected so the structure is a set-valued map.

const EMPTY: u64 = u64::MAX;
const TOMB: u64 = u64::MAX - 1;

/// Reserved key values (`u64::MAX` and `u64::MAX - 1`) may not be inserted.
#[derive(Debug, Clone)]
pub struct HashIndex {
    keys: Vec<u64>,
    vals: Vec<u64>,
    live: usize,
    used: usize, // live + tombstones
}

impl Default for HashIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl HashIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// An empty index pre-sized for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap * 2).next_power_of_two().max(16);
        HashIndex {
            keys: vec![EMPTY; slots],
            vals: vec![0; slots],
            live: 0,
            used: 0,
        }
    }

    /// Number of live `(key, value)` pairs.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn hash(key: u64, mask: usize) -> usize {
        // Fibonacci hashing mixes the key before masking.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize & mask
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_slots]);
        self.live = 0;
        self.used = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY && k != TOMB {
                self.insert(k, v);
            }
        }
    }

    /// Insert a pair; returns false if the exact pair was already present.
    ///
    /// Panics if `key` is one of the two reserved values.
    pub fn insert(&mut self, key: u64, value: u64) -> bool {
        assert!(key != EMPTY && key != TOMB, "reserved key");
        if (self.used + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key, mask);
        let mut first_tomb: Option<usize> = None;
        loop {
            match self.keys[i] {
                k if k == EMPTY => {
                    let slot = first_tomb.unwrap_or(i);
                    if self.keys[slot] == EMPTY {
                        self.used += 1;
                    }
                    self.keys[slot] = key;
                    self.vals[slot] = value;
                    self.live += 1;
                    return true;
                }
                k if k == TOMB && first_tomb.is_none() => {
                    first_tomb = Some(i);
                }
                k if k == key && self.vals[i] == value => return false,
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// All values stored under `key`, in probe order.
    pub fn get(&self, key: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each(key, |v| out.push(v));
        out
    }

    /// Visit every value stored under `key`.
    pub fn for_each(&self, key: u64, mut f: impl FnMut(u64)) {
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key, mask);
        loop {
            match self.keys[i] {
                k if k == EMPTY => return,
                k if k == key => f(self.vals[i]),
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Whether any value is stored under `key`.
    pub fn contains_key(&self, key: u64) -> bool {
        let mut found = false;
        self.for_each(key, |_| found = true);
        found
    }

    /// Number of values stored under `key`.
    pub fn count(&self, key: u64) -> usize {
        let mut n = 0;
        self.for_each(key, |_| n += 1);
        n
    }

    /// Remove one exact pair; returns true if it was present.
    pub fn remove(&mut self, key: u64, value: u64) -> bool {
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key, mask);
        loop {
            match self.keys[i] {
                k if k == EMPTY => return false,
                k if k == key && self.vals[i] == value => {
                    self.keys[i] = TOMB;
                    self.live -= 1;
                    return true;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove every pair under `key`; returns how many were removed.
    pub fn remove_all(&mut self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key, mask);
        let mut removed = 0;
        loop {
            match self.keys[i] {
                k if k == EMPTY => return removed,
                k if k == key => {
                    self.keys[i] = TOMB;
                    self.live -= 1;
                    removed += 1;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Approximate memory footprint.
    pub fn bytes(&self) -> u64 {
        (self.keys.len() * 16 + 32) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multimap_semantics() {
        let mut h = HashIndex::new();
        assert!(h.insert(1, 10));
        assert!(h.insert(1, 11));
        assert!(!h.insert(1, 10), "duplicate pair rejected");
        assert_eq!(h.len(), 2);
        let mut vals = h.get(1);
        vals.sort_unstable();
        assert_eq!(vals, vec![10, 11]);
        assert_eq!(h.get(2), Vec::<u64>::new());
    }

    #[test]
    fn remove_specific_pair() {
        let mut h = HashIndex::new();
        h.insert(5, 50);
        h.insert(5, 51);
        assert!(h.remove(5, 50));
        assert!(!h.remove(5, 50));
        assert_eq!(h.get(5), vec![51]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn remove_all_values() {
        let mut h = HashIndex::new();
        for v in 0..10 {
            h.insert(7, v);
        }
        assert_eq!(h.count(7), 10);
        assert_eq!(h.remove_all(7), 10);
        assert_eq!(h.count(7), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn survives_growth() {
        let mut h = HashIndex::new();
        for k in 0..10_000u64 {
            h.insert(k, k * 2);
            h.insert(k, k * 2 + 1);
        }
        assert_eq!(h.len(), 20_000);
        for k in 0..10_000u64 {
            let mut v = h.get(k);
            v.sort_unstable();
            assert_eq!(v, vec![k * 2, k * 2 + 1]);
        }
    }

    #[test]
    fn tombstones_are_reusable() {
        let mut h = HashIndex::new();
        for round in 0..50u64 {
            for k in 0..100u64 {
                h.insert(k, round);
            }
            for k in 0..100u64 {
                assert!(h.remove(k, round));
            }
        }
        assert!(h.is_empty());
        // The table must not have ballooned: inserts reuse tombstones after
        // a rehash; just confirm it still answers correctly.
        h.insert(3, 3);
        assert_eq!(h.get(3), vec![3]);
    }

    #[test]
    #[should_panic(expected = "reserved key")]
    fn reserved_key_rejected() {
        HashIndex::new().insert(u64::MAX, 1);
    }

    #[test]
    fn contains_and_bytes() {
        let mut h = HashIndex::new();
        assert!(!h.contains_key(1));
        h.insert(1, 1);
        assert!(h.contains_key(1));
        assert!(h.bytes() > 0);
    }
}
