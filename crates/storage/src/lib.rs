//! # gm-storage — storage substrates for the graphmark engines
//!
//! The paper's systems delegate their physical storage to very different
//! structures (Table 1): fixed-size linked records (Neo4j), append-only
//! clusters with indirection (OrientDB), value bitmaps (Sparksee), JSON
//! documents + endpoint hash indexes (ArangoDB), B+Tree-indexed statement
//! journals (BlazeGraph), relational tables (Sqlg/Postgres), and
//! adjacency-list rows over an LSM column store (Titan/Cassandra).
//!
//! This crate implements each substrate once, from scratch, so the engine
//! crates can focus purely on the *graph layout* decisions the paper
//! analyses:
//!
//! * [`bptree`] — in-memory B+Tree with range scans;
//! * [`bitmap`] — compressed (roaring-style) bitmaps;
//! * [`lsm`] — log-structured merge table with tombstones and compaction;
//! * [`records`] — fixed-size record files where id == offset;
//! * [`pagestore`] — append-only record store with logical→physical
//!   indirection;
//! * [`hashidx`] — open-addressing multimap for id→id indexes;
//! * [`segvec`] — append-only segmented vector whose clones share closed
//!   segments (the columnar engine's cheap-snapshot watermark column);
//! * [`codec`] — varint / zigzag / delta encoding helpers.

pub mod bitmap;
pub mod bptree;
pub mod codec;
pub mod hashidx;
pub mod lsm;
pub mod pagestore;
pub mod records;
pub mod segvec;
pub mod valcodec;

pub use bitmap::Bitmap;
pub use bptree::BPlusTree;
pub use hashidx::HashIndex;
pub use lsm::LsmTable;
pub use pagestore::PageStore;
pub use records::RecordFile;
pub use segvec::SegVec;
