//! Compressed bitmaps in the roaring style.
//!
//! Sparksee/DEX partitions its graph into "clusters of bitmaps" and answers
//! most queries with bitwise operations (§3.2; Martínez-Bazán et al.,
//! IDEAS'12). This module provides the same machinery: a 64-bit key space
//! split into 16-bit chunks, each chunk stored either as a sorted array of
//! `u16` (sparse) or a 65536-bit bitset (dense), switching representation at
//! [`ARRAY_MAX`] entries.

/// Maximum entries a sparse container holds before converting to a bitset.
pub const ARRAY_MAX: usize = 4096;

const BITSET_WORDS: usize = 1024; // 65536 bits

#[derive(Debug, Clone)]
enum Container {
    /// Sorted, deduplicated low-16-bit values.
    Array(Vec<u16>),
    /// Dense bitset of all 65536 possible low values + cardinality.
    Bitset(Box<[u64; BITSET_WORDS]>, u32),
}

impl Container {
    fn new() -> Self {
        Container::Array(Vec::new())
    }

    fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitset(_, n) => *n as usize,
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bitset(words, _) => words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0,
        }
    }

    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(i) => {
                    v.insert(i, low);
                    if v.len() > ARRAY_MAX {
                        self.promote_to_bitset();
                    }
                    true
                }
            },
            Container::Bitset(words, n) => {
                let w = &mut words[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                if *w & mask != 0 {
                    false
                } else {
                    *w |= mask;
                    *n += 1;
                    true
                }
            }
        }
    }

    fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(i) => {
                    v.remove(i);
                    true
                }
                Err(_) => false,
            },
            Container::Bitset(words, n) => {
                let w = &mut words[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                if *w & mask == 0 {
                    false
                } else {
                    *w &= !mask;
                    *n -= 1;
                    if (*n as usize) <= ARRAY_MAX / 2 {
                        self.demote_to_array();
                    }
                    true
                }
            }
        }
    }

    fn promote_to_bitset(&mut self) {
        if let Container::Array(v) = self {
            let mut words = Box::new([0u64; BITSET_WORDS]);
            for &low in v.iter() {
                words[(low >> 6) as usize] |= 1u64 << (low & 63);
            }
            let n = v.len() as u32;
            *self = Container::Bitset(words, n);
        }
    }

    fn demote_to_array(&mut self) {
        if let Container::Bitset(words, _) = self {
            let mut v = Vec::new();
            for (wi, &word) in words.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros();
                    v.push(((wi as u32) << 6 | bit) as u16);
                    w &= w - 1;
                }
            }
            *self = Container::Array(v);
        }
    }

    fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(v) => Box::new(v.iter().copied()),
            Container::Bitset(words, _) => {
                Box::new(words.iter().enumerate().flat_map(|(wi, &word)| {
                    let mut out = Vec::with_capacity(word.count_ones() as usize);
                    let mut w = word;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        out.push(((wi as u32) << 6 | bit) as u16);
                        w &= w - 1;
                    }
                    out
                }))
            }
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            Container::Array(v) => 24 + 2 * v.len() as u64,
            Container::Bitset(_, _) => 8 * BITSET_WORDS as u64 + 8,
        }
    }

    fn and(&self, other: &Container) -> Container {
        let mut out = Container::new();
        // Iterate the smaller side for array/any combos.
        match (self, other) {
            (Container::Bitset(a, _), Container::Bitset(b, _)) => {
                let mut words = Box::new([0u64; BITSET_WORDS]);
                let mut n = 0u32;
                for i in 0..BITSET_WORDS {
                    words[i] = a[i] & b[i];
                    n += words[i].count_ones();
                }
                let mut c = Container::Bitset(words, n);
                if (n as usize) <= ARRAY_MAX / 2 {
                    c.demote_to_array();
                }
                return c;
            }
            _ => {
                let (small, big) = if self.len() <= other.len() {
                    (self, other)
                } else {
                    (other, self)
                };
                for low in small.iter() {
                    if big.contains(low) {
                        out.insert(low);
                    }
                }
            }
        }
        out
    }

    fn or(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Bitset(a, _), Container::Bitset(b, _)) => {
                let mut words = Box::new([0u64; BITSET_WORDS]);
                let mut n = 0u32;
                for i in 0..BITSET_WORDS {
                    words[i] = a[i] | b[i];
                    n += words[i].count_ones();
                }
                Container::Bitset(words, n)
            }
            _ => {
                let mut out = self.clone();
                for low in other.iter() {
                    out.insert(low);
                }
                out
            }
        }
    }

    fn and_not(&self, other: &Container) -> Container {
        let mut out = Container::new();
        for low in self.iter() {
            if !other.contains(low) {
                out.insert(low);
            }
        }
        out
    }
}

/// A set of `u64` values stored as compressed per-chunk containers.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    /// Sorted by chunk key (`value >> 16`).
    chunks: Vec<(u64, Container)>,
    len: u64,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Build from an iterator of values.
    pub fn from_iter_values(values: impl IntoIterator<Item = u64>) -> Self {
        let mut b = Bitmap::new();
        for v in values {
            b.insert(v);
        }
        b
    }

    /// Number of stored values.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn chunk_index(&self, high: u64) -> Result<usize, usize> {
        self.chunks.binary_search_by_key(&high, |(h, _)| *h)
    }

    /// Insert a value; returns true if it was not already present.
    pub fn insert(&mut self, value: u64) -> bool {
        let high = value >> 16;
        let low = (value & 0xFFFF) as u16;
        let idx = match self.chunk_index(high) {
            Ok(i) => i,
            Err(i) => {
                self.chunks.insert(i, (high, Container::new()));
                i
            }
        };
        let added = self.chunks[idx].1.insert(low);
        if added {
            self.len += 1;
        }
        added
    }

    /// Remove a value; returns true if it was present.
    pub fn remove(&mut self, value: u64) -> bool {
        let high = value >> 16;
        let low = (value & 0xFFFF) as u16;
        if let Ok(i) = self.chunk_index(high) {
            let removed = self.chunks[i].1.remove(low);
            if removed {
                self.len -= 1;
                if self.chunks[i].1.len() == 0 {
                    self.chunks.remove(i);
                }
            }
            removed
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, value: u64) -> bool {
        match self.chunk_index(value >> 16) {
            Ok(i) => self.chunks[i].1.contains((value & 0xFFFF) as u16),
            Err(_) => false,
        }
    }

    /// Iterate values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.chunks
            .iter()
            .flat_map(|(high, c)| c.iter().map(move |low| (high << 16) | low as u64))
    }

    /// Set intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ha, ca) = &self.chunks[i];
            let (hb, cb) = &other.chunks[j];
            match ha.cmp(hb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let c = ca.and(cb);
                    if c.len() > 0 {
                        out.len += c.len() as u64;
                        out.chunks.push((*ha, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Set union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() || j < other.chunks.len() {
            let pick_a = match (self.chunks.get(i), other.chunks.get(j)) {
                (Some((ha, _)), Some((hb, _))) => {
                    if ha == hb {
                        let c = self.chunks[i].1.or(&other.chunks[j].1);
                        out.len += c.len() as u64;
                        out.chunks.push((*ha, c));
                        i += 1;
                        j += 1;
                        continue;
                    }
                    ha < hb
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if pick_a {
                out.len += self.chunks[i].1.len() as u64;
                out.chunks.push(self.chunks[i].clone());
                i += 1;
            } else {
                out.len += other.chunks[j].1.len() as u64;
                out.chunks.push(other.chunks[j].clone());
                j += 1;
            }
        }
        out
    }

    /// Set difference (`self \ other`).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        for (high, c) in &self.chunks {
            let c2 = match other.chunk_index(*high) {
                Ok(j) => c.and_not(&other.chunks[j].1),
                Err(_) => c.clone(),
            };
            if c2.len() > 0 {
                out.len += c2.len() as u64;
                out.chunks.push((*high, c2));
            }
        }
        out
    }

    /// Approximate memory footprint.
    pub fn bytes(&self) -> u64 {
        16 + self.chunks.iter().map(|(_, c)| 8 + c.bytes()).sum::<u64>()
    }

    /// Smallest stored value, if any.
    pub fn min(&self) -> Option<u64> {
        self.iter().next()
    }
}

impl FromIterator<u64> for Bitmap {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Bitmap::from_iter_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = Bitmap::new();
        assert!(b.insert(42));
        assert!(!b.insert(42));
        assert!(b.contains(42));
        assert!(!b.contains(41));
        assert_eq!(b.len(), 1);
        assert!(b.remove(42));
        assert!(!b.remove(42));
        assert!(b.is_empty());
    }

    #[test]
    fn spans_chunks() {
        let mut b = Bitmap::new();
        let values = [0u64, 1, 65535, 65536, 1 << 20, (1 << 32) + 5, u64::MAX];
        for &v in &values {
            b.insert(v);
        }
        assert_eq!(b.len(), values.len() as u64);
        let collected: Vec<u64> = b.iter().collect();
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        assert_eq!(collected, sorted);
    }

    #[test]
    fn array_to_bitset_promotion_and_back() {
        let mut b = Bitmap::new();
        for v in 0..(ARRAY_MAX as u64 + 100) {
            b.insert(v);
        }
        assert_eq!(b.len(), ARRAY_MAX as u64 + 100);
        for v in 0..(ARRAY_MAX as u64 + 100) {
            assert!(b.contains(v), "missing {v} after promotion");
        }
        // Shrink far enough to trigger demotion.
        for v in 0..(ARRAY_MAX as u64) {
            b.remove(v);
        }
        assert_eq!(b.len(), 100);
        let vals: Vec<u64> = b.iter().collect();
        assert_eq!(vals.len(), 100);
        assert_eq!(vals[0], ARRAY_MAX as u64);
    }

    #[test]
    fn boolean_algebra() {
        let a: Bitmap = (0..100u64).collect();
        let b: Bitmap = (50..150u64).collect();
        assert_eq!(a.and(&b).len(), 50);
        assert_eq!(a.or(&b).len(), 150);
        assert_eq!(a.and_not(&b).len(), 50);
        assert_eq!(a.and_not(&b).iter().max(), Some(49));
        assert!(a.and(&Bitmap::new()).is_empty());
        assert_eq!(a.or(&Bitmap::new()).len(), 100);
    }

    #[test]
    fn dense_and_dense_ops() {
        let a: Bitmap = (0..10_000u64).collect();
        let b: Bitmap = (5_000..15_000u64).collect();
        assert_eq!(a.and(&b).len(), 5_000);
        assert_eq!(a.or(&b).len(), 15_000);
        // Verify a sample of members.
        let and = a.and(&b);
        assert!(and.contains(7_000));
        assert!(!and.contains(4_999));
    }

    #[test]
    fn ops_across_disjoint_chunks() {
        let a: Bitmap = [1u64, 2, 3].into_iter().collect();
        let b: Bitmap = [1u64 << 40, 2u64 << 40].into_iter().collect();
        assert!(a.and(&b).is_empty());
        assert_eq!(a.or(&b).len(), 5);
        assert_eq!(a.and_not(&b).len(), 3);
    }

    #[test]
    fn min_is_smallest() {
        let b: Bitmap = [99u64, 3, 1 << 30].into_iter().collect();
        assert_eq!(b.min(), Some(3));
        assert_eq!(Bitmap::new().min(), None);
    }

    #[test]
    fn bytes_reflect_density() {
        let sparse: Bitmap = (0..10u64).collect();
        let dense: Bitmap = (0..60_000u64).collect();
        assert!(sparse.bytes() < dense.bytes());
        // A dense chunk is a fixed 8 KiB bitset, far below 2 bytes/element
        // that an array would need at this cardinality.
        assert!(dense.bytes() < 2 * 60_000);
    }
}
