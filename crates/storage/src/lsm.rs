//! A log-structured merge table with tombstones and compaction.
//!
//! Titan's default backend is Cassandra (§3.1); the columnar engine stores
//! its adjacency rows in this LSM. The structure reproduces the behaviours
//! the paper attributes to the backend:
//!
//! * writes go to a sorted **memtable** and are cheap;
//! * deletes write **tombstones** instead of removing data — the paper
//!   credits Titan's fast deletions to exactly this (§6.5: "the tombstone
//!   mechanism, that in deletions marks an item as removed instead of
//!   actually removing it");
//! * reads consult the memtable and then immutable runs newest-first, so
//!   read amplification grows with the number of runs until **compaction**
//!   folds them together.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Key-value entry; `None` is a tombstone.
type MemEntry = Option<Vec<u8>>;

/// A live `(key, value)` pair yielded by scans.
type ScanItem = (Vec<u8>, Vec<u8>);

/// One source cursor of the k-way merge scan.
type SourceIter<'a> = Box<dyn Iterator<Item = SourceHead<'a>> + 'a>;

/// The head element of a merge-scan source.
type SourceHead<'a> = (&'a [u8], &'a MemEntry);

/// The upper-bound predicate of a merge scan.
type BoundCheck<'a> = Box<dyn Fn(&[u8]) -> bool + 'a>;

/// An immutable sorted run produced by a memtable flush or a compaction.
#[derive(Debug, Clone)]
struct Run {
    /// Sorted by key; values of `None` are tombstones.
    entries: Vec<(Vec<u8>, MemEntry)>,
    bytes: u64,
}

impl Run {
    fn get(&self, key: &[u8]) -> Option<&MemEntry> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// Tuning knobs for the LSM.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Flush the memtable once it holds this many entries.
    pub memtable_limit: usize,
    /// Compact once this many immutable runs accumulate.
    pub max_runs: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_limit: 4096,
            max_runs: 6,
        }
    }
}

/// Counters exposed for tests and the benchmark's space accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Completed memtable flushes.
    pub flushes: u64,
    /// Completed compactions.
    pub compactions: u64,
    /// Live tombstones across all runs.
    pub tombstones: u64,
}

/// The LSM table.
///
/// Runs are `Arc`-shared: once flushed they are immutable, so a `Clone` of
/// the whole table copies only the memtable (bounded by
/// [`LsmConfig::memtable_limit`]) and one `Arc` per run — the property the
/// columnar engine's snapshot path relies on. Compaction *replaces* the run
/// list with a freshly merged run; clones holding the old `Arc`s keep
/// reading the pre-compaction runs unchanged.
#[derive(Debug, Clone)]
pub struct LsmTable {
    mem: BTreeMap<Vec<u8>, MemEntry>,
    runs: Vec<Arc<Run>>, // oldest first
    config: LsmConfig,
    stats: LsmStats,
}

impl Default for LsmTable {
    fn default() -> Self {
        Self::new(LsmConfig::default())
    }
}

impl LsmTable {
    /// A new table with the given configuration.
    pub fn new(config: LsmConfig) -> Self {
        LsmTable {
            mem: BTreeMap::new(),
            runs: Vec::new(),
            config,
            stats: LsmStats::default(),
        }
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.mem.insert(key.to_vec(), Some(value.to_vec()));
        self.maybe_flush();
    }

    /// Delete a key by writing a tombstone (cheap, like Cassandra).
    pub fn delete(&mut self, key: &[u8]) {
        self.mem.insert(key.to_vec(), None);
        self.maybe_flush();
    }

    /// Point lookup; `None` for missing or tombstoned keys.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(entry) = self.mem.get(key) {
            return entry.clone();
        }
        for run in self.runs.iter().rev() {
            if let Some(entry) = run.get(key) {
                return entry.clone();
            }
        }
        None
    }

    /// Whether a live value exists for `key`.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Iterate live `(key, value)` pairs whose key starts with `prefix`,
    /// in key order, with newest-version-wins and tombstone suppression.
    pub fn scan_prefix<'a>(&'a self, prefix: &'a [u8]) -> impl Iterator<Item = ScanItem> + 'a {
        self.scan_range(prefix, PrefixEnd::of(prefix))
    }

    /// Iterate live pairs with `lo <= key < hi` (no upper bound when
    /// `hi == PrefixEnd::Unbounded`).
    pub fn scan_range<'a>(
        &'a self,
        lo: &'a [u8],
        hi: PrefixEnd,
    ) -> impl Iterator<Item = ScanItem> + 'a {
        // Build per-source cursors: index 0 = memtable (newest), then runs
        // newest-first. A k-way merge picks the smallest key; on ties the
        // newest source wins and older duplicates are skipped.
        let within = move |k: &[u8]| match &hi {
            PrefixEnd::Excluded(h) => k < h.as_slice(),
            PrefixEnd::Unbounded => true,
        };
        let mut sources: Vec<SourceIter<'a>> = Vec::new();
        sources.push(Box::new(
            self.mem
                .range(lo.to_vec()..)
                .map(|(k, v)| (k.as_slice(), v)),
        ));
        for run in self.runs.iter().rev() {
            let start = run.entries.partition_point(|(k, _)| k.as_slice() < lo);
            sources.push(Box::new(
                run.entries[start..].iter().map(|(k, v)| (k.as_slice(), v)),
            ));
        }
        MergeScan {
            heads: sources.iter_mut().map(|s| s.next()).collect(),
            sources,
            within: Box::new(within),
        }
    }

    /// Count of live keys (scans everything; test/debug helper).
    pub fn live_len(&self) -> usize {
        self.scan_range(&[], PrefixEnd::Unbounded).count()
    }

    fn maybe_flush(&mut self) {
        if self.mem.len() >= self.config.memtable_limit {
            self.flush();
        }
    }

    /// Force the memtable into an immutable run.
    pub fn flush(&mut self) {
        if self.mem.is_empty() {
            return;
        }
        let entries: Vec<(Vec<u8>, MemEntry)> = std::mem::take(&mut self.mem).into_iter().collect();
        let bytes = run_bytes(&entries);
        self.stats.tombstones += entries.iter().filter(|(_, v)| v.is_none()).count() as u64;
        self.runs.push(Arc::new(Run { entries, bytes }));
        self.stats.flushes += 1;
        if self.runs.len() > self.config.max_runs {
            self.compact_tail();
        }
    }

    /// Merge all runs into one, dropping shadowed versions and tombstones.
    pub fn compact(&mut self) {
        self.merge_suffix(0);
    }

    /// Tiered overflow compaction: merge only the **newest half** of the
    /// runs into one and leave the older base runs untouched.
    ///
    /// The full [`LsmTable::compact`] rewrites the entire store — including
    /// the big bulk-loaded base run — every time the run count overflows,
    /// which at small memtable sizes makes automatic compaction O(store)
    /// per few thousand writes (and the columnar engine's snapshot path
    /// tunes the memtable small precisely to keep freezes cheap). Tiering
    /// bounds automatic compaction work to the recently flushed tail; the
    /// base is rewritten only by an explicit `compact()` call.
    pub fn compact_tail(&mut self) {
        self.merge_suffix(self.config.max_runs / 2);
    }

    /// Merge the runs from index `keep` onward into one run. Tombstones are
    /// dropped only when the merge reaches the bottom level (`keep == 0`);
    /// higher merges must retain them because they may still shadow live
    /// entries in the base runs below.
    fn merge_suffix(&mut self, keep: usize) {
        if self.runs.len() <= keep.max(1) {
            return;
        }
        let tail = self.runs.split_off(keep);
        let mut merged: BTreeMap<Vec<u8>, MemEntry> = BTreeMap::new();
        for run in tail {
            // Later (newer) runs overwrite earlier entries. Snapshot clones
            // may still hold the old runs' `Arc`s, so merge by reference
            // (or by move when this table is the last owner).
            match Arc::try_unwrap(run) {
                Ok(run) => {
                    for (k, v) in run.entries {
                        merged.insert(k, v);
                    }
                }
                Err(shared) => {
                    for (k, v) in &shared.entries {
                        merged.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        // Tombstones at the bottom level can be dropped entirely.
        let entries: Vec<(Vec<u8>, MemEntry)> = if keep == 0 {
            merged.into_iter().filter(|(_, v)| v.is_some()).collect()
        } else {
            merged.into_iter().collect()
        };
        let bytes = run_bytes(&entries);
        self.runs.push(Arc::new(Run { entries, bytes }));
        self.stats.compactions += 1;
        // Recount live tombstones (cheap: a scan, no allocation).
        self.stats.tombstones = self
            .runs
            .iter()
            .map(|r| r.entries.iter().filter(|(_, v)| v.is_none()).count() as u64)
            .sum();
    }

    /// Number of immutable runs currently on "disk".
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Counters for tests and reports.
    pub fn stats(&self) -> LsmStats {
        self.stats
    }

    /// Approximate footprint: memtable + all runs (including shadowed
    /// versions and tombstones — that is the point of an LSM's space story).
    pub fn bytes(&self) -> u64 {
        let mem: u64 = self
            .mem
            .iter()
            .map(|(k, v)| k.len() as u64 + v.as_ref().map_or(1, |v| v.len() as u64) + 32)
            .sum();
        mem + self.runs.iter().map(|r| r.bytes).sum::<u64>()
    }
}

/// On-disk footprint of an immutable run, modelling the SSTable format:
/// sorted keys are **prefix-compressed** against their predecessor (the
/// Cassandra/SSTable trick that, combined with the columnar engine's delta
/// encoding, gives Titan its Figure 1 space win), plus a small per-entry
/// header.
fn run_bytes(entries: &[(Vec<u8>, MemEntry)]) -> u64 {
    let mut total = 0u64;
    let mut prev: &[u8] = &[];
    for (k, v) in entries {
        let shared = prev
            .iter()
            .zip(k.iter())
            .take_while(|(a, b)| a == b)
            .count();
        total += (k.len() - shared) as u64 + v.as_ref().map_or(1, |v| v.len() as u64) + 4;
        prev = k;
    }
    total
}

/// Exclusive upper bound for [`LsmTable::scan_range`].
#[derive(Debug, Clone)]
pub enum PrefixEnd {
    /// Stop before this key.
    Excluded(Vec<u8>),
    /// No upper bound.
    Unbounded,
}

impl PrefixEnd {
    /// The smallest key greater than every key with the given prefix.
    pub fn of(prefix: &[u8]) -> PrefixEnd {
        let mut end = prefix.to_vec();
        while let Some(last) = end.last_mut() {
            if *last < 0xFF {
                *last += 1;
                return PrefixEnd::Excluded(end);
            }
            end.pop();
        }
        PrefixEnd::Unbounded
    }
}

struct MergeScan<'a> {
    sources: Vec<SourceIter<'a>>,
    heads: Vec<Option<SourceHead<'a>>>,
    within: BoundCheck<'a>,
}

impl<'a> Iterator for MergeScan<'a> {
    type Item = ScanItem;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            // Find the smallest key among heads; newest source (lowest index)
            // wins ties.
            let mut best: Option<(usize, &'a [u8])> = None;
            for (i, head) in self.heads.iter().enumerate() {
                if let Some((k, _)) = head {
                    match best {
                        None => best = Some((i, k)),
                        Some((_, bk)) if *k < bk => best = Some((i, k)),
                        _ => {}
                    }
                }
            }
            let (winner, key) = best?;
            if !(self.within)(key) {
                return None;
            }
            let (_, entry) = self.heads[winner].take().expect("head exists");
            self.heads[winner] = self.sources[winner].next();
            // Skip the same key in all older sources.
            for i in 0..self.heads.len() {
                while let Some((k, _)) = self.heads[i] {
                    if k == key {
                        self.heads[i] = self.sources[i].next();
                    } else {
                        break;
                    }
                }
            }
            match entry {
                Some(value) => return Some((key.to_vec(), value.clone())),
                None => continue, // tombstone suppresses older versions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LsmTable {
        LsmTable::new(LsmConfig {
            memtable_limit: 8,
            max_runs: 3,
        })
    }

    #[test]
    fn put_get_delete() {
        let mut t = LsmTable::default();
        t.put(b"a", b"1");
        t.put(b"b", b"2");
        assert_eq!(t.get(b"a"), Some(b"1".to_vec()));
        t.delete(b"a");
        assert_eq!(t.get(b"a"), None);
        assert_eq!(t.get(b"b"), Some(b"2".to_vec()));
        assert!(!t.contains(b"c"));
    }

    #[test]
    fn newest_version_wins_across_runs() {
        let mut t = small();
        for round in 0..5u8 {
            for k in 0..10u8 {
                t.put(&[k], &[round]);
            }
            t.flush();
        }
        for k in 0..10u8 {
            assert_eq!(t.get(&[k]), Some(vec![4]));
        }
    }

    #[test]
    fn tombstone_survives_flush() {
        let mut t = small();
        t.put(b"x", b"1");
        t.flush();
        t.delete(b"x");
        t.flush();
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.live_len(), 0);
    }

    #[test]
    fn compaction_drops_tombstones_and_shrinks() {
        let mut t = small();
        for k in 0..100u8 {
            t.put(&[k], &[k]);
        }
        t.flush();
        for k in 0..50u8 {
            t.delete(&[k]);
        }
        t.flush();
        let before = t.bytes();
        t.compact();
        assert!(t.bytes() < before, "compaction reclaims space");
        assert_eq!(t.run_count(), 1);
        assert_eq!(t.live_len(), 50);
        assert_eq!(t.stats().tombstones, 0);
        for k in 0..100u8 {
            assert_eq!(t.get(&[k]).is_some(), k >= 50);
        }
    }

    #[test]
    fn auto_flush_and_auto_compact() {
        let mut t = small();
        for k in 0..200u32 {
            t.put(&k.to_be_bytes(), b"v");
        }
        assert!(t.stats().flushes > 0, "memtable limit triggers flushes");
        assert!(t.run_count() <= 4, "max_runs bounds the run count");
        assert!(t.stats().compactions > 0);
        assert_eq!(t.live_len(), 200);
    }

    #[test]
    fn prefix_scan_merges_sources() {
        let mut t = small();
        // Rows keyed (vertex_id BE, column) like the columnar engine.
        for v in 0..4u32 {
            for c in 0..4u8 {
                let mut key = v.to_be_bytes().to_vec();
                key.push(c);
                t.put(&key, &[c]);
            }
            t.flush();
        }
        // Overwrite one column in the memtable and delete another.
        let mut k = 2u32.to_be_bytes().to_vec();
        k.push(1);
        t.put(&k, b"new");
        let mut k2 = 2u32.to_be_bytes().to_vec();
        k2.push(2);
        t.delete(&k2);

        let hits: Vec<(Vec<u8>, Vec<u8>)> = t.scan_prefix(&2u32.to_be_bytes()).collect();
        assert_eq!(hits.len(), 3, "one column deleted");
        assert_eq!(hits[1].1, b"new".to_vec());
        // Keys come back sorted.
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn prefix_end_handles_ff() {
        match PrefixEnd::of(&[1, 0xFF]) {
            PrefixEnd::Excluded(e) => assert_eq!(e, vec![2]),
            _ => panic!("expected excluded"),
        }
        assert!(matches!(PrefixEnd::of(&[0xFF, 0xFF]), PrefixEnd::Unbounded));
        assert!(matches!(PrefixEnd::of(&[]), PrefixEnd::Unbounded));
    }

    #[test]
    fn scan_range_unbounded() {
        let mut t = small();
        t.put(b"a", b"1");
        t.put(b"z", b"2");
        t.flush();
        let all: Vec<_> = t.scan_range(b"", PrefixEnd::Unbounded).collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn bytes_grow_until_compaction() {
        // Disable auto-compaction so the growth is observable.
        let mut t = LsmTable::new(LsmConfig {
            memtable_limit: 1_000_000,
            max_runs: 1_000_000,
        });
        for k in 0..64u32 {
            t.put(&k.to_be_bytes(), &[0u8; 32]);
        }
        t.flush();
        let b1 = t.bytes();
        // Overwrite everything: space roughly doubles until compaction.
        for k in 0..64u32 {
            t.put(&k.to_be_bytes(), &[1u8; 32]);
        }
        t.flush();
        assert!(t.bytes() > b1);
        t.compact();
        assert!(
            t.bytes() <= b1 + 64,
            "post-compaction space back to ~one copy"
        );
    }
}
