//! Append-only segmented vector with structurally-shared clones.
//!
//! The MVCC building block behind the columnar engine's native snapshot
//! path: a `SegVec<T>` grows only at the tail, and once a segment fills it
//! is **closed** — wrapped in an `Arc` and never mutated again. Cloning a
//! `SegVec` therefore copies only
//!
//! * the list of `Arc` pointers to closed segments (O(len / SEGMENT)), and
//! * the open tail segment (O(SEGMENT) elements at most),
//!
//! never the elements inside closed segments. A clone taken at length `n`
//! is an immutable view of exactly the first `n` elements — the "per-epoch
//! visible-length watermark" — while the original keeps appending; the two
//! share every closed segment.
//!
//! Used for the columnar engine's dense id columns (canonical→internal id
//! maps and the eid-indexed edge column), which are append-only by
//! construction: ids are handed out sequentially and deletions are
//! tombstones elsewhere, never removals here.

use std::sync::Arc;

/// Elements per closed segment. Snapshot (clone) cost is bounded by this
/// constant plus one `Arc` clone per closed segment.
pub const SEGMENT: usize = 1024;

/// Append-only segmented vector; see module docs.
#[derive(Debug)]
pub struct SegVec<T> {
    /// Full segments, each exactly [`SEGMENT`] elements, immutable forever.
    closed: Vec<Arc<Vec<T>>>,
    /// The growing tail, always shorter than [`SEGMENT`].
    open: Vec<T>,
}

impl<T> Default for SegVec<T> {
    fn default() -> Self {
        SegVec::new()
    }
}

impl<T: Clone> Clone for SegVec<T> {
    fn clone(&self) -> Self {
        SegVec {
            closed: self.closed.clone(), // Arc bumps only
            open: self.open.clone(),     // bounded by SEGMENT
        }
    }
}

impl<T> SegVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        SegVec {
            closed: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.closed.len() * SEGMENT + self.open.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty() && self.open.is_empty()
    }

    /// Append one element; closes the tail segment when it fills.
    pub fn push(&mut self, value: T) {
        self.open.push(value);
        if self.open.len() == SEGMENT {
            let full = std::mem::take(&mut self.open);
            self.closed.push(Arc::new(full));
        }
    }

    /// The element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        let seg = index / SEGMENT;
        if seg < self.closed.len() {
            self.closed[seg].get(index % SEGMENT)
        } else {
            self.open.get(index - self.closed.len() * SEGMENT)
        }
    }

    /// Iterate all elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.closed
            .iter()
            .flat_map(|seg| seg.iter())
            .chain(self.open.iter())
    }

    /// How many closed segments this vector currently shares with clones
    /// (diagnostics / space accounting).
    pub fn closed_segments(&self) -> usize {
        self.closed.len()
    }

    /// Approximate heap footprint in bytes, counting shared segments once.
    pub fn bytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64 + 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_across_segments() {
        let mut v = SegVec::new();
        for i in 0..(SEGMENT * 2 + 100) {
            v.push(i as u64);
        }
        assert_eq!(v.len(), SEGMENT * 2 + 100);
        assert_eq!(v.closed_segments(), 2);
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(SEGMENT), Some(&(SEGMENT as u64)));
        assert_eq!(v.get(SEGMENT * 2 + 99), Some(&(SEGMENT as u64 * 2 + 99)));
        assert_eq!(v.get(SEGMENT * 2 + 100), None);
        let collected: Vec<u64> = v.iter().copied().collect();
        assert_eq!(collected.len(), v.len());
        assert!(collected.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn clone_is_a_stable_watermark() {
        let mut v = SegVec::new();
        for i in 0..(SEGMENT + 7) {
            v.push(i as u64);
        }
        let frozen = v.clone();
        let watermark = frozen.len();
        for i in 0..(SEGMENT * 3) {
            v.push(900_000 + i as u64);
        }
        // The clone still sees exactly its prefix, element for element.
        assert_eq!(frozen.len(), watermark);
        assert_eq!(frozen.get(watermark - 1), Some(&(SEGMENT as u64 + 6)));
        assert_eq!(frozen.get(watermark), None);
        // And shares the closed segment with the original (same allocation).
        assert!(Arc::ptr_eq(&frozen.closed[0], &v.closed[0]));
    }

    #[test]
    fn clone_cost_is_bounded_by_open_tail() {
        let mut v = SegVec::new();
        for i in 0..(SEGMENT * 64) {
            v.push(i as u64);
        }
        let frozen = v.clone();
        // All 64 segments shared, nothing in the open tail.
        assert_eq!(frozen.closed_segments(), 64);
        assert!(frozen.open.is_empty());
        for seg in 0..64 {
            assert!(Arc::ptr_eq(&frozen.closed[seg], &v.closed[seg]));
        }
    }

    #[test]
    fn empty_and_default() {
        let v: SegVec<u32> = SegVec::default();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.get(0), None);
        assert_eq!(v.iter().count(), 0);
    }
}
