//! Integer codecs: LEB128 varints, zigzag, and delta encoding.
//!
//! Titan compacts node identifiers in each adjacency list "with a form of
//! delta encoding, a strategy very effective in graphs with nodes of high
//! degree" (§6.2, *Space*). The columnar engine uses [`delta_encode`] for its
//! neighbor lists; the document engine uses varints in its binary document
//! format.

/// Append `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a varint from `buf` at `pos`; advances `pos`. Returns `None` on
/// truncated or overlong input.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-encode a signed integer so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Delta-encode a **sorted** slice of ids: first value as-is, then gaps,
/// all as varints. Panics in debug builds if the input is unsorted.
pub fn delta_encode(sorted: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sorted.len() + 4);
    write_varint(&mut out, sorted.len() as u64);
    let mut prev = 0u64;
    for (i, &v) in sorted.iter().enumerate() {
        debug_assert!(i == 0 || v >= prev, "delta_encode input must be sorted");
        let gap = if i == 0 { v } else { v - prev };
        write_varint(&mut out, gap);
        prev = v;
    }
    out
}

/// Decode a [`delta_encode`]d buffer.
pub fn delta_decode(buf: &[u8]) -> Option<Vec<u64>> {
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for i in 0..n {
        let gap = read_varint(buf, &mut pos)?;
        let v = if i == 0 { gap } else { prev.checked_add(gap)? };
        out.push(v);
        prev = v;
    }
    Some(out)
}

/// Iterate a delta-encoded buffer without materializing the vector.
pub struct DeltaIter<'a> {
    buf: &'a [u8],
    pos: usize,
    remaining: u64,
    prev: u64,
    first: bool,
}

impl<'a> DeltaIter<'a> {
    /// Start decoding `buf`; returns `None` if the header is malformed.
    pub fn new(buf: &'a [u8]) -> Option<Self> {
        let mut pos = 0usize;
        let n = read_varint(buf, &mut pos)?;
        Some(DeltaIter {
            buf,
            pos,
            remaining: n,
            prev: 0,
            first: true,
        })
    }

    /// Number of ids that have not been yielded yet.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<'a> Iterator for DeltaIter<'a> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let gap = read_varint(self.buf, &mut self.pos)?;
        let v = if self.first {
            gap
        } else {
            self.prev.checked_add(gap)?
        };
        self.first = false;
        self.prev = v;
        self.remaining -= 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes would exceed 64 bits.
        let buf = vec![0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 4242, -4242] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert!(zigzag(-1) < 4);
        assert!(zigzag(1) < 4);
    }

    #[test]
    fn delta_round_trip() {
        let ids = vec![3u64, 7, 7, 100, 5_000_000, 5_000_001];
        let enc = delta_encode(&ids);
        assert_eq!(delta_decode(&enc), Some(ids.clone()));
        let via_iter: Vec<u64> = DeltaIter::new(&enc).unwrap().collect();
        assert_eq!(via_iter, ids);
    }

    #[test]
    fn delta_empty() {
        let enc = delta_encode(&[]);
        assert_eq!(delta_decode(&enc), Some(vec![]));
        assert_eq!(DeltaIter::new(&enc).unwrap().count(), 0);
    }

    #[test]
    fn delta_compresses_dense_ids() {
        // 1000 consecutive ids: ~1 byte each + header, far below 8 bytes each.
        let ids: Vec<u64> = (1_000_000..1_001_000).collect();
        let enc = delta_encode(&ids);
        assert!(enc.len() < 1_100, "got {} bytes", enc.len());
    }

    #[test]
    fn delta_decode_rejects_garbage() {
        assert_eq!(delta_decode(&[]), None);
        // Claims 5 entries but provides none.
        assert_eq!(delta_decode(&[5]), None);
    }

    #[test]
    fn delta_iter_size_hint() {
        let enc = delta_encode(&[1, 2, 3]);
        let it = DeltaIter::new(&enc).unwrap();
        assert_eq!(it.size_hint(), (3, Some(3)));
    }
}
