//! An in-memory B+Tree with range scans.
//!
//! Used by the triple engine (three statement orders, as BlazeGraph builds a
//! B+Tree for each of SPO/POS/OSP) and by the relational engine (primary-key
//! and foreign-key indexes, as Postgres under Sqlg).
//!
//! Nodes live in an index-linked arena (no `unsafe`, no `Rc`). Leaves form a
//! doubly-linked list for ordered iteration. Deletion follows the PostgreSQL
//! nbtree philosophy: keys are removed from leaves immediately, but pages are
//! only reclaimed when they become **completely empty** — underfull pages are
//! tolerated. This keeps the code auditable while preserving all lookup and
//! scan invariants (checked by `check_invariants` in tests).

use std::fmt::Debug;

/// Default maximum number of keys per node.
pub const DEFAULT_ORDER: usize = 32;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// `keys[i]` is the smallest key reachable through `children[i + 1]`.
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
        next: u32,
        prev: u32,
    },
    /// Arena free-list slot.
    Free(u32),
}

/// An ordered map backed by a B+Tree. Keys must be `Ord + Clone`.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: u32,
    first_leaf: u32,
    free_head: u32,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone + Debug, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Debug, V: Clone> BPlusTree<K, V> {
    /// An empty tree with [`DEFAULT_ORDER`].
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree with at most `order` keys per node (`order >= 3`).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+Tree order must be at least 3");
        let root = Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
            next: NIL,
            prev: NIL,
        };
        BPlusTree {
            nodes: vec![root],
            root: 0,
            first_leaf: 0,
            free_head: NIL,
            order,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of arena slots currently holding live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n, Node::Free(_)))
            .count()
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.nodes[idx as usize] {
                Node::Free(next) => self.free_head = next,
                _ => unreachable!("free list points at live node"),
            }
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize] = Node::Free(self.free_head);
        self.free_head = idx;
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let leaf = self.find_leaf(key);
        match &self.nodes[leaf as usize] {
            Node::Leaf { keys, vals, .. } => keys.binary_search(key).ok().map(|i| &vals[i]),
            _ => unreachable!("find_leaf returned non-leaf"),
        }
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    fn find_leaf(&self, key: &K) -> u32 {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Leaf { .. } => return cur,
                Node::Internal { keys, children } => {
                    // keys[i] <= key goes to children[i + 1]
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    cur = children[idx];
                }
                Node::Free(_) => unreachable!("descended into free node"),
            }
        }
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root;
        match self.insert_rec(root, key, value) {
            InsertResult::Replaced(old) => Some(old),
            InsertResult::Done => {
                self.len += 1;
                None
            }
            InsertResult::Split(sep, right) => {
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![root, right],
                });
                self.root = new_root;
                self.len += 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, node: u32, key: K, value: V) -> InsertResult<K, V> {
        // A two-phase borrow dance: decide on the child first, then mutate.
        let child = match &self.nodes[node as usize] {
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Some((idx, children[idx]))
            }
            Node::Leaf { .. } => None,
            Node::Free(_) => unreachable!(),
        };

        match child {
            Some((child_idx, child_node)) => match self.insert_rec(child_node, key, value) {
                InsertResult::Split(sep, right) => {
                    let order = self.order;
                    let needs_split;
                    {
                        let Node::Internal { keys, children } = &mut self.nodes[node as usize]
                        else {
                            unreachable!()
                        };
                        keys.insert(child_idx, sep);
                        children.insert(child_idx + 1, right);
                        needs_split = keys.len() > order;
                    }
                    if needs_split {
                        self.split_internal(node)
                    } else {
                        InsertResult::Done
                    }
                }
                other => other,
            },
            None => {
                let order = self.order;
                let needs_split;
                {
                    let Node::Leaf { keys, vals, .. } = &mut self.nodes[node as usize] else {
                        unreachable!()
                    };
                    match keys.binary_search(&key) {
                        Ok(i) => {
                            let old = std::mem::replace(&mut vals[i], value);
                            return InsertResult::Replaced(old);
                        }
                        Err(i) => {
                            keys.insert(i, key);
                            vals.insert(i, value);
                        }
                    }
                    needs_split = keys.len() > order;
                }
                if needs_split {
                    self.split_leaf(node)
                } else {
                    InsertResult::Done
                }
            }
        }
    }

    fn split_leaf(&mut self, node: u32) -> InsertResult<K, V> {
        let (right_keys, right_vals, old_next) = {
            let Node::Leaf {
                keys, vals, next, ..
            } = &mut self.nodes[node as usize]
            else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            (keys.split_off(mid), vals.split_off(mid), *next)
        };
        let sep = right_keys[0].clone();
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            vals: right_vals,
            next: old_next,
            prev: node,
        });
        if old_next != NIL {
            if let Node::Leaf { prev, .. } = &mut self.nodes[old_next as usize] {
                *prev = right;
            }
        }
        if let Node::Leaf { next, .. } = &mut self.nodes[node as usize] {
            *next = right;
        }
        InsertResult::Split(sep, right)
    }

    fn split_internal(&mut self, node: u32) -> InsertResult<K, V> {
        let (sep, right_keys, right_children) = {
            let Node::Internal { keys, children } = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid + 1);
            let sep = keys.pop().expect("mid key exists");
            let right_children = children.split_off(mid + 1);
            (sep, right_keys, right_children)
        };
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        InsertResult::Split(sep, right)
    }

    /// Remove a key; returns its value if it was present.
    ///
    /// Empty pages are unlinked and reclaimed; underfull pages are tolerated
    /// (see module docs).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that lost all its keys.
            loop {
                let replace = match &self.nodes[self.root as usize] {
                    Node::Internal { keys, children } if keys.is_empty() => {
                        debug_assert_eq!(children.len(), 1);
                        Some(children[0])
                    }
                    _ => None,
                };
                match replace {
                    Some(only_child) => {
                        let old_root = self.root;
                        self.root = only_child;
                        self.release(old_root);
                    }
                    None => break,
                }
            }
        }
        removed
    }

    fn remove_rec(&mut self, node: u32, key: &K) -> Option<V> {
        let child = match &self.nodes[node as usize] {
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Some((idx, children[idx]))
            }
            Node::Leaf { .. } => None,
            Node::Free(_) => unreachable!(),
        };

        match child {
            Some((child_idx, child_node)) => {
                let removed = self.remove_rec(child_node, key)?;
                // Reclaim the child if it became an empty page.
                let child_empty = match &self.nodes[child_node as usize] {
                    Node::Leaf { keys, .. } => keys.is_empty(),
                    Node::Internal { children, .. } => children.is_empty(),
                    Node::Free(_) => false,
                };
                if child_empty {
                    if let Node::Leaf { prev, next, .. } = self.nodes[child_node as usize] {
                        if prev != NIL {
                            if let Node::Leaf { next: pn, .. } = &mut self.nodes[prev as usize] {
                                *pn = next;
                            }
                        } else {
                            self.first_leaf = next;
                        }
                        if next != NIL {
                            if let Node::Leaf { prev: np, .. } = &mut self.nodes[next as usize] {
                                *np = prev;
                            }
                        }
                    }
                    let Node::Internal { keys, children } = &mut self.nodes[node as usize] else {
                        unreachable!()
                    };
                    children.remove(child_idx);
                    if child_idx == 0 {
                        if !keys.is_empty() {
                            keys.remove(0);
                        }
                    } else {
                        keys.remove(child_idx - 1);
                    }
                    self.release(child_node);
                }
                Some(removed)
            }
            None => {
                let Node::Leaf { keys, vals, .. } = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                match keys.binary_search(key) {
                    Ok(i) => {
                        keys.remove(i);
                        Some(vals.remove(i))
                    }
                    Err(_) => None,
                }
            }
        }
    }

    /// Iterate all `(key, value)` pairs in key order.
    pub fn iter(&self) -> BPlusIter<'_, K, V> {
        BPlusIter {
            tree: self,
            leaf: self.first_leaf,
            pos: 0,
            upper: None,
        }
    }

    /// Iterate pairs with `lo <= key` (and `key < hi` when `hi` is given),
    /// in key order.
    pub fn range(&self, lo: &K, hi: Option<&K>) -> BPlusIter<'_, K, V> {
        let leaf = self.find_leaf(lo);
        let pos = match &self.nodes[leaf as usize] {
            Node::Leaf { keys, .. } => match keys.binary_search(lo) {
                Ok(i) => i,
                Err(i) => i,
            },
            _ => 0,
        };
        BPlusIter {
            tree: self,
            leaf,
            pos,
            upper: hi.cloned(),
        }
    }

    /// Smallest key (with value), if any.
    pub fn first(&self) -> Option<(&K, &V)> {
        let mut leaf = self.first_leaf;
        loop {
            if leaf == NIL {
                return None;
            }
            match &self.nodes[leaf as usize] {
                Node::Leaf {
                    keys, vals, next, ..
                } => {
                    if keys.is_empty() {
                        leaf = *next;
                    } else {
                        return Some((&keys[0], &vals[0]));
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Approximate memory footprint given per-key and per-value sizers.
    pub fn approx_bytes(&self, key_size: impl Fn(&K) -> u64, val_size: impl Fn(&V) -> u64) -> u64 {
        let mut total = 0u64;
        for node in &self.nodes {
            total += 24; // node header overhead
            match node {
                Node::Internal { keys, children } => {
                    total += keys.iter().map(&key_size).sum::<u64>();
                    total += 4 * children.len() as u64;
                }
                Node::Leaf { keys, vals, .. } => {
                    total += keys.iter().map(&key_size).sum::<u64>();
                    total += vals.iter().map(&val_size).sum::<u64>();
                    total += 8; // leaf links
                }
                Node::Free(_) => {}
            }
        }
        total
    }

    /// Verify structural invariants; used by tests and debug assertions.
    /// Returns the number of keys reachable through leaf links.
    pub fn check_invariants(&self) -> Result<usize, String> {
        // 1. Every leaf reachable from the root is reachable via leaf links.
        let mut via_links = Vec::new();
        let mut leaf = self.first_leaf;
        let mut prev_key: Option<K> = None;
        let mut guard = 0usize;
        while leaf != NIL {
            guard += 1;
            if guard > self.nodes.len() + 1 {
                return Err("leaf chain contains a cycle".into());
            }
            match &self.nodes[leaf as usize] {
                Node::Leaf { keys, next, .. } => {
                    for k in keys {
                        if let Some(pk) = &prev_key {
                            if pk >= k {
                                return Err(format!("leaf keys out of order: {pk:?} >= {k:?}"));
                            }
                        }
                        prev_key = Some(k.clone());
                        via_links.push(());
                    }
                    leaf = *next;
                }
                _ => return Err("leaf chain points at non-leaf".into()),
            }
        }
        if via_links.len() != self.len {
            return Err(format!(
                "len mismatch: links see {}, len says {}",
                via_links.len(),
                self.len
            ));
        }
        // 2. Internal separators bound their subtrees.
        self.check_node(self.root, None, None)?;
        Ok(via_links.len())
    }

    fn check_node(&self, node: u32, lo: Option<&K>, hi: Option<&K>) -> Result<(), String> {
        match &self.nodes[node as usize] {
            Node::Leaf { keys, .. } => {
                for k in keys {
                    if let Some(lo) = lo {
                        if k < lo {
                            return Err(format!("leaf key {k:?} below lower bound {lo:?}"));
                        }
                    }
                    if let Some(hi) = hi {
                        if k >= hi {
                            return Err(format!("leaf key {k:?} not below upper bound {hi:?}"));
                        }
                    }
                }
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("internal fanout mismatch".into());
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err("internal keys out of order".into());
                    }
                }
                for (i, child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(*child, child_lo, child_hi)?;
                }
                Ok(())
            }
            Node::Free(_) => Err("reachable free node".into()),
        }
    }
}

enum InsertResult<K, V> {
    Done,
    Replaced(V),
    Split(K, u32),
}

/// In-order iterator over a [`BPlusTree`].
pub struct BPlusIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: u32,
    pos: usize,
    upper: Option<K>,
}

impl<'a, K: Ord + Clone + Debug, V: Clone> Iterator for BPlusIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            match &self.tree.nodes[self.leaf as usize] {
                Node::Leaf {
                    keys, vals, next, ..
                } => {
                    if self.pos < keys.len() {
                        let k = &keys[self.pos];
                        if let Some(hi) = &self.upper {
                            if k >= hi {
                                self.leaf = NIL;
                                return None;
                            }
                        }
                        let v = &vals[self.pos];
                        self.pos += 1;
                        return Some((k, v));
                    }
                    self.leaf = *next;
                    self.pos = 0;
                }
                _ => unreachable!("leaf chain corrupted"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_behaves() {
        let t: BPlusTree<u64, u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.first(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BPlusTree::with_order(4);
        assert_eq!(t.insert(5u64, "five"), None);
        assert_eq!(t.insert(3, "three"), None);
        assert_eq!(t.insert(5, "FIVE"), Some("five"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&5), Some(&"FIVE"));
        assert_eq!(t.get(&4), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn many_inserts_keep_order() {
        let mut t = BPlusTree::with_order(4);
        // Insert in a scrambled order.
        for i in 0..1000u64 {
            t.insert((i * 7919) % 1000, i);
        }
        assert_eq!(t.len(), 1000);
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        let expected: Vec<u64> = (0..1000).collect();
        assert_eq!(keys, expected);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_scans() {
        let mut t = BPlusTree::with_order(5);
        for i in 0..200u64 {
            t.insert(i * 2, i); // even keys
        }
        let r: Vec<u64> = t.range(&50, Some(&60)).map(|(k, _)| *k).collect();
        assert_eq!(r, vec![50, 52, 54, 56, 58]);
        // Lower bound not present:
        let r: Vec<u64> = t.range(&51, Some(&57)).map(|(k, _)| *k).collect();
        assert_eq!(r, vec![52, 54, 56]);
        // Open-ended:
        let r: Vec<u64> = t.range(&394, None).map(|(k, _)| *k).collect();
        assert_eq!(r, vec![394, 396, 398]);
    }

    #[test]
    fn remove_then_lookup() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..500u64 {
            t.insert(i, i * 10);
        }
        for i in (0..500).step_by(2) {
            assert_eq!(t.remove(&i), Some(i * 10));
        }
        assert_eq!(t.len(), 250);
        for i in 0..500u64 {
            if i % 2 == 0 {
                assert_eq!(t.get(&i), None);
            } else {
                assert_eq!(t.get(&i), Some(&(i * 10)));
            }
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_everything_reclaims_pages() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..300u64 {
            t.insert(i, ());
        }
        let nodes_full = t.node_count();
        for i in 0..300u64 {
            assert_eq!(t.remove(&i), Some(()));
        }
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        assert!(
            t.node_count() < nodes_full / 4,
            "empty pages should be reclaimed ({} vs {})",
            t.node_count(),
            nodes_full
        );
        t.check_invariants().unwrap();
        // Tree remains usable after total drain.
        t.insert(42, ());
        assert!(t.contains_key(&42));
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_missing_is_noop() {
        let mut t = BPlusTree::with_order(4);
        t.insert(1u64, 1u64);
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn reverse_insert_order() {
        let mut t = BPlusTree::with_order(3);
        for i in (0..256u64).rev() {
            t.insert(i, i);
        }
        assert_eq!(t.len(), 256);
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..256).collect::<Vec<_>>());
        t.check_invariants().unwrap();
    }

    #[test]
    fn tuple_keys_for_triple_store() {
        // The triple engine keys statements as (s, p, o) triples.
        let mut t: BPlusTree<(u64, u64, u64), ()> = BPlusTree::new();
        for s in 0..10u64 {
            for p in 0..5u64 {
                for o in 0..3u64 {
                    t.insert((s, p, o), ());
                }
            }
        }
        assert_eq!(t.len(), 150);
        // Prefix scan: everything with s == 4.
        let hits: Vec<(u64, u64, u64)> = t
            .range(&(4, 0, 0), Some(&(5, 0, 0)))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(hits.len(), 15);
        assert!(hits.iter().all(|(s, _, _)| *s == 4));
    }

    #[test]
    fn first_skips_nothing() {
        let mut t = BPlusTree::with_order(4);
        t.insert(9u64, "nine");
        t.insert(2, "two");
        assert_eq!(t.first(), Some((&2, &"two")));
    }

    #[test]
    fn approx_bytes_grows() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new();
        let empty = t.approx_bytes(|_| 8, |_| 8);
        for i in 0..100 {
            t.insert(i, i);
        }
        assert!(t.approx_bytes(|_| 8, |_| 8) > empty);
    }
}
