//! Property tests: each substrate vs. a std-library oracle.

use gm_storage::bptree::BPlusTree;
use gm_storage::codec::{delta_decode, delta_encode, read_varint, write_varint};
use gm_storage::lsm::{LsmConfig, LsmTable, PrefixEnd};
use gm_storage::{Bitmap, HashIndex, PageStore, RecordFile};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashSet};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn arb_map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            any::<u16>().prop_map(MapOp::Remove),
            any::<u16>().prop_map(MapOp::Get),
        ],
        0..400,
    )
}

proptest! {
    /// B+Tree behaves exactly like BTreeMap under arbitrary operations, and
    /// its structural invariants hold after every batch.
    #[test]
    fn bptree_matches_btreemap(ops in arb_map_ops(), order in 3usize..12) {
        let mut tree: BPlusTree<u16, u32> = BPlusTree::with_order(order);
        let mut oracle: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), oracle.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(tree.get(&k), oracle.get(&k));
                }
            }
        }
        prop_assert_eq!(tree.len(), oracle.len());
        let pairs: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let expect: Vec<(u16, u32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(pairs, expect);
        tree.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// B+Tree range scans agree with BTreeMap range scans.
    #[test]
    fn bptree_range_matches(
        keys in prop::collection::btree_set(any::<u16>(), 0..300),
        lo in any::<u16>(),
        hi in any::<u16>(),
    ) {
        let mut tree: BPlusTree<u16, ()> = BPlusTree::with_order(4);
        for &k in &keys {
            tree.insert(k, ());
        }
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let got: Vec<u16> = tree.range(&lo, Some(&hi)).map(|(k, _)| *k).collect();
        let expect: Vec<u16> = keys.range(lo..hi).copied().collect();
        prop_assert_eq!(got, expect);
    }

    /// Bitmap behaves like a HashSet and its boolean algebra matches set ops.
    #[test]
    fn bitmap_matches_sets(
        a in prop::collection::hash_set(0u64..200_000, 0..500),
        b in prop::collection::hash_set(0u64..200_000, 0..500),
    ) {
        let ba: Bitmap = a.iter().copied().collect();
        let bb: Bitmap = b.iter().copied().collect();
        prop_assert_eq!(ba.len(), a.len() as u64);

        let and: HashSet<u64> = ba.and(&bb).iter().collect();
        let or: HashSet<u64> = ba.or(&bb).iter().collect();
        let diff: HashSet<u64> = ba.and_not(&bb).iter().collect();
        prop_assert_eq!(and, a.intersection(&b).copied().collect::<HashSet<_>>());
        prop_assert_eq!(or, a.union(&b).copied().collect::<HashSet<_>>());
        prop_assert_eq!(diff, a.difference(&b).copied().collect::<HashSet<_>>());
    }

    /// Bitmap iteration is sorted and removal keeps membership exact.
    #[test]
    fn bitmap_remove_consistent(
        values in prop::collection::btree_set(0u64..100_000, 1..300),
        remove_mask in prop::collection::vec(any::<bool>(), 300),
    ) {
        let mut bm: Bitmap = values.iter().copied().collect();
        let mut oracle: BTreeSet<u64> = values.clone();
        for (v, rm) in values.iter().zip(remove_mask) {
            if rm {
                prop_assert!(bm.remove(*v));
                oracle.remove(v);
            }
        }
        let got: Vec<u64> = bm.iter().collect();
        let expect: Vec<u64> = oracle.iter().copied().collect();
        prop_assert_eq!(got, expect);
    }

    /// LSM equals a BTreeMap oracle under put/delete with periodic flushes.
    #[test]
    fn lsm_matches_btreemap(
        ops in prop::collection::vec(
            (any::<u8>(), prop::option::of(any::<u32>())), 0..300),
        memtable_limit in 1usize..32,
    ) {
        let mut lsm = LsmTable::new(LsmConfig { memtable_limit, max_runs: 3 });
        let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v) in ops {
            let key = vec![k];
            match v {
                Some(val) => {
                    let value = val.to_be_bytes().to_vec();
                    lsm.put(&key, &value);
                    oracle.insert(key, value);
                }
                None => {
                    lsm.delete(&key);
                    oracle.remove(&key);
                }
            }
        }
        for k in 0..=255u8 {
            prop_assert_eq!(lsm.get(&[k]), oracle.get(&vec![k]).cloned());
        }
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = lsm.scan_range(&[], PrefixEnd::Unbounded).collect();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = oracle.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    /// Varint and delta codecs round-trip arbitrary input.
    #[test]
    fn codecs_round_trip(mut ids in prop::collection::vec(any::<u64>(), 0..200)) {
        ids.sort_unstable();
        let enc = delta_encode(&ids);
        prop_assert_eq!(delta_decode(&enc), Some(ids));

        let mut buf = Vec::new();
        let values: Vec<u64> = (0..50).map(|i| i * 7919).collect();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// RecordFile allocation never hands out an id that is already live, and
    /// reads return exactly what was written.
    #[test]
    fn record_file_consistent(writes in prop::collection::vec(any::<[u8; 8]>(), 1..100)) {
        let mut f = RecordFile::new(8);
        let mut live: BTreeMap<u64, [u8; 8]> = BTreeMap::new();
        for (i, w) in writes.iter().enumerate() {
            let id = f.alloc(w);
            prop_assert!(live.insert(id, *w).is_none(), "id reused while live");
            // Periodically free an arbitrary live record.
            if i % 3 == 2 {
                let victim = *live.keys().next().unwrap();
                prop_assert!(f.free(victim));
                live.remove(&victim);
            }
        }
        for (id, w) in &live {
            prop_assert_eq!(f.get(*id), Some(&w[..]));
        }
        prop_assert_eq!(f.len(), live.len() as u64);
        prop_assert_eq!(f.iter_ids().collect::<Vec<_>>(),
                        live.keys().copied().collect::<Vec<_>>());
    }

    /// PageStore: updates preserve logical ids; compaction preserves content.
    #[test]
    fn pagestore_consistent(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..60),
        updates in prop::collection::vec((any::<prop::sample::Index>(), prop::collection::vec(any::<u8>(), 0..32)), 0..30),
    ) {
        let mut s = PageStore::new();
        let ids: Vec<u64> = records.iter().map(|r| s.alloc(r)).collect();
        let mut oracle: BTreeMap<u64, Vec<u8>> =
            ids.iter().copied().zip(records.iter().cloned()).collect();
        for (idx, new_val) in updates {
            let rid = ids[idx.index(ids.len())];
            prop_assert!(s.put(rid, &new_val));
            oracle.insert(rid, new_val);
        }
        s.compact();
        for (rid, want) in &oracle {
            prop_assert_eq!(s.get(*rid), Some(want.as_slice()));
        }
    }

    /// HashIndex multimap equals a HashSet<(k, v)> oracle.
    #[test]
    fn hashidx_matches_set(
        ops in prop::collection::vec((0u64..64, 0u64..8, any::<bool>()), 0..400),
    ) {
        let mut h = HashIndex::new();
        let mut oracle: HashSet<(u64, u64)> = HashSet::new();
        for (k, v, insert) in ops {
            if insert {
                prop_assert_eq!(h.insert(k, v), oracle.insert((k, v)));
            } else {
                prop_assert_eq!(h.remove(k, v), oracle.remove(&(k, v)));
            }
        }
        prop_assert_eq!(h.len(), oracle.len());
        for k in 0..64u64 {
            let mut got = h.get(k);
            got.sort_unstable();
            let mut expect: Vec<u64> = oracle.iter().filter(|(ok, _)| *ok == k).map(|(_, v)| *v).collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
