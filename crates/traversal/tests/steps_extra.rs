//! Additional traversal-machine coverage: edge-side projections, label
//! filters on edges, id steps, and step composition corner cases.

use engine_linked::LinkedGraph;
use gm_model::api::{GraphDb, GraphSnapshot, LoadOptions};
use gm_model::{testkit, QueryCtx, Value};
use gm_traversal::steps::{Elem, Step, Traversal};

fn engine() -> LinkedGraph {
    let mut g = LinkedGraph::v1();
    g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
        .unwrap();
    g
}

#[test]
fn values_on_edges() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    // Edge property "since" exists on two knows edges.
    let out = Traversal::e().values("since").run(&g, &ctx).unwrap();
    assert_eq!(out.len(), 2);
    assert!(out.iter().all(|e| matches!(e, Elem::Val(Value::Int(_)))));
}

#[test]
fn has_label_on_edges() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    let n = Traversal::e()
        .has_label("likes")
        .count()
        .run_count(&g, &ctx)
        .unwrap();
    assert_eq!(n, 2);
}

#[test]
fn has_on_edges() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    let n = Traversal::e()
        .has("since", Value::Int(2010))
        .count()
        .run_count(&g, &ctx)
        .unwrap();
    assert_eq!(n, 1);
}

#[test]
fn id_step_produces_ints() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    let out = Traversal::v().id().run(&g, &ctx).unwrap();
    assert_eq!(out.len(), 5);
    assert!(out
        .iter()
        .all(|e| matches!(e, Elem::Val(Value::Int(i)) if *i >= 0)));
}

#[test]
fn vertices_then_edges_then_vertices() {
    // v -> outE -> (edges have no out-step result) and composition of
    // filters after flat-maps.
    let g = engine();
    let ctx = QueryCtx::unbounded();
    let v0 = g.resolve_vertex(0).unwrap();
    let labels = Traversal::from_vertices([v0])
        .out_e(None)
        .label()
        .dedup()
        .run(&g, &ctx)
        .unwrap();
    assert_eq!(labels, vec![Elem::Val(Value::Str("knows".into()))]);
}

#[test]
fn empty_stream_propagates() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    let out = Traversal::v()
        .has("name", Value::Str("nobody".into()))
        .out(None)
        .values("name")
        .run(&g, &ctx)
        .unwrap();
    assert!(out.is_empty());
    // count() of an empty stream is 0, not an error.
    let n = Traversal::v()
        .has_label("ghost")
        .count()
        .run_count(&g, &ctx)
        .unwrap();
    assert_eq!(n, 0);
}

#[test]
fn count_mid_stream_then_nothing_else_needed() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    // count() collapses the stream to one integer traverser.
    let out = Traversal::v().count().run(&g, &ctx).unwrap();
    assert_eq!(out, vec![Elem::Val(Value::Int(5))]);
}

#[test]
fn limit_zero_and_oversized() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    assert_eq!(Traversal::v().limit(0).run(&g, &ctx).unwrap().len(), 0);
    assert_eq!(Traversal::v().limit(999).run(&g, &ctx).unwrap().len(), 5);
}

#[test]
fn elem_accessors() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    let vs = Traversal::v().limit(1).run(&g, &ctx).unwrap();
    assert!(vs[0].as_vertex().is_some());
    assert!(vs[0].as_edge().is_none());
    assert!(vs[0].as_value().is_none());
    let es = Traversal::e().limit(1).run(&g, &ctx).unwrap();
    assert!(es[0].as_edge().is_some());
    let vals = Traversal::v().limit(1).id().run(&g, &ctx).unwrap();
    assert!(vals[0].as_value().is_some());
}

#[test]
fn manual_step_push() {
    let g = engine();
    let ctx = QueryCtx::unbounded();
    // Building a traversal from raw steps is equivalent to the builder.
    let t = Traversal::v()
        .step(Step::HasLabel("person".into()))
        .step(Step::Count);
    assert_eq!(t.run_count(&g, &ctx).unwrap(), 4);
}
