//! # gm-traversal — the Gremlin-like traversal machine
//!
//! The paper runs every query through Apache TinkerPop/Gremlin so that all
//! systems execute *the same logical plan* and differences come from the
//! storage layer (§5, *Common Query Language*). This crate plays that role
//! for the graphmark engines:
//!
//! * [`Traversal`] — a step-based query builder/interpreter
//!   (`V → has → out → count` …) executing against any
//!   [`GraphDb`](gm_model::GraphDb). Steps are evaluated one at a time with
//!   materialized intermediate results — exactly the per-step adapter
//!   semantics the paper describes for non-optimizing Gremlin
//!   implementations;
//! * [`algo`] — breadth-first search and unweighted shortest paths
//!   (Q32–Q35), composed from the engine's primitive operators with
//!   cooperative cancellation;
//! * [`parser`] — a small text frontend for Gremlin-style query strings, so
//!   new test queries can be added to the suite as scripts (the
//!   extensibility claim of §5).

pub mod algo;
pub mod parser;
pub mod steps;

pub use algo::{bfs, shortest_path, PathResult};
pub use steps::{Elem, Step, Traversal};
