//! The step machine: build and run Gremlin-style traversals.

use gm_model::api::Direction;
use gm_model::{Eid, GdbError, GdbResult, GraphSnapshot, QueryCtx, Value, Vid};

/// A traverser: the unit flowing between steps.
#[derive(Debug, Clone, PartialEq)]
pub enum Elem {
    /// A vertex.
    V(Vid),
    /// An edge.
    E(Eid),
    /// A scalar produced by `label()`, `values()`, `count()`, `id()`.
    Val(Value),
}

impl Elem {
    /// The vertex id, if this traverser is a vertex.
    pub fn as_vertex(&self) -> Option<Vid> {
        match self {
            Elem::V(v) => Some(*v),
            _ => None,
        }
    }

    /// The edge id, if this traverser is an edge.
    pub fn as_edge(&self) -> Option<Eid> {
        match self {
            Elem::E(e) => Some(*e),
            _ => None,
        }
    }

    /// The scalar, if this traverser is a value.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Elem::Val(v) => Some(v),
            _ => None,
        }
    }
}

/// One step of a traversal.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `g.V()` — all vertices.
    V,
    /// `g.V(id)` — one vertex by internal id.
    VById(Vid),
    /// `g.E()` — all edges.
    E,
    /// `g.E(id)` — one edge by internal id.
    EById(Eid),
    /// Start from explicit vertices (bound parameters).
    Inject(Vec<Vid>),
    /// `has(name, value)` — keep elements whose property matches.
    Has(String, Value),
    /// `hasLabel(label)` — keep elements with the label.
    HasLabel(String),
    /// `out([label])` — vertex → out-neighbors.
    Out(Option<String>),
    /// `in([label])` — vertex → in-neighbors.
    In(Option<String>),
    /// `both([label])` — vertex → neighbors in both directions.
    Both(Option<String>),
    /// `outE([label])` — vertex → outgoing edges.
    OutE(Option<String>),
    /// `inE([label])` — vertex → incoming edges.
    InE(Option<String>),
    /// `bothE([label])` — vertex → incident edges.
    BothE(Option<String>),
    /// `label()` — element → its label string.
    Label,
    /// `values(name)` — element → property value.
    Values(String),
    /// `id()` — element → its id as an integer value.
    Id,
    /// `dedup()` — drop duplicate traversers (first occurrence wins).
    Dedup,
    /// `limit(n)` — keep the first n traversers.
    Limit(usize),
    /// `filter{it.<dir>E.count() >= k}` — the Q28–Q30 degree predicate.
    DegreeAtLeast(Direction, u64),
    /// `count()` — reduce the stream to a single integer.
    Count,
}

/// A runnable traversal: an ordered list of steps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Traversal {
    steps: Vec<Step>,
}

impl Traversal {
    /// Empty traversal; push steps with the builder methods.
    pub fn new() -> Self {
        Traversal { steps: Vec::new() }
    }

    /// `g.V()`
    pub fn v() -> Self {
        Traversal {
            steps: vec![Step::V],
        }
    }

    /// `g.V(id)`
    pub fn v_by_id(id: Vid) -> Self {
        Traversal {
            steps: vec![Step::VById(id)],
        }
    }

    /// `g.E()`
    pub fn e() -> Self {
        Traversal {
            steps: vec![Step::E],
        }
    }

    /// `g.E(id)`
    pub fn e_by_id(id: Eid) -> Self {
        Traversal {
            steps: vec![Step::EById(id)],
        }
    }

    /// Start from explicit vertices.
    pub fn from_vertices(ids: impl IntoIterator<Item = Vid>) -> Self {
        Traversal {
            steps: vec![Step::Inject(ids.into_iter().collect())],
        }
    }

    /// Append an arbitrary step.
    pub fn step(mut self, s: Step) -> Self {
        self.steps.push(s);
        self
    }

    /// `has(name, value)`
    pub fn has(self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.step(Step::Has(name.into(), value.into()))
    }

    /// `hasLabel(label)`
    pub fn has_label(self, label: impl Into<String>) -> Self {
        self.step(Step::HasLabel(label.into()))
    }

    /// `out()` / `out(label)`
    pub fn out(self, label: Option<&str>) -> Self {
        self.step(Step::Out(label.map(String::from)))
    }

    /// `in()` / `in(label)`
    pub fn in_(self, label: Option<&str>) -> Self {
        self.step(Step::In(label.map(String::from)))
    }

    /// `both()` / `both(label)`
    pub fn both(self, label: Option<&str>) -> Self {
        self.step(Step::Both(label.map(String::from)))
    }

    /// `outE()` / `outE(label)`
    pub fn out_e(self, label: Option<&str>) -> Self {
        self.step(Step::OutE(label.map(String::from)))
    }

    /// `inE()` / `inE(label)`
    pub fn in_e(self, label: Option<&str>) -> Self {
        self.step(Step::InE(label.map(String::from)))
    }

    /// `bothE()` / `bothE(label)`
    pub fn both_e(self, label: Option<&str>) -> Self {
        self.step(Step::BothE(label.map(String::from)))
    }

    /// `label()`
    pub fn label(self) -> Self {
        self.step(Step::Label)
    }

    /// `values(name)`
    pub fn values(self, name: impl Into<String>) -> Self {
        self.step(Step::Values(name.into()))
    }

    /// `id()`
    pub fn id(self) -> Self {
        self.step(Step::Id)
    }

    /// `dedup()`
    pub fn dedup(self) -> Self {
        self.step(Step::Dedup)
    }

    /// `limit(n)`
    pub fn limit(self, n: usize) -> Self {
        self.step(Step::Limit(n))
    }

    /// The Q28–Q30 degree filter.
    pub fn degree_at_least(self, dir: Direction, k: u64) -> Self {
        self.step(Step::DegreeAtLeast(dir, k))
    }

    /// `count()`
    pub fn count(self) -> Self {
        self.step(Step::Count)
    }

    /// The steps of this traversal.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Execute against an engine, returning the final traverser stream.
    ///
    /// Every step materializes its output before the next step runs — the
    /// per-step evaluation model of non-optimizing Gremlin adapters.
    pub fn run(&self, db: &dyn GraphSnapshot, ctx: &QueryCtx) -> GdbResult<Vec<Elem>> {
        let mut stream: Vec<Elem> = Vec::new();
        let mut started = false;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                Step::V => {
                    debug_assert!(!started, "V() must be the first step");
                    if self.steps.get(1).is_some() {
                        if let Step::DegreeAtLeast(dir, k) = &self.steps[1] {
                            // Delegate the fused scan+filter to the engine.
                            stream = db
                                .degree_scan(*dir, *k, ctx)?
                                .into_iter()
                                .map(Elem::V)
                                .collect();
                            started = true;
                            // Skip the filter step on the next iteration by
                            // marking it consumed via a sentinel: replace the
                            // stream now and handle below.
                            continue;
                        }
                    }
                    stream = db
                        .scan_vertices(ctx)?
                        .map(|r| r.map(Elem::V))
                        .collect::<GdbResult<Vec<_>>>()?;
                    started = true;
                }
                Step::VById(id) => {
                    stream = match db.vertex(*id)? {
                        Some(v) => vec![Elem::V(v.id)],
                        None => Vec::new(),
                    };
                    started = true;
                }
                Step::E => {
                    stream = db
                        .scan_edges(ctx)?
                        .map(|r| r.map(Elem::E))
                        .collect::<GdbResult<Vec<_>>>()?;
                    started = true;
                }
                Step::EById(id) => {
                    stream = match db.edge(*id)? {
                        Some(e) => vec![Elem::E(e.id)],
                        None => Vec::new(),
                    };
                    started = true;
                }
                Step::Inject(ids) => {
                    stream = ids.iter().copied().map(Elem::V).collect();
                    started = true;
                }
                Step::DegreeAtLeast(dir, k) => {
                    if i == 1 && self.steps[0] == Step::V {
                        // Already fused into the source step above.
                        continue;
                    }
                    let mut next = Vec::new();
                    for elem in &stream {
                        ctx.tick()?;
                        if let Elem::V(v) = elem {
                            if db.vertex_degree(*v, *dir, ctx)? >= *k {
                                next.push(elem.clone());
                            }
                        }
                    }
                    stream = next;
                }
                Step::Has(name, value) => {
                    let mut next = Vec::new();
                    for elem in &stream {
                        ctx.tick()?;
                        let matches = match elem {
                            Elem::V(v) => db.vertex_property(*v, name)?.as_ref() == Some(value),
                            Elem::E(e) => db.edge_property(*e, name)?.as_ref() == Some(value),
                            Elem::Val(_) => false,
                        };
                        if matches {
                            next.push(elem.clone());
                        }
                    }
                    stream = next;
                }
                Step::HasLabel(label) => {
                    let mut next = Vec::new();
                    for elem in &stream {
                        ctx.tick()?;
                        let matches = match elem {
                            Elem::V(v) => db.vertex_label(*v)?.as_deref() == Some(label.as_str()),
                            Elem::E(e) => db.edge_label(*e)?.as_deref() == Some(label.as_str()),
                            Elem::Val(_) => false,
                        };
                        if matches {
                            next.push(elem.clone());
                        }
                    }
                    stream = next;
                }
                Step::Out(l) | Step::In(l) | Step::Both(l) => {
                    let dir = match step {
                        Step::Out(_) => Direction::Out,
                        Step::In(_) => Direction::In,
                        _ => Direction::Both,
                    };
                    let mut next = Vec::new();
                    for elem in &stream {
                        if let Elem::V(v) = elem {
                            for n in db.neighbors(*v, dir, l.as_deref(), ctx)? {
                                next.push(Elem::V(n));
                            }
                        }
                    }
                    stream = next;
                }
                Step::OutE(l) | Step::InE(l) | Step::BothE(l) => {
                    let dir = match step {
                        Step::OutE(_) => Direction::Out,
                        Step::InE(_) => Direction::In,
                        _ => Direction::Both,
                    };
                    let mut next = Vec::new();
                    for elem in &stream {
                        if let Elem::V(v) = elem {
                            for r in db.vertex_edges(*v, dir, l.as_deref(), ctx)? {
                                next.push(Elem::E(r.eid));
                            }
                        }
                    }
                    stream = next;
                }
                Step::Label => {
                    let mut next = Vec::new();
                    for elem in &stream {
                        ctx.tick()?;
                        let label = match elem {
                            Elem::V(v) => db.vertex_label(*v)?,
                            Elem::E(e) => db.edge_label(*e)?,
                            Elem::Val(_) => None,
                        };
                        if let Some(l) = label {
                            next.push(Elem::Val(Value::Str(l)));
                        }
                    }
                    stream = next;
                }
                Step::Values(name) => {
                    let mut next = Vec::new();
                    for elem in &stream {
                        ctx.tick()?;
                        let value = match elem {
                            Elem::V(v) => db.vertex_property(*v, name)?,
                            Elem::E(e) => db.edge_property(*e, name)?,
                            Elem::Val(_) => None,
                        };
                        if let Some(v) = value {
                            next.push(Elem::Val(v));
                        }
                    }
                    stream = next;
                }
                Step::Id => {
                    stream = stream
                        .iter()
                        .map(|elem| {
                            Elem::Val(Value::Int(match elem {
                                Elem::V(v) => v.0 as i64,
                                Elem::E(e) => e.0 as i64,
                                Elem::Val(_) => -1,
                            }))
                        })
                        .collect();
                }
                Step::Dedup => {
                    let mut seen: Vec<Elem> = Vec::new();
                    let mut next = Vec::new();
                    for elem in stream {
                        ctx.tick()?;
                        if !seen.contains(&elem) {
                            seen.push(elem.clone());
                            next.push(elem);
                        }
                    }
                    stream = next;
                }
                Step::Limit(n) => {
                    stream.truncate(*n);
                }
                Step::Count => {
                    let n = stream.len() as i64;
                    stream = vec![Elem::Val(Value::Int(n))];
                }
            }
            if !started {
                return Err(GdbError::Invalid(
                    "traversal must start with V/E/inject".into(),
                ));
            }
        }
        Ok(stream)
    }

    /// Run and return the single integer a `count()` traversal yields.
    pub fn run_count(&self, db: &dyn GraphSnapshot, ctx: &QueryCtx) -> GdbResult<i64> {
        let out = self.run(db, ctx)?;
        match out.as_slice() {
            [Elem::Val(Value::Int(n))] => Ok(*n),
            _ => Err(GdbError::Invalid("traversal did not end in count()".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::api::{GraphDb, LoadOptions};
    use gm_model::testkit;

    fn engine() -> LinkedGraph {
        let mut g = LinkedGraph::v1();
        g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        g
    }

    #[test]
    fn count_vertices_and_edges() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        assert_eq!(Traversal::v().count().run_count(&g, &ctx).unwrap(), 5);
        assert_eq!(Traversal::e().count().run_count(&g, &ctx).unwrap(), 6);
    }

    #[test]
    fn has_filter() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let n = Traversal::v()
            .has("age", Value::Int(30))
            .count()
            .run_count(&g, &ctx)
            .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn out_and_dedup() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let v0 = g.resolve_vertex(0).unwrap();
        // ann --knows--> bob (twice, parallel)
        let out = Traversal::from_vertices([v0])
            .out(Some("knows"))
            .run(&g, &ctx)
            .unwrap();
        assert_eq!(out.len(), 2);
        let deduped = Traversal::from_vertices([v0])
            .out(Some("knows"))
            .dedup()
            .run(&g, &ctx)
            .unwrap();
        assert_eq!(deduped.len(), 1);
    }

    #[test]
    fn label_dedup_is_q10() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let mut labels: Vec<String> = Traversal::e()
            .label()
            .dedup()
            .run(&g, &ctx)
            .unwrap()
            .into_iter()
            .filter_map(|e| match e {
                Elem::Val(Value::Str(s)) => Some(s),
                _ => None,
            })
            .collect();
        labels.sort();
        assert_eq!(labels, vec!["follows", "knows", "likes"]);
    }

    #[test]
    fn degree_filter_fuses_into_scan() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let n = Traversal::v()
            .degree_at_least(Direction::Both, 4)
            .count()
            .run_count(&g, &ctx)
            .unwrap();
        assert_eq!(n, 2, "ann and col have both-degree 4");
    }

    #[test]
    fn values_projection() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let ages = Traversal::v()
            .has_label("person")
            .values("age")
            .run(&g, &ctx)
            .unwrap();
        assert_eq!(ages.len(), 3, "eve has no age");
    }

    #[test]
    fn limit_truncates() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        assert_eq!(Traversal::v().limit(2).run(&g, &ctx).unwrap().len(), 2);
    }

    #[test]
    fn by_id_sources() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let v0 = g.resolve_vertex(0).unwrap();
        let e0 = g.resolve_edge(0).unwrap();
        assert_eq!(Traversal::v_by_id(v0).run(&g, &ctx).unwrap().len(), 1);
        assert_eq!(Traversal::e_by_id(e0).run(&g, &ctx).unwrap().len(), 1);
        assert_eq!(
            Traversal::v_by_id(Vid(9999)).run(&g, &ctx).unwrap().len(),
            0
        );
    }

    #[test]
    fn missing_source_step_errors() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let t = Traversal::new().has("a", Value::Int(1));
        assert!(t.run(&g, &ctx).is_err());
    }

    #[test]
    fn in_e_both_e() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let v0 = g.resolve_vertex(0).unwrap();
        assert_eq!(
            Traversal::from_vertices([v0])
                .in_e(None)
                .run(&g, &ctx)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            Traversal::from_vertices([v0])
                .both_e(None)
                .run(&g, &ctx)
                .unwrap()
                .len(),
            4
        );
    }
}
