//! Breadth-first search and unweighted shortest paths (Q32–Q35).
//!
//! In the paper these are Gremlin loop constructs
//! (`v.as('i').both().except(vs).store(j).loop('i')`) that decompose into
//! the engines' neighbor primitives; here they are implemented once, over
//! the [`GraphDb`] trait, so each engine pays exactly its own per-hop cost.

use gm_model::api::Direction;
use gm_model::fxmap::FxHashMap;
use gm_model::{GdbResult, GraphSnapshot, QueryCtx, Vid};

/// Result of a shortest-path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathResult {
    /// Vertices from source to target, inclusive.
    pub path: Vec<Vid>,
}

impl PathResult {
    /// Number of edges on the path.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Q32/Q33: vertices reached from `start` by a breadth-first traversal over
/// `both()` edges, up to `max_depth` hops, optionally restricted to edges
/// with `label`. The start vertex is not included (Gremlin's `except(vs)`).
pub fn bfs(
    db: &dyn GraphSnapshot,
    start: Vid,
    max_depth: usize,
    label: Option<&str>,
    ctx: &QueryCtx,
) -> GdbResult<Vec<Vid>> {
    let mut visited: FxHashMap<u64, ()> = FxHashMap::default();
    visited.insert(start.0, ());
    let mut frontier = vec![start];
    let mut reached = Vec::new();
    for _ in 0..max_depth {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for v in frontier {
            for n in db.neighbors(v, Direction::Both, label, ctx)? {
                ctx.tick()?;
                if visited.insert(n.0, ()).is_none() {
                    reached.push(n);
                    next.push(n);
                }
            }
        }
        frontier = next;
    }
    Ok(reached)
}

/// Q34/Q35: unweighted shortest path from `from` to `to` over `both()`
/// edges, optionally restricted to a label. Returns `None` when no path
/// exists. The paper's Gremlin formulation explores breadth-first and keeps
/// the traversal path; we reconstruct it from BFS parents.
pub fn shortest_path(
    db: &dyn GraphSnapshot,
    from: Vid,
    to: Vid,
    label: Option<&str>,
    ctx: &QueryCtx,
) -> GdbResult<Option<PathResult>> {
    if from == to {
        return Ok(Some(PathResult { path: vec![from] }));
    }
    let mut parent: FxHashMap<u64, u64> = FxHashMap::default();
    parent.insert(from.0, from.0);
    let mut frontier = vec![from];
    'outer: loop {
        if frontier.is_empty() {
            return Ok(None);
        }
        let mut next = Vec::new();
        for v in std::mem::take(&mut frontier) {
            for n in db.neighbors(v, Direction::Both, label, ctx)? {
                ctx.tick()?;
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(n.0) {
                    e.insert(v.0);
                    if n == to {
                        break 'outer;
                    }
                    next.push(n);
                }
            }
        }
        frontier = next;
    }
    // Reconstruct.
    let mut path = vec![to];
    let mut cur = to.0;
    while cur != from.0 {
        cur = parent[&cur];
        path.push(Vid(cur));
    }
    path.reverse();
    Ok(Some(PathResult { path }))
}

/// Eccentricity-style probe used by the dataset statistics module and a few
/// complex queries: the maximum BFS depth reachable from `start`.
pub fn bfs_depth(db: &dyn GraphSnapshot, start: Vid, ctx: &QueryCtx) -> GdbResult<usize> {
    let mut visited: FxHashMap<u64, ()> = FxHashMap::default();
    visited.insert(start.0, ());
    let mut frontier = vec![start];
    let mut depth = 0usize;
    loop {
        let mut next = Vec::new();
        for v in frontier {
            for n in db.neighbors(v, Direction::Both, None, ctx)? {
                ctx.tick()?;
                if visited.insert(n.0, ()).is_none() {
                    next.push(n);
                }
            }
        }
        if next.is_empty() {
            return Ok(depth);
        }
        depth += 1;
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::api::{GraphDb, LoadOptions};
    use gm_model::testkit;
    use gm_model::GdbError;

    fn chain(n: u64) -> LinkedGraph {
        let mut g = LinkedGraph::v1();
        g.bulk_load(&testkit::chain_dataset(n), &LoadOptions::default())
            .unwrap();
        g
    }

    #[test]
    fn bfs_depth_limits() {
        let g = chain(10);
        let ctx = QueryCtx::unbounded();
        let start = g.resolve_vertex(5).unwrap();
        // Depth 1: vertices 4 and 6.
        assert_eq!(bfs(&g, start, 1, None, &ctx).unwrap().len(), 2);
        // Depth 2: 3,4,6,7.
        assert_eq!(bfs(&g, start, 2, None, &ctx).unwrap().len(), 4);
        // Unbounded-ish: everything except the start.
        assert_eq!(bfs(&g, start, 100, None, &ctx).unwrap().len(), 9);
    }

    #[test]
    fn bfs_label_restricted() {
        // chain_dataset alternates labels "next" (even i) and "link".
        let g = chain(10);
        let ctx = QueryCtx::unbounded();
        let start = g.resolve_vertex(0).unwrap();
        // Edge 0 (label next) reaches v1; edge 1 has label "link" so the
        // labeled BFS stops there.
        let reached = bfs(&g, start, 10, Some("next"), &ctx).unwrap();
        assert_eq!(reached.len(), 1);
        // Unknown label: empty.
        assert!(bfs(&g, start, 3, Some("nope"), &ctx).unwrap().is_empty());
    }

    #[test]
    fn shortest_path_on_chain() {
        let g = chain(50);
        let ctx = QueryCtx::unbounded();
        let a = g.resolve_vertex(3).unwrap();
        let b = g.resolve_vertex(17).unwrap();
        let p = shortest_path(&g, a, b, None, &ctx).unwrap().unwrap();
        assert_eq!(p.hops(), 14);
        assert_eq!(p.path.first(), Some(&a));
        assert_eq!(p.path.last(), Some(&b));
        // Consecutive path vertices must be adjacent.
        for w in p.path.windows(2) {
            let n = g.neighbors(w[0], Direction::Both, None, &ctx).unwrap();
            assert!(n.contains(&w[1]));
        }
    }

    #[test]
    fn shortest_path_trivial_and_missing() {
        let g = chain(5);
        let ctx = QueryCtx::unbounded();
        let a = g.resolve_vertex(2).unwrap();
        assert_eq!(
            shortest_path(&g, a, a, None, &ctx).unwrap().unwrap().hops(),
            0
        );
        // Disconnected target: tiny_dataset's robot vertex.
        let mut t = LinkedGraph::v1();
        t.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        let ann = t.resolve_vertex(0).unwrap();
        let dan = t.resolve_vertex(3).unwrap();
        assert_eq!(shortest_path(&t, ann, dan, None, &ctx).unwrap(), None);
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        // Triangle with a long way round: a-b, b-c, and a-x-y-c.
        let mut g = LinkedGraph::v1();
        let mut d = gm_model::Dataset::new("tri");
        for _ in 0..5 {
            d.add_vertex("n", vec![]);
        }
        d.add_edge(0, 1, "e", vec![]); // a-b
        d.add_edge(1, 2, "e", vec![]); // b-c
        d.add_edge(0, 3, "e", vec![]); // a-x
        d.add_edge(3, 4, "e", vec![]); // x-y
        d.add_edge(4, 2, "e", vec![]); // y-c
        g.bulk_load(&d, &LoadOptions::default()).unwrap();
        let ctx = QueryCtx::unbounded();
        let a = g.resolve_vertex(0).unwrap();
        let c = g.resolve_vertex(2).unwrap();
        let p = shortest_path(&g, a, c, None, &ctx).unwrap().unwrap();
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn bfs_depth_of_chain() {
        let g = chain(10);
        let ctx = QueryCtx::unbounded();
        let end = g.resolve_vertex(0).unwrap();
        assert_eq!(bfs_depth(&g, end, &ctx).unwrap(), 9);
        let mid = g.resolve_vertex(5).unwrap();
        assert_eq!(bfs_depth(&g, mid, &ctx).unwrap(), 5);
    }

    #[test]
    fn deadline_aborts_bfs() {
        let g = chain(30_000);
        let ctx = QueryCtx::with_timeout(std::time::Duration::from_millis(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        let start = g.resolve_vertex(0).unwrap();
        assert_eq!(
            bfs(&g, start, usize::MAX, None, &ctx).unwrap_err(),
            GdbError::Timeout
        );
    }
}
