//! A small text frontend for Gremlin-style traversals.
//!
//! The paper's suite lets users add a query by "writing it into a dedicated
//! script" (§5, *Test Suite*). This parser provides that extension point for
//! graphmark: a subset of Gremlin 2.6/3.x syntax large enough for all Table
//! 2 read/traversal queries.
//!
//! ```text
//! g.V().has('name', 'ann').out('knows').dedup().count()
//! g.E().label().dedup()
//! g.V(42)
//! ```

use gm_model::api::Direction;
use gm_model::{Eid, Value, Vid};

use crate::steps::{Step, Traversal};

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a Gremlin-style query string into a [`Traversal`].
pub fn parse(input: &str) -> Result<Traversal, ParseError> {
    Parser {
        bytes: input.as_bytes(),
        pos: 0,
    }
    .parse()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{token}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii ident")
            .to_string())
    }

    fn number(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("expected integer"))
    }

    fn string_lit(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let quote = match self.bytes.get(self.pos) {
            Some(b'\'') => b'\'',
            Some(b'"') => b'"',
            _ => return Err(self.err("expected string literal")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == quote {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string literal"))
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'\'' | b'"') => Ok(Value::Str(self.string_lit()?)),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                // Distinguish int from float.
                let start = self.pos;
                let _ = self.number()?;
                if matches!(self.bytes.get(self.pos), Some(b'.')) {
                    self.pos += 1;
                    while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("bad float"))?;
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| self.err("bad float"))
                } else {
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("bad int"))?;
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| self.err("bad int"))
                }
            }
            _ => Err(self.err("expected value literal")),
        }
    }

    fn optional_label_arg(&mut self) -> Result<Option<String>, ParseError> {
        self.expect("(")?;
        self.skip_ws();
        if self.eat(")") {
            return Ok(None);
        }
        let label = self.string_lit()?;
        self.expect(")")?;
        Ok(Some(label))
    }

    fn parse(mut self) -> Result<Traversal, ParseError> {
        self.expect("g")?;
        self.expect(".")?;
        let source = self.ident()?;
        self.expect("(")?;
        self.skip_ws();
        let mut t = match source.as_str() {
            "V" => {
                if self.eat(")") {
                    Traversal::v()
                } else {
                    let id = self.number()?;
                    self.expect(")")?;
                    Traversal::v_by_id(Vid(id as u64))
                }
            }
            "E" => {
                if self.eat(")") {
                    Traversal::e()
                } else {
                    let id = self.number()?;
                    self.expect(")")?;
                    Traversal::e_by_id(Eid(id as u64))
                }
            }
            other => return Err(self.err(format!("unknown source step '{other}'"))),
        };
        // Chained steps.
        loop {
            self.skip_ws();
            if self.pos == self.bytes.len() {
                break;
            }
            self.expect(".")?;
            let step = self.ident()?;
            t = match step.as_str() {
                "has" => {
                    self.expect("(")?;
                    let name = self.string_lit()?;
                    self.expect(",")?;
                    let value = self.value()?;
                    self.expect(")")?;
                    t.step(Step::Has(name, value))
                }
                "hasLabel" => {
                    self.expect("(")?;
                    let label = self.string_lit()?;
                    self.expect(")")?;
                    t.step(Step::HasLabel(label))
                }
                "out" => t.step(Step::Out(self.optional_label_arg()?)),
                "in" => t.step(Step::In(self.optional_label_arg()?)),
                "both" => t.step(Step::Both(self.optional_label_arg()?)),
                "outE" => t.step(Step::OutE(self.optional_label_arg()?)),
                "inE" => t.step(Step::InE(self.optional_label_arg()?)),
                "bothE" => t.step(Step::BothE(self.optional_label_arg()?)),
                "label" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    t.step(Step::Label)
                }
                "values" => {
                    self.expect("(")?;
                    let name = self.string_lit()?;
                    self.expect(")")?;
                    t.step(Step::Values(name))
                }
                "id" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    t.step(Step::Id)
                }
                "dedup" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    t.step(Step::Dedup)
                }
                "limit" => {
                    self.expect("(")?;
                    let n = self.number()?;
                    self.expect(")")?;
                    t.step(Step::Limit(n.max(0) as usize))
                }
                "count" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    t.step(Step::Count)
                }
                "degreeAtLeast" => {
                    // graphmark extension for Q28-Q30: degreeAtLeast('both', k)
                    self.expect("(")?;
                    let dir = match self.string_lit()?.as_str() {
                        "in" => Direction::In,
                        "out" => Direction::Out,
                        "both" => Direction::Both,
                        other => return Err(self.err(format!("unknown direction '{other}'"))),
                    };
                    self.expect(",")?;
                    let k = self.number()?;
                    self.expect(")")?;
                    t.step(Step::DegreeAtLeast(dir, k.max(0) as u64))
                }
                other => return Err(self.err(format!("unknown step '{other}'"))),
            };
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine_linked::LinkedGraph;
    use gm_model::api::{GraphDb, LoadOptions};
    use gm_model::testkit;
    use gm_model::QueryCtx;

    fn engine() -> LinkedGraph {
        let mut g = LinkedGraph::v1();
        g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        g
    }

    #[test]
    fn parses_basic_chains() {
        let t = parse("g.V().count()").unwrap();
        assert_eq!(t.steps().len(), 2);
        let t = parse("g.E().label().dedup()").unwrap();
        assert_eq!(t.steps(), &[Step::E, Step::Label, Step::Dedup]);
    }

    #[test]
    fn parses_arguments() {
        let t = parse("g.V().has('name', 'ann').out('knows').limit(3)").unwrap();
        assert_eq!(
            t.steps(),
            &[
                Step::V,
                Step::Has("name".into(), Value::Str("ann".into())),
                Step::Out(Some("knows".into())),
                Step::Limit(3),
            ]
        );
        let t = parse("g.V().has('age', 30)").unwrap();
        assert_eq!(t.steps()[1], Step::Has("age".into(), Value::Int(30)));
        let t = parse("g.V().has('w', 1.5)").unwrap();
        assert_eq!(t.steps()[1], Step::Has("w".into(), Value::Float(1.5)));
        let t = parse("g.V().has('ok', true)").unwrap();
        assert_eq!(t.steps()[1], Step::Has("ok".into(), Value::Bool(true)));
    }

    #[test]
    fn parses_id_sources() {
        assert_eq!(parse("g.V(7)").unwrap().steps()[0], Step::VById(Vid(7)));
        assert_eq!(parse("g.E(3)").unwrap().steps()[0], Step::EById(Eid(3)));
    }

    #[test]
    fn parses_degree_extension() {
        let t = parse("g.V().degreeAtLeast('both', 4).count()").unwrap();
        assert_eq!(t.steps()[1], Step::DegreeAtLeast(Direction::Both, 4));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("h.V()").is_err());
        assert!(parse("g.V().frobnicate()").is_err());
        assert!(parse("g.V().has('a'").is_err());
        assert!(parse("g.V().has('a', )").is_err());
        assert!(parse("g.V() trailing").is_err());
    }

    #[test]
    fn parsed_query_executes() {
        let g = engine();
        let ctx = QueryCtx::unbounded();
        let t = parse("g.V().has('age', 30).count()").unwrap();
        assert_eq!(t.run_count(&g, &ctx).unwrap(), 2);
        let t = parse("g.V().hasLabel('person').out('knows').dedup().count()").unwrap();
        assert_eq!(t.run_count(&g, &ctx).unwrap(), 2, "bob and col");
    }

    #[test]
    fn whitespace_tolerant() {
        let t = parse("g.V()\n  .has( 'name' , 'ann' )\n  .count()").unwrap();
        let g = engine();
        let ctx = QueryCtx::unbounded();
        assert_eq!(t.run_count(&g, &ctx).unwrap(), 1);
    }
}
