//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal [`Bytes`] covering exactly the surface graphmark uses: construction
//! from a `Vec<u8>`, cheap clones, and `&[u8]` access. Backed by `Arc<[u8]>`,
//! so clones are reference-count bumps and the type is `Send + Sync` — which
//! the concurrent workload driver relies on.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            for esc in std::ascii::escape_default(byte) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b, c);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Bytes>();
    }
}
