//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! generation-only property-testing harness covering the proptest surface
//! graphmark's tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_recursive`, `any::<T>()`, range and tuple and
//! regex-literal strategies, `prop::collection::*`, `prop::option::of`,
//! `prop::sample::Index`, and the `proptest!` / `prop_oneof!` /
//! `prop_compose!` / `prop_assert*!` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** (the panic
//! reports the case number and seed instead), and the byte-level random
//! stream differs. Tests are seeded deterministically from the test name, so
//! failures reproduce exactly across runs.

use std::fmt;

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each `proptest!` test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert*!` macros (or `?` inside a test body).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input was rejected (kept for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from any displayable reason.
    pub fn fail<R: fmt::Display>(reason: R) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// Build a rejection from any displayable reason.
    pub fn reject<R: fmt::Display>(reason: R) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "assertion failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError::Fail(e.to_string())
    }
}

/// Deterministic per-test seed: FNV-1a over the test name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Build the RNG for one case of one test.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x9e37))
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                // Bias towards small magnitudes and boundary values: they
                // exercise edge cases far more often than uniform bits do.
                match rng.gen_range(0u32..8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 | 4 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

use rand::RngCore;

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        match rng.gen_range(0u32..10) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => f64::from_bits(rng.next_u64()),
            _ => rng.gen_range(-1.0e6..1.0e6),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0x80u32..0xd800)).unwrap_or('�')
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = (rng.next_u64() & 0xff) as u8;
        }
        out
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`vec`, `btree_map`, `btree_set`, `hash_set`).
    pub mod collection {
        pub use crate::strategy::collection::*;
    }

    /// `option::of`.
    pub mod option {
        pub use crate::strategy::option::*;
    }

    /// `sample::Index`.
    pub mod sample {
        pub use crate::strategy::sample::*;
    }
}

/// The prelude glob-imported by every proptest-based test file.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, ProptestConfig, TestCaseError,
    };
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("condition false: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} != {} ({:?} != {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} != {:?})", format!($($fmt)+), l, r);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} == {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} (both {:?})", format!($($fmt)+), l);
    }};
}

/// Weighted/unweighted union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Build a named strategy function from generation stages, mirroring
/// `proptest::prop_compose!`. The two-stage form lets the second stage's
/// strategies depend on values drawn in the first.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        fn $name:ident()
        ($($pat1:pat in $strat1:expr),+ $(,)?)
        ($($pat2:pat in $strat2:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |__rng: &mut $crate::StdRng| {
                let ($($pat1,)*) =
                    $crate::Strategy::generate(&($($strat1,)*), __rng);
                let ($($pat2,)*) =
                    $crate::Strategy::generate(&($($strat2,)*), __rng);
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident()
        ($($pat1:pat in $strat1:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |__rng: &mut $crate::StdRng| {
                let ($($pat1,)*) =
                    $crate::Strategy::generate(&($($strat1,)*), __rng);
                $body
            })
        }
    };
}

/// Define property tests: each `fn` runs its body over `config.cases`
/// randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ($($strat,)*);
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    let ($($pat,)*) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            $crate::seed_for(stringify!($name)),
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_ranges_in_bounds(x in 10u64..20, v in prop::collection::vec(0i64..5, 0..8)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|i| (0..5).contains(i)));
        }

        #[test]
        fn regex_class_strings(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_filter(x in prop_oneof![1 => Just(0u8), 3 => (1u8..10).prop_filter("nonzero", |v| *v > 0)]) {
            prop_assert!(x < 10);
        }
    }
}
