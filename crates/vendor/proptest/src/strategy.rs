//! Strategy combinators for the offline proptest stand-in.
//!
//! A [`Strategy`] here is just a deterministic generator: `generate` draws one
//! value from the RNG. There is no shrinking tree; see the crate docs.

use std::marker::PhantomData;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// How many times `prop_filter` retries before giving up.
const FILTER_RETRIES: u32 = 10_000;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying the draw otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Build recursive structures: `recurse` receives the strategy for the
    /// levels below and returns the strategy for one level up. `depth` bounds
    /// the nesting; the size hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            // Keep leaves reachable at every level so shallow values occur.
            strat = Union::new(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        strat
    }

    /// Type-erase this strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` strategy (see [`crate::Arbitrary`]).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {FILTER_RETRIES} draws",
            self.whence
        );
    }
}

/// Weighted union of same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    entries: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from (weight, strategy) pairs.
    pub fn new(entries: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = entries.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { entries, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.entries {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Strategy from a plain generation closure (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<T, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(rng)
    }
}

/// Build a strategy from a closure.
pub fn from_fn<T, F: Fn(&mut StdRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy { f }
}

// ----- primitive strategies ------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ----- regex-literal string strategies -------------------------------------

/// One generable unit of the supported regex subset.
#[derive(Debug, Clone)]
enum RegexAtom {
    /// Inclusive char ranges (a char class or single literal).
    Class(Vec<(char, char)>),
    /// `\PC`: any non-control character.
    Printable,
}

#[derive(Debug, Clone)]
struct RegexPart {
    atom: RegexAtom,
    min: u32,
    max: u32,
}

/// Parse the regex subset used as string strategies: sequences of char
/// classes / literals / `\PC`, each with an optional `{n}` or `{lo,hi}`
/// quantifier. Anything fancier is a panic, not silent misgeneration.
fn parse_regex(pattern: &str) -> Vec<RegexPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges: Vec<(char, char)> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                i += 1; // consume ']'
                RegexAtom::Class(ranges)
            }
            '\\' => {
                i += 1;
                if chars[i] == 'P' && chars.get(i + 1) == Some(&'C') {
                    i += 2;
                    RegexAtom::Printable
                } else {
                    let c = unescape(chars[i]);
                    i += 1;
                    RegexAtom::Class(vec![(c, c)])
                }
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.'),
                    "unsupported regex construct {c:?} in {pattern:?}"
                );
                i += 1;
                RegexAtom::Class(vec![(c, c)])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            i += 1;
            let start = i;
            while chars[i] != '}' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            i += 1; // consume '}'
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lo"),
                    hi.trim().parse().expect("quantifier hi"),
                ),
                None => {
                    let n: u32 = body.trim().parse().expect("quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push(RegexPart { atom, min, max });
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn gen_atom(atom: &RegexAtom, rng: &mut StdRng) -> char {
    match atom {
        RegexAtom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick).unwrap_or(*lo);
                }
                pick -= span;
            }
            unreachable!("class ranges exhausted")
        }
        RegexAtom::Printable => {
            // Mostly ASCII, occasionally wider unicode; never controls.
            if rng.gen_bool(0.85) {
                rng.gen_range(0x20u32..0x7f) as u8 as char
            } else {
                loop {
                    let c = rng.gen_range(0xa0u32..0x3000);
                    if let Some(c) = char::from_u32(c) {
                        if !c.is_control() {
                            return c;
                        }
                    }
                }
            }
        }
    }
}

/// String literals are strategies over the regex subset above.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let parts = parse_regex(self);
        let mut out = String::new();
        for part in &parts {
            let n = if part.min == part.max {
                part.min
            } else {
                rng.gen_range(part.min..part.max + 1)
            };
            for _ in 0..n {
                out.push(gen_atom(&part.atom, rng));
            }
        }
        out
    }
}

// ----- collections ---------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet, HashSet};
    use std::hash::Hash;

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeMap` with keys/values from the given strategies.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    /// `BTreeSet` with elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// `HashSet` with elements from `element`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeMap::new();
            for _ in 0..target * 10 + 10 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            out
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            for _ in 0..target * 10 + 10 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = HashSet::new();
            for _ in 0..target * 10 + 10 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    impl SizeRange {
        pub(super) fn draw(&self, rng: &mut StdRng) -> usize {
            if self.min >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            }
        }
    }
}

/// Collection length specification: a `usize` (exact) or half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// `prop::option` strategies.
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Option<T>`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `prop::sample` helpers.
pub mod sample {
    use rand::rngs::StdRng;

    /// An index into a collection whose length is only known at use-site.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Map onto `0..len` (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl crate::Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(usize::arbitrary(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn map_filter_union() {
        let mut r = rng();
        let s = (0u32..10)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |x| *x > 0);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v > 0 && v < 20 && v % 2 == 0);
        }
        let u = Union::new(vec![(1, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn regex_subset_parses_everything_graphmark_uses() {
        let mut r = rng();
        for pattern in [
            "[a-z]{1,6}",
            "[a-z0-9]{0,12}",
            "[a-zA-Z0-9 _\\-\\\\\"\n\t☃]{0,24}",
            "[a-zA-Z0-9 ,.☃]{0,16}",
            "\\PC{0,256}",
        ] {
            for _ in 0..50 {
                let s = pattern.generate(&mut r);
                assert!(s.chars().count() <= 256);
            }
        }
        let snowman_count = (0..200)
            .filter(|_| "[☃]{1}".generate(&mut r).contains('☃'))
            .count();
        assert_eq!(snowman_count, 200);
    }

    #[test]
    fn recursive_terminates_and_nests() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(v) => {
                    let _ = v;
                    1
                }
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                collection::vec(inner, 0..4).prop_map(T::Node)
            });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.generate(&mut r)));
        }
        assert!(max_depth > 1, "recursion must actually nest");
        assert!(max_depth <= 4 + 1);
    }

    #[test]
    fn collections_hit_size_bounds() {
        let mut r = rng();
        for _ in 0..50 {
            let v = collection::vec(0u8..255, 3usize).generate(&mut r);
            assert_eq!(v.len(), 3);
            let s = collection::btree_set(0u32..1000, 2..5).generate(&mut r);
            assert!(s.len() >= 2 && s.len() < 5);
        }
    }
}
