//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small wall-clock harness covering the criterion surface graphmark's
//! benches use: groups, `bench_function`/`bench_with_input`, `iter`,
//! `iter_batched`, `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. It reports mean/min/max ns per iteration to
//! stdout; there is no statistical analysis or HTML output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How a batched setup product is sized (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// (total busy nanos, iterations) accumulated by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly until the configured measurement time is
    /// spent, after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let measure_until = Instant::now() + self.config.measurement_time;
        while Instant::now() < measure_until {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            busy += t0.elapsed();
            iters += 1;
        }
        self.result = Some((busy, iters.max(1)));
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            std::hint::black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let measure_until = Instant::now() + self.config.measurement_time;
        while Instant::now() < measure_until {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            busy += t0.elapsed();
            iters += 1;
        }
        self.result = Some((busy, iters.max(1)));
    }
}

#[derive(Debug, Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            sample_size: 10,
        }
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Set the nominal sample count (accepted for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", &self.config, id, f);
        self
    }
}

/// A group of related benchmarks, printed under a common prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Set the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &self.config, &id.into().id, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        run_one(&self.name, &self.config, &id.id, |b| f(b, input));
        self
    }

    /// Close the group (printing is immediate; this is a no-op for layout).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(group: &str, config: &Config, id: &str, mut f: F) {
    let mut b = Bencher {
        config,
        result: None,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match b.result {
        Some((busy, iters)) => {
            let per_iter = busy.as_nanos() as f64 / iters as f64;
            println!(
                "{label:<48} time: [{} per iter, {iters} iters]",
                fmt_ns(per_iter)
            );
        }
        None => println!("{label:<48} time: [no measurement]"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn iter_measures_something() {
        let mut c = fast_config();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_fresh() {
        let mut c = fast_config();
        c.bench_function("batched", |b| {
            b.iter_batched(Vec::<u64>::new, |mut v| v.push(1), BatchSize::SmallInput);
        });
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
