//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal deterministic PRNG covering exactly the surface graphmark uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, and [`Rng::gen_bool`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and fully
//! reproducible across runs and platforms, which is all the benchmark's
//! "same random selection across systems" discipline (paper §5) requires.
//!
//! Numbers differ from upstream `rand`'s ChaCha-based `StdRng`; graphmark
//! only relies on determinism, never on a specific stream.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Element types [`Rng::gen_range`] can draw uniformly.
pub trait SampleUniform: Sized {
    /// Draw one value from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
///
/// A single blanket impl per range shape (as in upstream rand) so type
/// inference unifies the literal range's element type with the result type.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Debiased multiply-shift (Lemire); span of 0 would mean the
                // full 2^64 domain, which a non-empty `Range` cannot express
                // for these types.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut low = m as u64;
                if low < span {
                    let threshold = span.wrapping_neg() % span;
                    while low < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        low = m as u64;
                    }
                }
                let offset = (m >> 64) as u64;
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

int_sample_uniform! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..20).all(|_| a.gen_range(0u64..100) == c.gen_range(0u64..100));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let f = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn range_distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
