//! # engine-document — the ArangoDB-class hybrid engine
//!
//! Reproduces the architecture the paper describes for ArangoDB (§3.1/§3.2):
//!
//! * every node and edge is a **self-contained document "serialized in a
//!   compressed binary format"** ([`bytes`]-backed buffers with varint/value
//!   encoding);
//! * a **specialized hash index on edge endpoints** accelerates traversals
//!   (`_from` → edges, `_to` → edges);
//! * writes are **registered in RAM and asynchronously flushed** — the write
//!   journal makes CUD latencies look excellent because "the time is
//!   measured on the client side and we have no control on when those
//!   operations get materialized on disk" (§6.4, the paper's explicit bias
//!   caveat, surfaced here via [`EngineFeatures::async_writes`]);
//! * whole-graph reads must **materialize (deserialize) every document**:
//!   the paper traces ArangoDB's Q9/Q10 timeouts to exactly this
//!   ("it materializes all edges while counting them");
//! * attribute index declarations are accepted but **do not change the scan
//!   path** ("ArangoDB showed no difference in running times, so we suspect
//!   some defect in the Gremlin implementation", §6.4).

use bytes::Bytes;

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::FxHashMap;
use gm_model::interner::Interner;
use gm_model::value::{Props, Value};
use gm_model::{Dataset, Eid, GdbError, GdbResult, QueryCtx, Vid};
use gm_storage::codec::{read_varint, write_varint};
use gm_storage::hashidx::HashIndex;
use gm_storage::valcodec::{decode_props, encode_props};

/// Journal entries accumulated before a background flush.
const JOURNAL_FLUSH_THRESHOLD: usize = 1024;

/// Edge document header: `_from` and `_to` at fixed offsets so traversals
/// can resolve endpoints without materializing the document.
const EDGE_HEADER: usize = 16;

/// The ArangoDB-class engine. See crate docs for the layout.
#[derive(Clone)]
pub struct DocumentGraph {
    vdocs: FxHashMap<u64, Bytes>,
    edocs: FxHashMap<u64, Bytes>,
    /// Async write overlay: documents acknowledged but not yet in the
    /// primary store. `None` = pending deletion.
    v_overlay: FxHashMap<u64, Option<Bytes>>,
    e_overlay: FxHashMap<u64, Option<Bytes>>,
    overlay_ops: usize,
    out_index: HashIndex,
    in_index: HashIndex,
    vlabels: Interner,
    elabels: Interner,
    keys: Interner,
    next_key: u64,
    vmap: Vec<u64>,
    emap: Vec<u64>,
    declared_indexes: Vec<u32>,
}

impl Default for DocumentGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentGraph {
    /// A fresh, empty engine.
    pub fn new() -> Self {
        DocumentGraph {
            vdocs: FxHashMap::default(),
            edocs: FxHashMap::default(),
            v_overlay: FxHashMap::default(),
            e_overlay: FxHashMap::default(),
            overlay_ops: 0,
            out_index: HashIndex::new(),
            in_index: HashIndex::new(),
            vlabels: Interner::new(),
            elabels: Interner::new(),
            keys: Interner::new(),
            next_key: 0,
            vmap: Vec::new(),
            emap: Vec::new(),
            declared_indexes: Vec::new(),
        }
    }

    fn alloc_key(&mut self) -> u64 {
        let k = self.next_key;
        self.next_key += 1;
        k
    }

    // ---- document encoding ------------------------------------------------
    //
    // Vertex doc: [label varint][props]
    // Edge doc:   [_from u64 LE][_to u64 LE][label varint][props]

    fn encode_vertex_doc(&mut self, label: u32, props: &Props) -> Bytes {
        let mut buf = Vec::with_capacity(16);
        write_varint(&mut buf, label as u64);
        let interned: Vec<(u32, Value)> = props
            .iter()
            .map(|(n, v)| (self.keys.intern(n), v.clone()))
            .collect();
        encode_props(&mut buf, &interned);
        Bytes::from(buf)
    }

    fn encode_edge_doc(&mut self, from: u64, to: u64, label: u32, props: &Props) -> Bytes {
        let mut buf = Vec::with_capacity(EDGE_HEADER + 8);
        buf.extend_from_slice(&from.to_le_bytes());
        buf.extend_from_slice(&to.to_le_bytes());
        write_varint(&mut buf, label as u64);
        let interned: Vec<(u32, Value)> = props
            .iter()
            .map(|(n, v)| (self.keys.intern(n), v.clone()))
            .collect();
        encode_props(&mut buf, &interned);
        Bytes::from(buf)
    }

    /// Full vertex materialization (label id + properties).
    fn decode_vertex_doc(&self, doc: &[u8]) -> (u32, Vec<(u32, Value)>) {
        let mut pos = 0usize;
        let label = read_varint(doc, &mut pos).expect("label") as u32;
        let props = decode_props(doc, &mut pos).expect("props");
        (label, props)
    }

    /// Full edge materialization.
    fn decode_edge_doc(&self, doc: &[u8]) -> (u64, u64, u32, Vec<(u32, Value)>) {
        let from = u64::from_le_bytes(doc[0..8].try_into().expect("_from"));
        let to = u64::from_le_bytes(doc[8..16].try_into().expect("_to"));
        let mut pos = EDGE_HEADER;
        let label = read_varint(doc, &mut pos).expect("label") as u32;
        let props = decode_props(doc, &mut pos).expect("props");
        (from, to, label, props)
    }

    /// Header-only endpoint read (the hash-index-accelerated fast path).
    fn edge_endpoints_raw(doc: &[u8]) -> (u64, u64) {
        (
            u64::from_le_bytes(doc[0..8].try_into().expect("_from")),
            u64::from_le_bytes(doc[8..16].try_into().expect("_to")),
        )
    }

    fn edge_label_raw(doc: &[u8]) -> u32 {
        let mut pos = EDGE_HEADER;
        read_varint(doc, &mut pos).expect("label") as u32
    }

    // ---- overlay-aware document access -------------------------------------

    fn get_vdoc(&self, key: u64) -> Option<&Bytes> {
        match self.v_overlay.get(&key) {
            Some(Some(doc)) => Some(doc),
            Some(None) => None,
            None => self.vdocs.get(&key),
        }
    }

    fn get_edoc(&self, key: u64) -> Option<&Bytes> {
        match self.e_overlay.get(&key) {
            Some(Some(doc)) => Some(doc),
            Some(None) => None,
            None => self.edocs.get(&key),
        }
    }

    fn put_vdoc(&mut self, key: u64, doc: Bytes) {
        self.v_overlay.insert(key, Some(doc));
        self.bump_overlay();
    }

    fn put_edoc(&mut self, key: u64, doc: Bytes) {
        self.e_overlay.insert(key, Some(doc));
        self.bump_overlay();
    }

    fn del_vdoc(&mut self, key: u64) {
        self.v_overlay.insert(key, None);
        self.bump_overlay();
    }

    fn del_edoc(&mut self, key: u64) {
        self.e_overlay.insert(key, None);
        self.bump_overlay();
    }

    fn bump_overlay(&mut self) {
        self.overlay_ops += 1;
        if self.overlay_ops >= JOURNAL_FLUSH_THRESHOLD {
            self.apply_overlay();
        }
    }

    fn apply_overlay(&mut self) {
        for (k, doc) in self.v_overlay.drain() {
            match doc {
                Some(d) => {
                    self.vdocs.insert(k, d);
                }
                None => {
                    self.vdocs.remove(&k);
                }
            }
        }
        for (k, doc) in self.e_overlay.drain() {
            match doc {
                Some(d) => {
                    self.edocs.insert(k, d);
                }
                None => {
                    self.edocs.remove(&k);
                }
            }
        }
        self.overlay_ops = 0;
    }

    /// Iterate all live vertex documents (primary + overlay).
    fn iter_vdocs<'a>(&'a self) -> impl Iterator<Item = (u64, &'a Bytes)> + 'a {
        let primary = self
            .vdocs
            .iter()
            .filter(|(k, _)| !self.v_overlay.contains_key(k))
            .map(|(k, d)| (*k, d));
        let overlay = self
            .v_overlay
            .iter()
            .filter_map(|(k, d)| d.as_ref().map(|d| (*k, d)));
        primary.chain(overlay)
    }

    fn iter_edocs<'a>(&'a self) -> impl Iterator<Item = (u64, &'a Bytes)> + 'a {
        let primary = self
            .edocs
            .iter()
            .filter(|(k, _)| !self.e_overlay.contains_key(k))
            .map(|(k, d)| (*k, d));
        let overlay = self
            .e_overlay
            .iter()
            .filter_map(|(k, d)| d.as_ref().map(|d| (*k, d)));
        primary.chain(overlay)
    }

    fn resolve_props(&self, interned: Vec<(u32, Value)>) -> Props {
        interned
            .into_iter()
            .map(|(k, v)| (self.keys.resolve(k).expect("known key").to_string(), v))
            .collect()
    }
}

impl GraphSnapshot for DocumentGraph {
    fn name(&self) -> String {
        "document".into()
    }

    fn features(&self) -> EngineFeatures {
        EngineFeatures {
            name: self.name(),
            system_type: "Hybrid (Document)".into(),
            storage: "Serialized binary documents".into(),
            edge_traversal: "Hash index".into(),
            optimized_adapter: false,
            async_writes: true,
            attribute_indexes: true,
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.vmap.get(canonical as usize).map(|&v| Vid(v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.emap.get(canonical as usize).map(|&e| Eid(e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        // The Gremlin adapter materializes every object while counting.
        let mut n = 0u64;
        for (_, doc) in self.iter_vdocs() {
            ctx.tick()?;
            std::hint::black_box(self.decode_vertex_doc(doc));
            n += 1;
        }
        Ok(n)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for (_, doc) in self.iter_edocs() {
            ctx.tick()?;
            std::hint::black_box(self.decode_edge_doc(doc));
            n += 1;
        }
        Ok(n)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let mut seen = vec![false; self.elabels.len()];
        for (_, doc) in self.iter_edocs() {
            ctx.tick()?;
            let (_, _, label, props) = self.decode_edge_doc(doc);
            std::hint::black_box(props);
            seen[label as usize] = true;
        }
        Ok(seen
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .filter_map(|(i, _)| self.elabels.resolve(i as u32).map(String::from))
            .collect())
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (k, doc) in self.iter_vdocs() {
            ctx.tick()?;
            let (_, props) = self.decode_vertex_doc(doc);
            if props.iter().any(|(pk, pv)| *pk == key && pv == value) {
                out.push(Vid(k));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let Some(key) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (k, doc) in self.iter_edocs() {
            ctx.tick()?;
            let (_, _, _, props) = self.decode_edge_doc(doc);
            if props.iter().any(|(pk, pv)| *pk == key && pv == value) {
                out.push(Eid(k));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        let Some(want) = self.elabels.get(label) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (k, doc) in self.iter_edocs() {
            ctx.tick()?;
            let (_, _, l, props) = self.decode_edge_doc(doc);
            std::hint::black_box(props);
            if l == want {
                out.push(Eid(k));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        match self.get_vdoc(v.0) {
            None => Ok(None),
            Some(doc) => {
                let (label, props) = self.decode_vertex_doc(doc);
                Ok(Some(VertexData {
                    id: v,
                    label: self
                        .vlabels
                        .resolve(label)
                        .unwrap_or("<unknown>")
                        .to_string(),
                    props: self.resolve_props(props),
                }))
            }
        }
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        match self.get_edoc(e.0) {
            None => Ok(None),
            Some(doc) => {
                let (from, to, label, props) = self.decode_edge_doc(doc);
                Ok(Some(EdgeData {
                    id: e,
                    src: Vid(from),
                    dst: Vid(to),
                    label: self
                        .elabels
                        .resolve(label)
                        .unwrap_or("<unknown>")
                        .to_string(),
                    props: self.resolve_props(props),
                }))
            }
        }
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(self
            .vertex_edges(v, dir, label, ctx)?
            .into_iter()
            .map(|r| r.other)
            .collect())
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        if self.get_vdoc(v.0).is_none() {
            return Err(GdbError::VertexNotFound(v.0));
        }
        let want = match label {
            Some(l) => match self.elabels.get(l) {
                Some(id) => Some(id),
                None => return Ok(Vec::new()),
            },
            None => None,
        };
        let mut out = Vec::new();
        let visit = |eid: u64, outgoing: bool, out: &mut Vec<EdgeRef>| -> GdbResult<()> {
            ctx.tick()?;
            let Some(doc) = self.get_edoc(eid) else {
                return Ok(());
            };
            if let Some(want) = want {
                if Self::edge_label_raw(doc) != want {
                    return Ok(());
                }
            }
            let (from, to) = Self::edge_endpoints_raw(doc);
            out.push(EdgeRef {
                eid: Eid(eid),
                other: Vid(if outgoing { to } else { from }),
            });
            Ok(())
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            for eid in self.out_index.get(v.0) {
                visit(eid, true, &mut out)?;
            }
        }
        if matches!(dir, Direction::In | Direction::Both) {
            for eid in self.in_index.get(v.0) {
                visit(eid, false, &mut out)?;
            }
        }
        Ok(out)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        if self.get_vdoc(v.0).is_none() {
            return Err(GdbError::VertexNotFound(v.0));
        }
        ctx.tick()?;
        let n = match dir {
            Direction::Out => self.out_index.count(v.0),
            Direction::In => self.in_index.count(v.0),
            Direction::Both => self.out_index.count(v.0) + self.in_index.count(v.0),
        };
        Ok(n as u64)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let refs = self.vertex_edges(v, dir, None, ctx)?;
        let mut seen: Vec<u32> = Vec::new();
        for r in refs {
            let doc = self.get_edoc(r.eid.0).expect("edge exists");
            let l = Self::edge_label_raw(doc);
            if !seen.contains(&l) {
                seen.push(l);
            }
        }
        Ok(seen
            .into_iter()
            .filter_map(|l| self.elabels.resolve(l).map(String::from))
            .collect())
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        Ok(Box::new(self.iter_vdocs().map(move |(k, doc)| {
            ctx.tick()?;
            // Scans materialize documents (the hybrid's handicap).
            std::hint::black_box(self.decode_vertex_doc(doc));
            Ok(Vid(k))
        })))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        Ok(Box::new(self.iter_edocs().map(move |(k, doc)| {
            ctx.tick()?;
            std::hint::black_box(self.decode_edge_doc(doc));
            Ok(Eid(k))
        })))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let doc = self.get_vdoc(v.0).ok_or(GdbError::VertexNotFound(v.0))?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let (_, props) = self.decode_vertex_doc(doc);
        Ok(props.into_iter().find(|(k, _)| *k == key).map(|(_, v)| v))
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let doc = self.get_edoc(e.0).ok_or(GdbError::EdgeNotFound(e.0))?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let (_, _, _, props) = self.decode_edge_doc(doc);
        Ok(props.into_iter().find(|(k, _)| *k == key).map(|(_, v)| v))
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        Ok(self.get_edoc(e.0).map(|doc| {
            let (from, to) = Self::edge_endpoints_raw(doc);
            (Vid(from), Vid(to))
        }))
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        Ok(self.get_edoc(e.0).and_then(|doc| {
            self.elabels
                .resolve(Self::edge_label_raw(doc))
                .map(String::from)
        }))
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        Ok(self.get_vdoc(v.0).and_then(|doc| {
            let (label, _) = self.decode_vertex_doc(doc);
            self.vlabels.resolve(label).map(String::from)
        }))
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.keys
            .get(prop)
            .map(|k| self.declared_indexes.contains(&k))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        let mut r = SpaceReport::default();
        r.add(
            "vertex documents",
            self.vdocs
                .values()
                .map(|d| d.len() as u64 + 24)
                .sum::<u64>(),
        );
        r.add(
            "edge documents",
            self.edocs
                .values()
                .map(|d| d.len() as u64 + 24)
                .sum::<u64>(),
        );
        r.add(
            "endpoint hash indexes",
            self.out_index.bytes() + self.in_index.bytes(),
        );
        r.add(
            "write journal",
            self.v_overlay
                .values()
                .chain(self.e_overlay.values())
                .map(|d| d.as_ref().map_or(16, |d| d.len() as u64 + 24))
                .sum::<u64>(),
        );
        r.add(
            "dictionaries",
            self.vlabels.bytes() + self.elabels.bytes() + self.keys.bytes(),
        );
        r
    }
}

impl GraphDb for DocumentGraph {
    fn bulk_load(&mut self, data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        if !self.vmap.is_empty() {
            return Err(GdbError::Invalid(
                "bulk_load requires an empty engine".into(),
            ));
        }
        // Native-script load path (the paper had to bypass Gremlin): write
        // documents straight into the primary store.
        for v in &data.vertices {
            let key = self.alloc_key();
            let label = self.vlabels.intern(&v.label);
            let doc = self.encode_vertex_doc(label, &v.props);
            self.vdocs.insert(key, doc);
            self.vmap.push(key);
        }
        for e in &data.edges {
            let key = self.alloc_key();
            let label = self.elabels.intern(&e.label);
            let from = self.vmap[e.src as usize];
            let to = self.vmap[e.dst as usize];
            let doc = self.encode_edge_doc(from, to, label, &e.props);
            self.edocs.insert(key, doc);
            self.out_index.insert(from, key);
            self.in_index.insert(to, key);
            self.emap.push(key);
        }
        Ok(LoadStats {
            vertices: data.vertices.len() as u64,
            edges: data.edges.len() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let key = self.alloc_key();
        let label = self.vlabels.intern(label);
        let doc = self.encode_vertex_doc(label, props);
        self.put_vdoc(key, doc);
        Ok(Vid(key))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        if self.get_vdoc(src.0).is_none() {
            return Err(GdbError::VertexNotFound(src.0));
        }
        if self.get_vdoc(dst.0).is_none() {
            return Err(GdbError::VertexNotFound(dst.0));
        }
        let key = self.alloc_key();
        let label = self.elabels.intern(label);
        let doc = self.encode_edge_doc(src.0, dst.0, label, props);
        self.put_edoc(key, doc);
        // The endpoint hash index is maintained with the write (ArangoDB
        // builds these automatically).
        self.out_index.insert(src.0, key);
        self.in_index.insert(dst.0, key);
        Ok(Eid(key))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        let doc = self
            .get_vdoc(v.0)
            .ok_or(GdbError::VertexNotFound(v.0))?
            .clone();
        let (label, mut props) = self.decode_vertex_doc(&doc);
        let key = self.keys.intern(name);
        if let Some(slot) = props.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            props.push((key, value));
        }
        let named = self.resolve_props(props);
        let doc = self.encode_vertex_doc(label, &named);
        self.put_vdoc(v.0, doc);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let doc = self
            .get_edoc(e.0)
            .ok_or(GdbError::EdgeNotFound(e.0))?
            .clone();
        let (from, to, label, mut props) = self.decode_edge_doc(&doc);
        let key = self.keys.intern(name);
        if let Some(slot) = props.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            props.push((key, value));
        }
        let named = self.resolve_props(props);
        let doc = self.encode_edge_doc(from, to, label, &named);
        self.put_edoc(e.0, doc);
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        if self.get_vdoc(v.0).is_none() {
            return Err(GdbError::VertexNotFound(v.0));
        }
        let mut incident = self.out_index.get(v.0);
        incident.extend(self.in_index.get(v.0));
        incident.sort_unstable();
        incident.dedup();
        for e in incident {
            // Edge may already be gone if it was a self-loop handled earlier.
            if self.get_edoc(e).is_some() {
                self.remove_edge(Eid(e))?;
            }
        }
        self.del_vdoc(v.0);
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        let doc = self.get_edoc(e.0).ok_or(GdbError::EdgeNotFound(e.0))?;
        let (from, to) = Self::edge_endpoints_raw(doc);
        self.out_index.remove(from, e.0);
        self.in_index.remove(to, e.0);
        self.del_edoc(e.0);
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let doc = self
            .get_vdoc(v.0)
            .ok_or(GdbError::VertexNotFound(v.0))?
            .clone();
        let (label, mut props) = self.decode_vertex_doc(&doc);
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let Some(p) = props.iter().position(|(k, _)| *k == key) else {
            return Ok(None);
        };
        let old = props.remove(p).1;
        let named = self.resolve_props(props);
        let doc = self.encode_vertex_doc(label, &named);
        self.put_vdoc(v.0, doc);
        Ok(Some(old))
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let doc = self
            .get_edoc(e.0)
            .ok_or(GdbError::EdgeNotFound(e.0))?
            .clone();
        let (from, to, label, mut props) = self.decode_edge_doc(&doc);
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let Some(p) = props.iter().position(|(k, _)| *k == key) else {
            return Ok(None);
        };
        let old = props.remove(p).1;
        let named = self.resolve_props(props);
        let doc = self.encode_edge_doc(from, to, label, &named);
        self.put_edoc(e.0, doc);
        Ok(Some(old))
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        // Accepted, recorded, never consulted by the Gremlin scan path
        // (§6.4: "no difference in running times").
        let key = self.keys.intern(prop);
        if !self.declared_indexes.contains(&key) {
            self.declared_indexes.push(key);
        }
        Ok(())
    }

    fn sync(&mut self) -> GdbResult<()> {
        self.apply_overlay();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn conformance() {
        testkit::conformance_suite(&mut || Box::new(DocumentGraph::new()));
    }

    #[test]
    fn writes_land_in_overlay_first() {
        let mut g = DocumentGraph::new();
        let v = g.add_vertex("n", &vec![]).unwrap();
        assert!(g.v_overlay.contains_key(&v.0), "write acknowledged in RAM");
        assert!(!g.vdocs.contains_key(&v.0), "primary store not yet updated");
        g.sync().unwrap();
        assert!(g.vdocs.contains_key(&v.0));
        assert!(g.v_overlay.is_empty());
    }

    #[test]
    fn overlay_reads_are_read_your_writes() {
        let mut g = DocumentGraph::new();
        let a = g
            .add_vertex("n", &vec![("x".into(), Value::Int(1))])
            .unwrap();
        // Visible before any sync.
        assert_eq!(g.vertex_property(a, "x").unwrap(), Some(Value::Int(1)));
        let b = g.add_vertex("n", &vec![]).unwrap();
        let e = g.add_edge(a, b, "l", &vec![]).unwrap();
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.neighbors(a, Direction::Out, None, &ctx).unwrap(), vec![b]);
        g.remove_edge(e).unwrap();
        assert!(g
            .neighbors(a, Direction::Out, None, &ctx)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn overlay_auto_flushes_at_threshold() {
        let mut g = DocumentGraph::new();
        for _ in 0..(JOURNAL_FLUSH_THRESHOLD + 10) {
            g.add_vertex("n", &vec![]).unwrap();
        }
        assert!(
            g.v_overlay.len() < JOURNAL_FLUSH_THRESHOLD,
            "background flush kicked in"
        );
        let ctx = QueryCtx::unbounded();
        assert_eq!(
            g.vertex_count(&ctx).unwrap(),
            (JOURNAL_FLUSH_THRESHOLD + 10) as u64
        );
    }

    #[test]
    fn deletion_via_overlay_hides_primary_doc() {
        let mut g = DocumentGraph::new();
        g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        let v = g.resolve_vertex(3).unwrap(); // isolated robot
        g.remove_vertex(v).unwrap();
        assert!(g.vdocs.contains_key(&v.0), "primary still has the doc");
        assert_eq!(g.vertex(v).unwrap(), None, "overlay tombstone wins");
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.vertex_count(&ctx).unwrap(), 4);
    }

    #[test]
    fn traversal_uses_header_not_full_doc() {
        // Endpoint resolution reads the fixed header; this is a semantic
        // test that parallel edges and self-loops resolve correctly.
        let mut g = DocumentGraph::new();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        g.add_edge(a, b, "x", &vec![("p".into(), Value::Str("ignored".into()))])
            .unwrap();
        g.add_edge(a, a, "x", &vec![]).unwrap();
        let ctx = QueryCtx::unbounded();
        let mut got: Vec<u64> = g
            .neighbors(a, Direction::Both, None, &ctx)
            .unwrap()
            .iter()
            .map(|v| v.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![a.0, a.0, b.0]);
    }

    #[test]
    fn index_declared_but_scan_unchanged() {
        let mut g = DocumentGraph::new();
        g.bulk_load(&testkit::tiny_dataset(), &LoadOptions::default())
            .unwrap();
        let ctx = QueryCtx::unbounded();
        let before_work = {
            let c = QueryCtx::unbounded();
            g.vertices_with_property("age", &Value::Int(30), &c)
                .unwrap();
            c.work()
        };
        g.create_vertex_index("age").unwrap();
        let after = g
            .vertices_with_property("age", &Value::Int(30), &ctx)
            .unwrap();
        assert_eq!(after.len(), 2);
        assert_eq!(ctx.work(), before_work, "same scan work despite index");
    }
}
