//! # engine-columnar — the Titan-class hybrid engine
//!
//! Reproduces the architecture the paper describes for Titan over its
//! Cassandra backend (§3.1/§3.2):
//!
//! * "Titan adopts the **adjacency list format**, where each vertex is
//!   stored alongside the list of incident edges": a vertex is a row in the
//!   LSM column store ([`gm_storage::LsmTable`]), its properties and
//!   adjacency are columns of that row;
//! * neighbor ids inside each adjacency cell are **delta-encoded**
//!   ([`gm_storage::codec::delta_encode`]-style gaps) — "a strategy very
//!   effective in graphs with nodes of high degree" that gives Titan the
//!   best space footprint in Figure 1;
//! * writes perform **consistency checks and schema inference** (§6.2:
//!   disabling automatic schema inference "significantly reduc\[ed\] the
//!   loading times"), which is why Titan is among the slowest for
//!   insertions (§6.4);
//! * deletions are **tombstones** — "marks an item as removed instead of
//!   actually removing it" — making Titan *faster* at deletes than at
//!   inserts (§6.5);
//! * "for each edge traversal, it needs to access the node (row) ID index
//!   first": every hop goes through the LSM's point/prefix lookup path;
//! * two variants mirror the tested versions: [`Variant::V05`] (smaller
//!   memtable, more runs, uncached existence checks) and [`Variant::V10`]
//!   (production tuning: bigger memtable, fewer runs, cached row index).

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::{FxHashMap, FxHashSet};
use gm_model::interner::Interner;
use gm_model::value::{Props, Value};
use gm_model::{Dataset, Eid, GdbError, GdbResult, QueryCtx, Vid};
use gm_mvcc::FreezeCell;
use gm_storage::codec::{read_varint, write_varint};
use gm_storage::lsm::{LsmConfig, LsmTable, PrefixEnd};
use gm_storage::segvec::SegVec;
use gm_storage::valcodec::{decode_props, decode_value, encode_props, encode_value};

/// The columnar engine's **native snapshot source**: a freeze-on-pin cell
/// over [`ColumnarGraph`], whose `Clone` shares the LSM's immutable runs
/// and the closed segments of the append-only id columns. Pinning an epoch
/// copies only the memtable, the open segment tails, and the tombstone
/// sets — never the adjacency data — so snapshot cost is bounded by the
/// write volume since the last pin, not by graph size. This is the
/// "append-only column segments + per-epoch visible-length watermark"
/// design: a frozen clone is exactly a watermark over the shared segments.
pub type ColumnarCell = FreezeCell<ColumnarGraph>;

/// Native snapshot cell over a fresh engine of the given variant.
///
/// Freezing an epoch deep-copies exactly the engine's *mutable overlays*,
/// and the dominant one is the LSM memtable — so snapshot hosting tunes the
/// memtable smaller than the stock single-writer configuration (the same
/// knob Titan deployments tune per workload). With a 1 Ki-entry memtable
/// the freeze cost is bounded at roughly one `SegVec` segment's worth of
/// entries regardless of graph size; everything below the memtable is
/// `Arc`-shared runs that freezes never touch.
pub fn native_cell(variant: Variant) -> ColumnarCell {
    FreezeCell::new(ColumnarGraph::with_store_config(
        variant,
        LsmConfig {
            memtable_limit: 1024,
            max_runs: 8,
        },
    ))
}

/// Column qualifiers within a row.
const Q_LABEL: u8 = 0x00;
const Q_PROP: u8 = 0x01;
const Q_ADJ: u8 = 0x02;

const DIR_OUT: u8 = 0;
const DIR_IN: u8 = 1;

/// Engine variant mirroring the two Titan versions of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Titan 0.5-style: small memtable, many runs, existence checks go to
    /// the store.
    V05,
    /// Titan 1.0-style: production tuning with a cached row index.
    V10,
}

/// One entry of an adjacency cell.
#[derive(Debug, Clone, PartialEq)]
struct AdjEntry {
    other: u64,
    eid: u64,
    /// Edge properties (key id, value); populated on the OUT side only.
    props: Vec<(u32, Value)>,
}

/// The Titan-class engine. See crate docs for the layout.
///
/// `Clone` is **structurally cheap** — the native-snapshot property the
/// [`ColumnarCell`] freeze path relies on: the LSM's immutable runs are
/// `Arc`-shared, the dense id columns (`vmap`/`emap`/`edge_index`) are
/// append-only [`SegVec`]s whose closed segments are `Arc`-shared, and the
/// remaining overlays (memtable, tombstone sets, interners, schema) are
/// small relative to the graph. A clone is therefore a consistent visible-
/// length watermark over the shared segments, not a second copy of the
/// adjacency data.
#[derive(Clone)]
pub struct ColumnarGraph {
    variant: Variant,
    store: LsmTable,
    /// Tombstoned vertex rows. Row existence for v1.0 is the dense-id check
    /// `vid < next_vid && !deleted`; v0.5 pays the store lookup instead
    /// (the uncached existence check the paper attributes to Titan 0.5).
    deleted_vertices: FxHashSet<u64>,
    /// Edge column: eid-indexed (eids are dense, handed out sequentially),
    /// append-only; entry = (src, dst, label). Deletions tombstone in
    /// [`ColumnarGraph::deleted_edges`], never remove here.
    edge_index: SegVec<(u64, u64, u32)>,
    /// Tombstoned edges (the Cassandra deletion mechanism).
    deleted_edges: FxHashSet<u64>,
    /// Inferred property schema: key id -> type tag (0xFF = mixed).
    schema: FxHashMap<u32, u8>,
    vlabels: Interner,
    elabels: Interner,
    keys: Interner,
    next_vid: u64,
    next_eid: u64,
    vmap: SegVec<u64>,
    emap: SegVec<u64>,
    declared_indexes: Vec<u32>,
    vertex_rows: u64,
}

impl ColumnarGraph {
    /// A fresh engine of the given variant, with the variant's stock
    /// Cassandra-style store tuning.
    pub fn new(variant: Variant) -> Self {
        let config = match variant {
            Variant::V05 => LsmConfig {
                memtable_limit: 2048,
                max_runs: 8,
            },
            Variant::V10 => LsmConfig {
                memtable_limit: 8192,
                max_runs: 4,
            },
        };
        Self::with_store_config(variant, config)
    }

    /// A fresh engine with explicit store tuning (snapshot deployments tune
    /// the memtable smaller — see [`native_cell`]).
    pub fn with_store_config(variant: Variant, config: LsmConfig) -> Self {
        ColumnarGraph {
            variant,
            store: LsmTable::new(config),
            deleted_vertices: FxHashSet::default(),
            edge_index: SegVec::new(),
            deleted_edges: FxHashSet::default(),
            schema: FxHashMap::default(),
            vlabels: Interner::new(),
            elabels: Interner::new(),
            keys: Interner::new(),
            next_vid: 0,
            next_eid: 0,
            vmap: SegVec::new(),
            emap: SegVec::new(),
            declared_indexes: Vec::new(),
            vertex_rows: 0,
        }
    }

    /// Titan 0.5-style engine.
    pub fn v05() -> Self {
        Self::new(Variant::V05)
    }

    /// Titan 1.0-style engine.
    pub fn v10() -> Self {
        Self::new(Variant::V10)
    }

    // ---- key construction ------------------------------------------------

    fn key_label(vid: u64) -> Vec<u8> {
        let mut k = vid.to_be_bytes().to_vec();
        k.push(Q_LABEL);
        k
    }

    fn key_prop(vid: u64, key: u32) -> Vec<u8> {
        let mut k = vid.to_be_bytes().to_vec();
        k.push(Q_PROP);
        k.extend_from_slice(&key.to_be_bytes());
        k
    }

    fn key_adj(vid: u64, dir: u8, label: u32) -> Vec<u8> {
        let mut k = vid.to_be_bytes().to_vec();
        k.push(Q_ADJ);
        k.push(dir);
        k.extend_from_slice(&label.to_be_bytes());
        k
    }

    fn key_row_prefix(vid: u64) -> Vec<u8> {
        vid.to_be_bytes().to_vec()
    }

    fn key_adj_prefix(vid: u64, dir: u8) -> Vec<u8> {
        let mut k = vid.to_be_bytes().to_vec();
        k.push(Q_ADJ);
        k.push(dir);
        k
    }

    // ---- adjacency cell codec ---------------------------------------------
    //
    // Cell value: varint count, then per entry sorted by `other`:
    //   varint gap(other)   (delta encoding — the Titan space trick)
    //   varint eid
    //   props blob (encode_props; empty list on the IN side)

    fn encode_adj(entries: &[AdjEntry]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + entries.len() * 6);
        write_varint(&mut out, entries.len() as u64);
        let mut prev = 0u64;
        for (i, e) in entries.iter().enumerate() {
            let gap = if i == 0 { e.other } else { e.other - prev };
            write_varint(&mut out, gap);
            write_varint(&mut out, e.eid);
            encode_props(&mut out, &e.props);
            prev = e.other;
        }
        out
    }

    fn decode_adj(buf: &[u8]) -> Vec<AdjEntry> {
        let mut pos = 0usize;
        let n = read_varint(buf, &mut pos).expect("adj count") as usize;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let gap = read_varint(buf, &mut pos).expect("gap");
            let other = if i == 0 { gap } else { prev + gap };
            let eid = read_varint(buf, &mut pos).expect("eid");
            let props = decode_props(buf, &mut pos).expect("props");
            out.push(AdjEntry { other, eid, props });
            prev = other;
        }
        out
    }

    /// Read-modify-write an adjacency cell.
    fn adj_rmw(&mut self, vid: u64, dir: u8, label: u32, f: impl FnOnce(&mut Vec<AdjEntry>)) {
        let key = Self::key_adj(vid, dir, label);
        let mut entries = self
            .store
            .get(&key)
            .map(|v| Self::decode_adj(&v))
            .unwrap_or_default();
        f(&mut entries);
        if entries.is_empty() {
            self.store.delete(&key);
        } else {
            self.store.put(&key, &Self::encode_adj(&entries));
        }
    }

    // ---- schema inference and consistency checks ---------------------------

    fn value_tag(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Titan's automatic schema maintenance: look up, infer, validate.
    fn infer_schema(&mut self, props: &[(u32, Value)]) {
        for (key, value) in props {
            let tag = Self::value_tag(value);
            match self.schema.get(key) {
                None => {
                    self.schema.insert(*key, tag);
                }
                Some(&t) if t != tag => {
                    self.schema.insert(*key, 0xFF);
                }
                _ => {}
            }
        }
    }

    /// Row existence check: v1.0 answers from the dense id space plus the
    /// vertex tombstone set (O(1), its cached row index), v0.5 pays a store
    /// lookup.
    fn row_exists(&self, vid: u64) -> bool {
        match self.variant {
            Variant::V10 => vid < self.next_vid && !self.deleted_vertices.contains(&vid),
            Variant::V05 => self.store.contains(&Self::key_label(vid)),
        }
    }

    fn require_vertex(&self, vid: u64) -> GdbResult<()> {
        if self.row_exists(vid) {
            Ok(())
        } else {
            Err(GdbError::VertexNotFound(vid))
        }
    }

    fn live_edge(&self, eid: u64) -> Option<&(u64, u64, u32)> {
        if self.deleted_edges.contains(&eid) {
            return None;
        }
        self.edge_index.get(eid as usize)
    }

    fn intern_props(&mut self, props: &Props) -> Vec<(u32, Value)> {
        props
            .iter()
            .map(|(n, v)| (self.keys.intern(n), v.clone()))
            .collect()
    }

    fn named_props(&self, interned: &[(u32, Value)]) -> Props {
        interned
            .iter()
            .map(|(k, v)| {
                (
                    self.keys.resolve(*k).expect("known key").to_string(),
                    v.clone(),
                )
            })
            .collect()
    }

    fn add_vertex_raw(&mut self, label: u32, props: &[(u32, Value)]) -> u64 {
        let vid = self.next_vid;
        self.next_vid += 1;
        let mut label_cell = Vec::with_capacity(4);
        write_varint(&mut label_cell, label as u64);
        self.store.put(&Self::key_label(vid), &label_cell);
        for (key, value) in props {
            let mut cell = Vec::new();
            encode_value(&mut cell, value);
            self.store.put(&Self::key_prop(vid, *key), &cell);
        }
        self.vertex_rows += 1;
        vid
    }

    /// Collect the live adjacency entries of (vid, dir), optionally
    /// restricted to one label cell.
    fn adjacency(
        &self,
        vid: u64,
        dir: u8,
        label: Option<u32>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<(u32, AdjEntry)>> {
        let mut out = Vec::new();
        match label {
            Some(l) => {
                ctx.tick()?;
                if let Some(cell) = self.store.get(&Self::key_adj(vid, dir, l)) {
                    for e in Self::decode_adj(&cell) {
                        ctx.tick()?;
                        if !self.deleted_edges.contains(&e.eid) {
                            out.push((l, e));
                        }
                    }
                }
            }
            None => {
                let prefix = Self::key_adj_prefix(vid, dir);
                for (key, cell) in self.store.scan_prefix(&prefix) {
                    ctx.tick()?;
                    let label = u32::from_be_bytes(key[10..14].try_into().expect("label"));
                    for e in Self::decode_adj(&cell) {
                        ctx.tick()?;
                        if !self.deleted_edges.contains(&e.eid) {
                            out.push((label, e));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl GraphSnapshot for ColumnarGraph {
    fn name(&self) -> String {
        match self.variant {
            Variant::V05 => "columnar(v05)".into(),
            Variant::V10 => "columnar(v10)".into(),
        }
    }

    fn features(&self) -> EngineFeatures {
        EngineFeatures {
            name: self.name(),
            system_type: "Hybrid (Columnar)".into(),
            storage: "Vertex-indexed adjacency-list rows over an LSM".into(),
            edge_traversal: "Row-key index".into(),
            optimized_adapter: true,
            async_writes: false,
            attribute_indexes: true,
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.vmap.get(canonical as usize).map(|&v| Vid(v))
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.emap.get(canonical as usize).map(|&e| Eid(e))
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        // g.V iterates rows: a full store scan filtered to label cells.
        let mut n = 0u64;
        for (key, _) in self.store.scan_range(&[], PrefixEnd::Unbounded) {
            ctx.tick()?;
            if key.len() == 9 && key[8] == Q_LABEL {
                n += 1;
            }
        }
        Ok(n)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        let mut n = 0u64;
        for (key, cell) in self.store.scan_range(&[], PrefixEnd::Unbounded) {
            ctx.tick()?;
            if key.len() >= 10 && key[8] == Q_ADJ && key[9] == DIR_OUT {
                for e in Self::decode_adj(&cell) {
                    ctx.tick()?;
                    if !self.deleted_edges.contains(&e.eid) {
                        n += 1;
                    }
                }
            }
        }
        Ok(n)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        let mut seen = vec![false; self.elabels.len()];
        for (key, cell) in self.store.scan_range(&[], PrefixEnd::Unbounded) {
            ctx.tick()?;
            if key.len() >= 14 && key[8] == Q_ADJ && key[9] == DIR_OUT {
                let label = u32::from_be_bytes(key[10..14].try_into().expect("label"));
                if !seen[label as usize]
                    && Self::decode_adj(&cell)
                        .iter()
                        .any(|e| !self.deleted_edges.contains(&e.eid))
                {
                    seen[label as usize] = true;
                }
            }
        }
        Ok(seen
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .filter_map(|(i, _)| self.elabels.resolve(i as u32).map(String::from))
            .collect())
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        let Some(key_id) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (key, cell) in self.store.scan_range(&[], PrefixEnd::Unbounded) {
            ctx.tick()?;
            if key.len() == 13 && key[8] == Q_PROP {
                let k = u32::from_be_bytes(key[9..13].try_into().expect("key id"));
                if k == key_id {
                    let mut pos = 0usize;
                    if decode_value(&cell, &mut pos).as_ref() == Some(value) {
                        out.push(Vid(u64::from_be_bytes(key[0..8].try_into().expect("vid"))));
                    }
                }
            }
        }
        Ok(out)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        let Some(key_id) = self.keys.get(name) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (key, cell) in self.store.scan_range(&[], PrefixEnd::Unbounded) {
            ctx.tick()?;
            if key.len() >= 10 && key[8] == Q_ADJ && key[9] == DIR_OUT {
                for e in Self::decode_adj(&cell) {
                    ctx.tick()?;
                    if self.deleted_edges.contains(&e.eid) {
                        continue;
                    }
                    if e.props.iter().any(|(k, v)| *k == key_id && v == value) {
                        out.push(Eid(e.eid));
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        let Some(want) = self.elabels.get(label) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for (key, cell) in self.store.scan_range(&[], PrefixEnd::Unbounded) {
            ctx.tick()?;
            if key.len() >= 14 && key[8] == Q_ADJ && key[9] == DIR_OUT {
                let l = u32::from_be_bytes(key[10..14].try_into().expect("label"));
                if l == want {
                    for e in Self::decode_adj(&cell) {
                        ctx.tick()?;
                        if !self.deleted_edges.contains(&e.eid) {
                            out.push(Eid(e.eid));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        if !self.row_exists(v.0) {
            return Ok(None);
        }
        let label_cell = self
            .store
            .get(&Self::key_label(v.0))
            .ok_or_else(|| GdbError::Corrupt("row without label cell".into()))?;
        let mut pos = 0usize;
        let label = read_varint(&label_cell, &mut pos).expect("label id") as u32;
        let mut props = Props::new();
        let mut prop_prefix = Self::key_row_prefix(v.0);
        prop_prefix.push(Q_PROP);
        for (key, cell) in self.store.scan_prefix(&prop_prefix) {
            let k = u32::from_be_bytes(key[9..13].try_into().expect("key id"));
            let mut pos = 0usize;
            if let Some(value) = decode_value(&cell, &mut pos) {
                props.push((self.keys.resolve(k).expect("known key").to_string(), value));
            }
        }
        Ok(Some(VertexData {
            id: v,
            label: self
                .vlabels
                .resolve(label)
                .unwrap_or("<unknown>")
                .to_string(),
            props,
        }))
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        // Row-key index first, then scan the source row for the edge cell.
        let Some(&(src, dst, label)) = self.live_edge(e.0) else {
            return Ok(None);
        };
        let cell = self
            .store
            .get(&Self::key_adj(src, DIR_OUT, label))
            .ok_or_else(|| GdbError::Corrupt("edge without adjacency cell".into()))?;
        let entry = Self::decode_adj(&cell)
            .into_iter()
            .find(|x| x.eid == e.0)
            .ok_or_else(|| GdbError::Corrupt("edge missing from adjacency cell".into()))?;
        Ok(Some(EdgeData {
            id: e,
            src: Vid(src),
            dst: Vid(dst),
            label: self
                .elabels
                .resolve(label)
                .unwrap_or("<unknown>")
                .to_string(),
            props: self.named_props(&entry.props),
        }))
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(self
            .vertex_edges(v, dir, label, ctx)?
            .into_iter()
            .map(|r| r.other)
            .collect())
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.require_vertex(v.0)?;
        let want = match label {
            Some(l) => match self.elabels.get(l) {
                Some(id) => Some(id),
                None => return Ok(Vec::new()),
            },
            None => None,
        };
        let mut out = Vec::new();
        if matches!(dir, Direction::Out | Direction::Both) {
            for (_, e) in self.adjacency(v.0, DIR_OUT, want, ctx)? {
                out.push(EdgeRef {
                    eid: Eid(e.eid),
                    other: Vid(e.other),
                });
            }
        }
        if matches!(dir, Direction::In | Direction::Both) {
            for (_, e) in self.adjacency(v.0, DIR_IN, want, ctx)? {
                out.push(EdgeRef {
                    eid: Eid(e.eid),
                    other: Vid(e.other),
                });
            }
        }
        Ok(out)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.require_vertex(v.0)?;
        let mut n = 0u64;
        if matches!(dir, Direction::Out | Direction::Both) {
            n += self.adjacency(v.0, DIR_OUT, None, ctx)?.len() as u64;
        }
        if matches!(dir, Direction::In | Direction::Both) {
            n += self.adjacency(v.0, DIR_IN, None, ctx)?.len() as u64;
        }
        Ok(n)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.require_vertex(v.0)?;
        let mut seen: Vec<u32> = Vec::new();
        let mut visit = |d: u8| -> GdbResult<()> {
            for (label, _) in self.adjacency(v.0, d, None, ctx)? {
                if !seen.contains(&label) {
                    seen.push(label);
                }
            }
            Ok(())
        };
        if matches!(dir, Direction::Out | Direction::Both) {
            visit(DIR_OUT)?;
        }
        if matches!(dir, Direction::In | Direction::Both) {
            visit(DIR_IN)?;
        }
        Ok(seen
            .into_iter()
            .filter_map(|l| self.elabels.resolve(l).map(String::from))
            .collect())
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        Ok(Box::new(
            self.store
                .scan_range(&[], PrefixEnd::Unbounded)
                .filter_map(move |(key, _)| {
                    if let Err(e) = ctx.tick() {
                        return Some(Err(e));
                    }
                    if key.len() == 9 && key[8] == Q_LABEL {
                        Some(Ok(Vid(u64::from_be_bytes(
                            key[0..8].try_into().expect("vid"),
                        ))))
                    } else {
                        None
                    }
                }),
        ))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        Ok(Box::new(
            self.store.scan_range(&[], PrefixEnd::Unbounded).flat_map(
                move |(key, cell)| -> Vec<GdbResult<Eid>> {
                    if let Err(e) = ctx.tick() {
                        return vec![Err(e)];
                    }
                    if key.len() >= 10 && key[8] == Q_ADJ && key[9] == DIR_OUT {
                        Self::decode_adj(&cell)
                            .into_iter()
                            .filter(|e| !self.deleted_edges.contains(&e.eid))
                            .map(|e| Ok(Eid(e.eid)))
                            .collect()
                    } else {
                        Vec::new()
                    }
                },
            ),
        ))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.require_vertex(v.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        Ok(self.store.get(&Self::key_prop(v.0, key)).and_then(|cell| {
            let mut pos = 0usize;
            decode_value(&cell, &mut pos)
        }))
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let &(src, _, label) = self.live_edge(e.0).ok_or(GdbError::EdgeNotFound(e.0))?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let Some(cell) = self.store.get(&Self::key_adj(src, DIR_OUT, label)) else {
            return Ok(None);
        };
        Ok(Self::decode_adj(&cell)
            .into_iter()
            .find(|x| x.eid == e.0)
            .and_then(|entry| {
                entry
                    .props
                    .into_iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| v)
            }))
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        Ok(self.live_edge(e.0).map(|&(s, d, _)| (Vid(s), Vid(d))))
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        Ok(self
            .live_edge(e.0)
            .and_then(|&(_, _, l)| self.elabels.resolve(l))
            .map(String::from))
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        if !self.row_exists(v.0) {
            return Ok(None);
        }
        let Some(cell) = self.store.get(&Self::key_label(v.0)) else {
            return Ok(None);
        };
        let mut pos = 0usize;
        let label = read_varint(&cell, &mut pos).expect("label id") as u32;
        Ok(self.vlabels.resolve(label).map(String::from))
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.keys
            .get(prop)
            .map(|k| self.declared_indexes.contains(&k))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        let mut r = SpaceReport::default();
        r.add("lsm store (rows + columns)", self.store.bytes());
        r.add("edge column (eid-indexed)", self.edge_index.bytes());
        r.add(
            "tombstone sets",
            (self.deleted_edges.len() + self.deleted_vertices.len()) as u64 * 8 + 96,
        );
        r.add(
            "schema registry",
            self.schema.len() as u64 * 5
                + self.vlabels.bytes()
                + self.elabels.bytes()
                + self.keys.bytes(),
        );
        r
    }
}

impl GraphDb for ColumnarGraph {
    fn bulk_load(&mut self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats> {
        if !self.vmap.is_empty() {
            return Err(GdbError::Invalid(
                "bulk_load requires an empty engine".into(),
            ));
        }
        if opts.bulk {
            // Schema declared up front (no per-item inference), adjacency
            // lists built in memory and written once per cell.
            for v in &data.vertices {
                let props = self.intern_props(&v.props);
                self.infer_schema(&props);
                let label = self.vlabels.intern(&v.label);
                let vid = self.add_vertex_raw(label, &props);
                self.vmap.push(vid);
            }
            // Group edges by (src, label) and (dst, label).
            let mut out_cells: FxHashMap<(u64, u32), Vec<AdjEntry>> = FxHashMap::default();
            let mut in_cells: FxHashMap<(u64, u32), Vec<AdjEntry>> = FxHashMap::default();
            for e in &data.edges {
                let eid = self.next_eid;
                self.next_eid += 1;
                self.emap.push(eid);
                let label = self.elabels.intern(&e.label);
                let src = *self.vmap.get(e.src as usize).expect("src in vmap");
                let dst = *self.vmap.get(e.dst as usize).expect("dst in vmap");
                let props = self.intern_props(&e.props);
                self.infer_schema(&props);
                debug_assert_eq!(self.edge_index.len() as u64, eid);
                self.edge_index.push((src, dst, label));
                out_cells.entry((src, label)).or_default().push(AdjEntry {
                    other: dst,
                    eid,
                    props,
                });
                in_cells.entry((dst, label)).or_default().push(AdjEntry {
                    other: src,
                    eid,
                    props: Vec::new(),
                });
            }
            for ((vid, label), mut entries) in out_cells {
                entries.sort_by_key(|e| (e.other, e.eid));
                self.store.put(
                    &Self::key_adj(vid, DIR_OUT, label),
                    &Self::encode_adj(&entries),
                );
            }
            for ((vid, label), mut entries) in in_cells {
                entries.sort_by_key(|e| (e.other, e.eid));
                self.store.put(
                    &Self::key_adj(vid, DIR_IN, label),
                    &Self::encode_adj(&entries),
                );
            }
            // The bulk loader flushes its memtable to an SSTable run at the
            // end, like Titan's batch loading against Cassandra.
            self.store.flush();
        } else {
            for v in &data.vertices {
                let vid = self.add_vertex(&v.label, &v.props)?;
                self.vmap.push(vid.0);
            }
            for e in &data.edges {
                let src = Vid(*self.vmap.get(e.src as usize).expect("src in vmap"));
                let dst = Vid(*self.vmap.get(e.dst as usize).expect("dst in vmap"));
                let eid = self.add_edge(src, dst, &e.label, &e.props)?;
                self.emap.push(eid.0);
            }
        }
        Ok(LoadStats {
            vertices: data.vertices.len() as u64,
            edges: data.edges.len() as u64,
        })
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let interned = self.intern_props(props);
        // Schema inference per write (the Titan overhead).
        self.infer_schema(&interned);
        let label = self.vlabels.intern(label);
        Ok(Vid(self.add_vertex_raw(label, &interned)))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        // Consistency checks on both endpoints.
        self.require_vertex(src.0)?;
        self.require_vertex(dst.0)?;
        let interned = self.intern_props(props);
        self.infer_schema(&interned);
        let label = self.elabels.intern(label);
        let eid = self.next_eid;
        self.next_eid += 1;
        debug_assert_eq!(self.edge_index.len() as u64, eid);
        self.edge_index.push((src.0, dst.0, label));
        // Read-modify-write both adjacency cells.
        let entry = AdjEntry {
            other: dst.0,
            eid,
            props: interned,
        };
        self.adj_rmw(src.0, DIR_OUT, label, |entries| {
            let pos = entries
                .binary_search_by_key(&(entry.other, eid), |e| (e.other, e.eid))
                .unwrap_or_else(|p| p);
            entries.insert(pos, entry);
        });
        let in_entry = AdjEntry {
            other: src.0,
            eid,
            props: Vec::new(),
        };
        self.adj_rmw(dst.0, DIR_IN, label, |entries| {
            let pos = entries
                .binary_search_by_key(&(in_entry.other, eid), |e| (e.other, e.eid))
                .unwrap_or_else(|p| p);
            entries.insert(pos, in_entry);
        });
        Ok(Eid(eid))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        self.require_vertex(v.0)?;
        let key = self.keys.intern(name);
        self.infer_schema(&[(key, value.clone())]);
        let mut cell = Vec::new();
        encode_value(&mut cell, &value);
        self.store.put(&Self::key_prop(v.0, key), &cell);
        Ok(())
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let &(src, _, label) = self.live_edge(e.0).ok_or(GdbError::EdgeNotFound(e.0))?;
        let key = self.keys.intern(name);
        self.infer_schema(&[(key, value.clone())]);
        self.adj_rmw(src, DIR_OUT, label, |entries| {
            if let Some(entry) = entries.iter_mut().find(|x| x.eid == e.0) {
                if let Some(slot) = entry.props.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entry.props.push((key, value));
                }
            }
        });
        Ok(())
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        self.require_vertex(v.0)?;
        // Tombstone every incident edge.
        let ctx = QueryCtx::unbounded();
        let mut eids: Vec<u64> = Vec::new();
        for dir in [DIR_OUT, DIR_IN] {
            for (_, entry) in self.adjacency(v.0, dir, None, &ctx)? {
                eids.push(entry.eid);
            }
        }
        eids.sort_unstable();
        eids.dedup();
        for eid in eids {
            self.deleted_edges.insert(eid);
        }
        // Tombstone all of the row's cells.
        let keys: Vec<Vec<u8>> = self
            .store
            .scan_prefix(&Self::key_row_prefix(v.0))
            .map(|(k, _)| k)
            .collect();
        for k in keys {
            self.store.delete(&k);
        }
        self.deleted_vertices.insert(v.0);
        self.vertex_rows -= 1;
        Ok(())
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        if self.live_edge(e.0).is_none() {
            return Err(GdbError::EdgeNotFound(e.0));
        }
        // Pure tombstone — no adjacency rewrite (the fast-delete mechanism).
        self.deleted_edges.insert(e.0);
        Ok(())
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.require_vertex(v.0)?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let k = Self::key_prop(v.0, key);
        let old = self.store.get(&k).and_then(|cell| {
            let mut pos = 0usize;
            decode_value(&cell, &mut pos)
        });
        if old.is_some() {
            self.store.delete(&k);
        }
        Ok(old)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let &(src, _, label) = self.live_edge(e.0).ok_or(GdbError::EdgeNotFound(e.0))?;
        let Some(key) = self.keys.get(name) else {
            return Ok(None);
        };
        let mut old = None;
        self.adj_rmw(src, DIR_OUT, label, |entries| {
            if let Some(entry) = entries.iter_mut().find(|x| x.eid == e.0) {
                if let Some(pos) = entry.props.iter().position(|(k, _)| *k == key) {
                    old = Some(entry.props.remove(pos).1);
                }
            }
        });
        Ok(old)
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        // Titan supports graph-centric indexes; modelled as a declared
        // index that the property-scan path consults (see the benchmark's
        // Figure 4c where Titan gains 2–5 orders). To keep one code path,
        // the declaration builds an in-memory value index lazily at first
        // use — here, eagerly.
        let key = self.keys.intern(prop);
        if !self.declared_indexes.contains(&key) {
            self.declared_indexes.push(key);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn v05_conformance() {
        testkit::conformance_suite(&mut || Box::new(ColumnarGraph::v05()));
    }

    #[test]
    fn v10_conformance() {
        testkit::conformance_suite(&mut || Box::new(ColumnarGraph::v10()));
    }

    #[test]
    fn adjacency_cells_are_delta_encoded() {
        // A high-degree vertex with dense neighbor ids compresses far below
        // 16 bytes/edge.
        let mut g = ColumnarGraph::v10();
        let hub = g.add_vertex("n", &vec![]).unwrap();
        let spokes: Vec<Vid> = (0..1000)
            .map(|_| g.add_vertex("n", &vec![]).unwrap())
            .collect();
        for s in &spokes {
            g.add_edge(hub, *s, "e", &vec![]).unwrap();
        }
        let cell = g
            .store
            .get(&ColumnarGraph::key_adj(hub.0, DIR_OUT, 0))
            .unwrap();
        assert!(
            cell.len() < 1000 * 8,
            "delta+varint beats fixed-width ({} bytes for 1000 edges)",
            cell.len()
        );
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.vertex_degree(hub, Direction::Out, &ctx).unwrap(), 1000);
    }

    #[test]
    fn deletes_are_tombstones() {
        let mut g = ColumnarGraph::v10();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        let e = g.add_edge(a, b, "l", &vec![]).unwrap();
        let cell_key = ColumnarGraph::key_adj(a.0, DIR_OUT, 0);
        let before = g.store.get(&cell_key).unwrap();
        g.remove_edge(e).unwrap();
        // The adjacency cell is untouched; only the tombstone set grows.
        assert_eq!(g.store.get(&cell_key).unwrap(), before);
        assert!(g.deleted_edges.contains(&e.0));
        let ctx = QueryCtx::unbounded();
        assert!(g
            .neighbors(a, Direction::Out, None, &ctx)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn schema_inference_tracks_types() {
        let mut g = ColumnarGraph::v10();
        g.add_vertex("n", &vec![("x".into(), Value::Int(1))])
            .unwrap();
        let key = g.keys.get("x").unwrap();
        assert_eq!(g.schema.get(&key), Some(&2u8));
        // Conflicting type downgrades to "mixed".
        g.add_vertex("n", &vec![("x".into(), Value::Str("s".into()))])
            .unwrap();
        assert_eq!(g.schema.get(&key), Some(&0xFFu8));
    }

    #[test]
    fn bulk_load_writes_each_cell_once() {
        let mut g = ColumnarGraph::v10();
        g.bulk_load(&testkit::chain_dataset(500), &LoadOptions::default())
            .unwrap();
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.vertex_count(&ctx).unwrap(), 500);
        assert_eq!(g.edge_count(&ctx).unwrap(), 499);
        // Non-bulk path agrees.
        let mut g2 = ColumnarGraph::v10();
        g2.bulk_load(
            &testkit::chain_dataset(500),
            &LoadOptions {
                bulk: false,
                index_during_load: false,
            },
        )
        .unwrap();
        assert_eq!(g2.vertex_count(&ctx).unwrap(), 500);
        assert_eq!(g2.edge_count(&ctx).unwrap(), 499);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = ColumnarGraph::v10();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        g.add_edge(a, b, "l", &vec![]).unwrap();
        g.add_edge(a, b, "l", &vec![]).unwrap();
        g.add_edge(a, a, "l", &vec![]).unwrap();
        let ctx = QueryCtx::unbounded();
        assert_eq!(g.vertex_degree(a, Direction::Out, &ctx).unwrap(), 3);
        assert_eq!(g.vertex_degree(a, Direction::Both, &ctx).unwrap(), 4);
        let mut n: Vec<u64> = g
            .neighbors(a, Direction::Out, None, &ctx)
            .unwrap()
            .iter()
            .map(|v| v.0)
            .collect();
        n.sort_unstable();
        assert_eq!(n, vec![a.0, b.0, b.0]);
    }

    #[test]
    fn edge_props_live_on_out_side_only() {
        let mut g = ColumnarGraph::v10();
        let a = g.add_vertex("n", &vec![]).unwrap();
        let b = g.add_vertex("n", &vec![]).unwrap();
        let e = g
            .add_edge(a, b, "l", &vec![("w".into(), Value::Float(1.5))])
            .unwrap();
        assert_eq!(g.edge_property(e, "w").unwrap(), Some(Value::Float(1.5)));
        let in_cell = g
            .store
            .get(&ColumnarGraph::key_adj(b.0, DIR_IN, 0))
            .unwrap();
        let out_cell = g
            .store
            .get(&ColumnarGraph::key_adj(a.0, DIR_OUT, 0))
            .unwrap();
        assert!(in_cell.len() < out_cell.len(), "IN side carries no props");
    }

    #[test]
    fn native_cell_freezes_stable_epochs_under_in_place_writes() {
        use gm_mvcc::SnapshotSource;
        let cell = native_cell(Variant::V10);
        let data = testkit::chain_dataset(3000);
        cell.with_write(&mut |db| {
            db.bulk_load(&data, &LoadOptions::default())?;
            Ok(0)
        })
        .unwrap();
        let ctx = QueryCtx::unbounded();
        let snap = cell.snapshot().unwrap();
        assert_eq!(snap.vertex_count(&ctx).unwrap(), 3000);
        assert_eq!(snap.edge_count(&ctx).unwrap(), 2999);
        // Writes mutate the live engine in place (no copy-on-write); the
        // pinned view keeps answering from its frozen segments.
        cell.with_write(&mut |db| {
            let v = db.add_vertex("n", &vec![])?;
            let a = db.resolve_vertex(0).expect("anchor");
            db.add_edge(v, a, "e", &vec![])?;
            let victim = db.resolve_edge(0).expect("edge 0");
            db.remove_edge(victim)?;
            Ok(3)
        })
        .unwrap();
        assert_eq!(snap.vertex_count(&ctx).unwrap(), 3000);
        assert_eq!(snap.edge_count(&ctx).unwrap(), 2999);
        // A fresh pin observes the whole batch at a strictly newer epoch.
        let snap2 = cell.snapshot().unwrap();
        assert_eq!(snap2.vertex_count(&ctx).unwrap(), 3001);
        assert_eq!(snap2.edge_count(&ctx).unwrap(), 2999);
        assert!(snap2.epoch() > snap.epoch());
    }

    #[test]
    fn clone_shares_closed_segments_and_runs() {
        // The structural-sharing property the native snapshot path relies
        // on: cloning a loaded engine reuses the LSM runs and the closed
        // edge-column segments instead of copying the adjacency data.
        let mut g = ColumnarGraph::v10();
        g.bulk_load(&testkit::chain_dataset(4000), &LoadOptions::default())
            .unwrap();
        let frozen = g.clone();
        // Mutating the original must not disturb the clone.
        let a = g.resolve_vertex(0).unwrap();
        let b = g.resolve_vertex(1).unwrap();
        for _ in 0..200 {
            g.add_edge(a, b, "burst", &vec![]).unwrap();
        }
        let ctx = QueryCtx::unbounded();
        assert_eq!(frozen.edge_count(&ctx).unwrap(), 3999);
        assert_eq!(g.edge_count(&ctx).unwrap(), 4199);
        // 4000 edges at SEGMENT=1024 close at least 3 segments, all shared.
        assert!(frozen.edge_index.closed_segments() >= 3);
        assert!(frozen.store.run_count() >= 1, "bulk load flushed a run");
    }

    #[test]
    fn variants_differ_in_store_tuning() {
        let v05 = ColumnarGraph::v05();
        let v10 = ColumnarGraph::v10();
        assert_ne!(v05.name(), v10.name());
    }
}
