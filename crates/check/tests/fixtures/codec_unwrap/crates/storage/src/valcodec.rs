// Seeded violations: a decode path that panics on truncated input instead
// of returning Corrupt — one unwrap, one unchecked index.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let tag = buf[*pos];
    *pos += 1;
    let bytes: [u8; 8] = buf[*pos..*pos + 8].try_into().unwrap();
    *pos += 8;
    if tag == 1 {
        Some(u64::from_le_bytes(bytes))
    } else {
        None
    }
}

// A waived line must NOT be reported: the bound was checked above.
pub fn peek(buf: &[u8]) -> Option<u8> {
    if buf.is_empty() {
        return None;
    }
    // gm-check: allow-panic(guarded by the is_empty check above)
    Some(buf[0])
}
