// Minimal trait file for the delegation lint's ground truth; the seeded
// violations in this fixture live in the storage codec.
pub trait GraphSnapshot {
    fn name(&self) -> String;
}

pub trait GraphDb: GraphSnapshot {
    fn add_vertex(&mut self) -> u64;
}
