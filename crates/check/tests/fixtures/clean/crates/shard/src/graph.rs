// Clean forwarding impl: the defaulted method is explicitly overridden,
// locks are acquired in the documented order, and the one relaxed atomic
// carries its justification.
pub struct Wrapper {
    inner: Inner,
}

impl GraphSnapshot for Wrapper {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }
}

impl GraphDb for Wrapper {
    // gm-check: allow-default(sync: the wrapped engine is purely in-memory, sync is a no-op)
    fn add_vertex(&mut self) -> u64 {
        // gm-check: relaxed(round-robin placement counter: any interleaving is a valid placement)
        let s = self.spread.fetch_add(1, Ordering::Relaxed);
        // gm-lock: meta
        let meta = self.meta_read();
        // gm-lock: shard
        let mut shard = self.shard_write(s % meta.shards());
        shard.push()
    }
}
