// Clean fixture: every pattern the lints police, written the sanctioned
// way — the checker must report nothing here.
pub trait GraphSnapshot {
    fn name(&self) -> String;
    fn epoch(&self) -> u64 {
        0
    }
}

pub trait GraphDb: GraphSnapshot {
    fn add_vertex(&mut self) -> u64;
    fn sync(&mut self) -> Result<(), ()> {
        Ok(())
    }
}

impl<T: GraphSnapshot + ?Sized> GraphSnapshot for Box<T> {
    crate::forward_graph_snapshot!(target = |s| (**s));
}
