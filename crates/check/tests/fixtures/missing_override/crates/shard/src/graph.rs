// Seeded violation: this forwarding impl overrides `name` (required — the
// compiler would force that anyway) but inherits the defaulted `epoch`,
// so every snapshot it serves reports epoch 0.
pub struct Wrapper {
    inner: Inner,
}

impl GraphSnapshot for Wrapper {
    fn name(&self) -> String {
        self.inner.name()
    }
}

impl GraphDb for Wrapper {
    fn add_vertex(&mut self) -> u64 {
        self.inner.add_vertex()
    }
    fn sync(&mut self) -> Result<(), ()> {
        self.inner.sync()
    }
}
