// Mini trait surface for the delegation fixture: one required method, one
// defaulted method that a forwarding impl can silently drop.
pub trait GraphSnapshot {
    fn name(&self) -> String;
    fn epoch(&self) -> u64 {
        0
    }
}

pub trait GraphDb: GraphSnapshot {
    fn add_vertex(&mut self) -> u64;
    fn sync(&mut self) -> Result<(), ()> {
        Ok(())
    }
}
