// Minimal trait file so the delegation lint has its ground truth; no
// defaulted methods, no impls — the only seeded violation in this fixture
// is the lock-order inversion in crates/shard.
pub trait GraphSnapshot {
    fn name(&self) -> String;
}

pub trait GraphDb: GraphSnapshot {
    fn add_vertex(&mut self) -> u64;
}
