// Seeded violation: the meta lock is acquired while a shard lock is still
// held — the inverse of the workspace order (meta before shards).
pub fn remove_vertex(g: &Graph) {
    // gm-lock: shard
    let mut shard = g.shard_write(0);
    // gm-lock: meta
    let mut meta = g.meta_write();
    meta.forget(&mut shard);
}

// Correctly ordered sibling, so the fixture also proves the lint does not
// flag the documented order.
pub fn add_vertex(g: &Graph) {
    // gm-lock: meta
    let meta = g.meta_read();
    // gm-lock: shard
    let mut shard = g.shard_write(meta.place());
    shard.push();
}
