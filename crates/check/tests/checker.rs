//! End-to-end checker tests: each seeded-violation fixture must produce
//! its lint's diagnostic (and a non-zero exit from the `gm-check` binary),
//! the clean fixture and the real workspace must produce none.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn diags_for(name: &str) -> Vec<gm_check::Diag> {
    let files = gm_check::collect_workspace(&fixture(name)).expect("read fixture");
    gm_check::run(&files)
}

/// Run the real binary on a fixture and return its exit code.
fn binary_exit(root: &PathBuf) -> i32 {
    let out = Command::new(env!("CARGO_BIN_EXE_gm-check"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("run gm-check");
    out.status.code().expect("exit code")
}

#[test]
fn missing_override_is_flagged() {
    let diags = diags_for("missing_override");
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "delegation" && d.msg.contains("`epoch`")),
        "expected a delegation finding for the dropped epoch override, got: {diags:#?}"
    );
    // `sync` is overridden in the fixture, so only `epoch` may be reported.
    assert!(
        !diags.iter().any(|d| d.msg.contains("`sync`")),
        "sync IS overridden and must not be flagged: {diags:#?}"
    );
    assert_eq!(binary_exit(&fixture("missing_override")), 1);
}

#[test]
fn lock_inversion_is_flagged_and_correct_order_is_not() {
    let diags = diags_for("lock_inversion");
    let lock: Vec<_> = diags.iter().filter(|d| d.lint == "lock-order").collect();
    assert_eq!(
        lock.len(),
        1,
        "exactly the seeded inversion (not the correctly ordered sibling): {diags:#?}"
    );
    assert!(lock[0].msg.contains("`meta`") && lock[0].msg.contains("`shard`"));
    assert_eq!(binary_exit(&fixture("lock_inversion")), 1);
}

#[test]
fn codec_unwrap_is_flagged_and_waiver_respected() {
    let diags = diags_for("codec_unwrap");
    let panics: Vec<_> = diags.iter().filter(|d| d.lint == "panic-freedom").collect();
    assert!(
        panics.iter().any(|d| d.msg.contains("unwrap")),
        "the decode-path unwrap must be reported: {diags:#?}"
    );
    assert!(
        panics.iter().any(|d| d.msg.contains("indexing")),
        "the unchecked index must be reported: {diags:#?}"
    );
    // The waived `buf[0]` behind the is_empty guard is line 21; it must
    // not appear among the findings.
    assert!(
        !panics.iter().any(|d| d.line == 21),
        "the allow-panic waiver must suppress the guarded index: {diags:#?}"
    );
    assert_eq!(binary_exit(&fixture("codec_unwrap")), 1);
}

#[test]
fn clean_fixture_has_no_findings() {
    let diags = diags_for("clean");
    assert!(diags.is_empty(), "clean fixture must pass: {diags:#?}");
    assert_eq!(binary_exit(&fixture("clean")), 0);
}

/// The acceptance bar for the whole PR: the real workspace is clean under
/// all four lints, and the lints are not vacuous — the delegation pass
/// must actually see the workspace's defaulted trait surface.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = gm_check::collect_workspace(&root).expect("read workspace");
    assert!(
        files.len() > 50,
        "workspace walk must see the crates, got {} files",
        files.len()
    );
    let api = files
        .iter()
        .find(|f| f.path.ends_with("crates/model/src/api.rs"))
        .expect("api.rs in the walk");
    for needle in ["fn epoch", "fn degree_scan", "fn sync"] {
        assert!(
            api.lines.iter().any(|l| l.code.contains(needle)),
            "trait surface parse lost `{needle}`"
        );
    }
    let diags = gm_check::run(&files);
    assert!(diags.is_empty(), "workspace must be clean: {diags:#?}");
}
