//! Atomic-ordering audit.
//!
//! `Ordering::Relaxed` is correct for *counters nobody synchronizes on* —
//! metrics, round-robin spread counters, cooperative-cancellation flags —
//! and subtly wrong for anything that publishes data another thread then
//! reads without a lock. The workspace keeps the distinction auditable:
//!
//! * `crates/obs` (the metrics crate) and `crates/vendor` (offline
//!   stand-ins) are allowlisted wholesale — metrics are the canonical
//!   relaxed use, and vendor code follows upstream idiom;
//! * everywhere else, each `Ordering::Relaxed` must carry a justification
//!   marker on the same line or the line directly above:
//!   `// gm-check: relaxed(reason)`.
//!
//! An unmarked relaxed load/store is a diagnostic: either the ordering is
//! wrong (use `Acquire`/`Release`/`SeqCst`) or the justification belongs
//! in the source where the next reader can see it.

use crate::{Diag, SourceFile};

const LINT: &str = "atomic-ordering";

/// Path fragments exempt from the marker requirement.
const ALLOWLIST: &[&str] = &["crates/obs/", "crates/vendor/"];

pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut diags = Vec::new();
    for f in files {
        if ALLOWLIST.iter().any(|a| f.path.contains(a)) {
            continue;
        }
        for (idx, l) in f.lines.iter().enumerate() {
            if l.in_test || !l.code.contains("Ordering::Relaxed") {
                continue;
            }
            // `use std::sync::atomic::Ordering::Relaxed` style imports are
            // not acquisitions; the use sites they enable still match.
            if l.code.trim_start().starts_with("use ") {
                continue;
            }
            if !marked(&f.lines, idx) {
                diags.push(Diag {
                    file: f.path.clone(),
                    line: l.no,
                    lint: LINT,
                    msg: "Ordering::Relaxed outside the metrics allowlist needs a \
                          justification: `// gm-check: relaxed(why no ordering is needed)` \
                          on this line or the line above"
                        .into(),
                });
            }
        }
    }
    diags
}

/// A marker covers its statement: same line, the line above, or — for a
/// rustfmt-wrapped statement — directly above the statement's first line
/// (walk up through continuation lines, which contain no `;`/`{`/`}`).
fn marked(lines: &[crate::lexer::CleanLine], idx: usize) -> bool {
    if has_marker(lines[idx].comment.as_deref()) {
        return true;
    }
    let mut j = idx;
    while j > 0 && idx - j < 4 {
        let prev = &lines[j - 1];
        if has_marker(prev.comment.as_deref()) {
            return true;
        }
        let t = prev.code.trim();
        if t.is_empty() || t.contains(';') || t.contains('{') || t.contains('}') {
            return false;
        }
        j -= 1;
    }
    false
}

fn has_marker(comment: Option<&str>) -> bool {
    comment.is_some_and(|c| {
        c.strip_prefix("gm-check: relaxed(")
            .is_some_and(|r| !r.trim_end_matches(')').trim().is_empty())
    })
}
