//! # gm-check — workspace-aware static analysis for graphmark
//!
//! A dependency-free checker for the invariants rustc cannot see:
//!
//! * [`delegation`] — every forwarding impl of `GraphSnapshot`/`GraphDb`
//!   in the layering crates overrides each **defaulted** trait method (or
//!   carries an explicit waiver); this is the lint that would have caught
//!   `SharedWriter` silently reporting epoch 0 for every snapshot.
//! * [`lockorder`] — `// gm-lock: <rank>` markers on lock acquisitions
//!   must follow the workspace hierarchy `driver < meta < shard <
//!   cell-writer < cell-published < leaf` (the debug-mode runtime detector
//!   in `gm_model::lockorder` checks the same order with live stacks).
//! * [`panics`] — no `unwrap`/`expect`/indexing in the untrusted-byte
//!   decode paths (wire + storage codecs).
//! * [`atomics`] — every `Ordering::Relaxed` outside the metrics crate
//!   carries a written justification.
//! * [`spans`] — no discarded `phase::span` guards (`let _ = …` or a bare
//!   statement drops the RAII guard immediately, recording a ~0ns span
//!   that silently falsifies every phase breakdown).
//!
//! The checker parses the workspace's own sources with a lightweight
//! line lexer ([`lexer`]) — no `syn`, no proc-macro machinery — so it
//! builds in the offline vendored workspace and runs in CI before clippy.

pub mod atomics;
pub mod delegation;
pub mod lexer;
pub mod lockorder;
pub mod panics;
pub mod spans;

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, printed as `file:line: [lint] message`.
#[derive(Debug, Clone)]
pub struct Diag {
    pub file: String,
    pub line: usize,
    pub lint: &'static str,
    pub msg: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.msg
        )
    }
}

/// One source file, pre-lexed. `path` is workspace-relative with `/`
/// separators — the lints match on it textually.
pub struct SourceFile {
    pub path: String,
    pub lines: Vec<lexer::CleanLine>,
}

impl SourceFile {
    pub fn new(path: impl Into<String>, src: &str) -> SourceFile {
        SourceFile {
            path: path.into(),
            lines: lexer::clean(src),
        }
    }
}

/// Run every lint over a pre-collected file set.
pub fn run(files: &[SourceFile]) -> Vec<Diag> {
    let mut diags = Vec::new();
    diags.extend(delegation::check(files));
    diags.extend(lockorder::check(files));
    diags.extend(panics::check(files));
    diags.extend(atomics::check(files));
    diags.extend(spans::check(files));
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Collect the `.rs` sources of a workspace rooted at `root`: every
/// `crates/*/src/**` tree plus the root package's `src/`, excluding
/// `crates/vendor` (offline stand-ins, checked only by the atomics
/// allowlist) and this checker's own fixtures.
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut src_dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let dir = entry?.path();
            if dir.is_dir() && dir.file_name().is_some_and(|n| n != "vendor") {
                src_dirs.push(dir.join("src"));
            }
        }
    }
    for dir in src_dirs {
        collect_rs(root, &dir, &mut files)?;
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&p)?;
            out.push(SourceFile::new(rel, &src));
        }
    }
    Ok(())
}
