//! Static lock-order lint.
//!
//! The workspace's lock hierarchy (enforced at runtime, in debug builds, by
//! `gm_model::lockorder`) is:
//!
//! ```text
//! driver < meta < shard (ascending index) < cell-writer < cell-published < leaf
//! ```
//!
//! Every blocking acquisition in the concurrency crates is annotated with a
//! marker comment on its own line directly above the acquisition:
//!
//! ```text
//! // gm-lock: meta
//! let meta = self.meta_write()?;
//! ```
//!
//! This lint re-checks the hierarchy *textually*: within one function, a
//! marker that acquires a rank **lower** than a rank still held (i.e. a
//! marker pushed earlier in an enclosing or same scope that has not been
//! closed by a `}`) is an ordering violation — the acquisition pattern that
//! can deadlock against a thread acquiring in the documented order.
//!
//! Scope model: a marker is "held" from its line until the brace depth
//! drops below the depth it was declared at. A `transient` suffix
//! (`// gm-lock: meta transient`) checks the acquisition against the
//! current stack but does not push it — for guards dropped within the
//! same statement or explicitly before the next acquisition.
//!
//! The lint is deliberately one-sided: it cannot see unannotated
//! acquisitions (the debug-mode runtime detector covers those), and equal
//! ranks are allowed (two `shard` acquisitions in one scope are the
//! ascending-index `wlock_all` pattern, whose order the runtime detector
//! checks with real indices).

use crate::{Diag, SourceFile};

const LINT: &str = "lock-order";

/// Rank names in ascending acquisition order.
const RANKS: &[&str] = &[
    "driver",
    "meta",
    "shard",
    "cell-writer",
    "cell-published",
    "leaf",
];

fn rank_value(name: &str) -> Option<usize> {
    RANKS.iter().position(|r| *r == name)
}

struct HeldMark {
    rank: usize,
    name: String,
    line: usize,
    depth: usize,
}

pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut diags = Vec::new();
    for f in files {
        let mut held: Vec<HeldMark> = Vec::new();
        for l in &f.lines {
            // Close out marks whose scope ended before this line.
            held.retain(|m| l.depth >= m.depth);
            if l.in_test {
                continue;
            }
            let Some(c) = &l.comment else { continue };
            let Some(rest) = c.strip_prefix("gm-lock:") else {
                continue;
            };
            let mut parts = rest.split_whitespace();
            let Some(name) = parts.next() else {
                diags.push(Diag {
                    file: f.path.clone(),
                    line: l.no,
                    lint: LINT,
                    msg: "empty gm-lock marker; write `// gm-lock: <rank>[ transient]`".into(),
                });
                continue;
            };
            let transient = matches!(parts.next(), Some("transient"));
            let Some(rank) = rank_value(name) else {
                diags.push(Diag {
                    file: f.path.clone(),
                    line: l.no,
                    lint: LINT,
                    msg: format!(
                        "unknown lock rank `{name}`; known ranks, in acquisition order: {}",
                        RANKS.join(" < ")
                    ),
                });
                continue;
            };
            if let Some(top) = held.iter().max_by_key(|m| m.rank) {
                if rank < top.rank {
                    diags.push(Diag {
                        file: f.path.clone(),
                        line: l.no,
                        lint: LINT,
                        msg: format!(
                            "acquiring `{name}` while `{}` (line {}) is still held inverts \
                             the lock order ({}); release the higher rank first or restructure",
                            top.name,
                            top.line,
                            RANKS.join(" < ")
                        ),
                    });
                }
            }
            if !transient {
                held.push(HeldMark {
                    rank,
                    name: name.to_string(),
                    line: l.no,
                    depth: l.depth,
                });
            }
        }
    }
    diags
}
