//! Span-discipline audit.
//!
//! A [`gm_obs::phase`] span measures the interval its RAII guard is live:
//! `let _exec = phase::span(Phase::EngineExec)` records until the guard
//! drops at end of scope. Discarding the guard — `let _ = phase::span(…)`
//! (the `_` binder drops immediately) or a bare `phase::span(…);`
//! statement — records a span of ~zero nanoseconds and silently deletes
//! the phase from every latency breakdown built on it: the sweep columns,
//! the trace flight recorder's self-times, the fig9 stitching check.
//! That compiles clean and passes every test with a plausible-looking
//! zero, which is exactly the kind of bug a lint has to catch.
//!
//! Every `phase::span`/`phase::span_always` call must bind its guard to a
//! *named* variable (a `_`-prefixed name like `_span` keeps the guard
//! live; the bare `_` pattern does not), or carry an explicit waiver on
//! the same line or the line above: `// gm-check: allow-dropped-span(reason)`.

use crate::{Diag, SourceFile};

const LINT: &str = "dropped-span";

pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut diags = Vec::new();
    for f in files {
        for (idx, l) in f.lines.iter().enumerate() {
            if l.in_test || !l.code.contains("span") {
                continue;
            }
            let t = l.code.trim();
            let Some(kind) = dropped_guard(t) else {
                continue;
            };
            if !waived(&f.lines, idx) {
                diags.push(Diag {
                    file: f.path.clone(),
                    line: l.no,
                    lint: LINT,
                    msg: format!(
                        "{kind} drops the span guard immediately, recording ~0ns — bind it \
                         to a named variable (`let _span = …`) for the scope being measured, \
                         or waive with `// gm-check: allow-dropped-span(reason)`"
                    ),
                });
            }
        }
    }
    diags
}

/// Is this line a span call whose guard is discarded? Returns a short
/// description of the discarding form, or `None` for kept guards and
/// non-span lines.
fn dropped_guard(t: &str) -> Option<&'static str> {
    // `let _ = phase::span(…)`: the bare `_` pattern drops the value at
    // the end of the *statement*, not the scope. `let _span = …` binds.
    if let Some(rest) = t.strip_prefix("let _") {
        let rest = rest.trim_start();
        if rest.starts_with('=') && span_call_at_start(rest[1..].trim_start()) {
            return Some("`let _ = …`");
        }
        return None;
    }
    // `phase::span(…);` in statement position: the temporary guard drops
    // at the trailing semicolon. A path prefix (`gm_obs::phase::span`) is
    // still statement position; anything else before the call (`return`,
    // an assignment, a method receiver) means the guard goes somewhere.
    if t.ends_with(';') && span_call_at_start(t) {
        return Some("a bare statement");
    }
    None
}

/// Does `t` begin with a (possibly path-qualified) `phase::span` or
/// `span_always` call?
fn span_call_at_start(t: &str) -> bool {
    let Some(paren) = t.find('(') else {
        return false;
    };
    let head = &t[..paren];
    (head.ends_with("::span") || head.ends_with("span_always") || head == "span")
        && head
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == ':')
}

/// A waiver covers its statement: same line or directly above (walking up
/// through rustfmt continuation lines, as the atomics lint does).
fn waived(lines: &[crate::lexer::CleanLine], idx: usize) -> bool {
    if has_waiver(lines[idx].comment.as_deref()) {
        return true;
    }
    let mut j = idx;
    while j > 0 && idx - j < 4 {
        let prev = &lines[j - 1];
        if has_waiver(prev.comment.as_deref()) {
            return true;
        }
        let t = prev.code.trim();
        if t.is_empty() || t.contains(';') || t.contains('{') || t.contains('}') {
            return false;
        }
        j -= 1;
    }
    false
}

fn has_waiver(comment: Option<&str>) -> bool {
    comment.is_some_and(|c| {
        c.strip_prefix("gm-check: allow-dropped-span(")
            .is_some_and(|r| !r.trim_end_matches(')').trim().is_empty())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diag> {
        check(&[SourceFile::new("crates/x/src/lib.rs", src)])
    }

    #[test]
    fn named_guards_pass() {
        let src = "fn f() {\n    let _exec = phase::span(Phase::EngineExec);\n    \
                   let _g = phase::span_always(Phase::LockWait);\n}\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn underscore_binder_is_flagged() {
        let src = "fn f() {\n    let _ = phase::span(Phase::EngineExec);\n}\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].lint, "dropped-span");
        assert!(d[0].msg.contains("let _ ="));
    }

    #[test]
    fn bare_statement_is_flagged() {
        for call in [
            "phase::span(Phase::EngineExec);",
            "gm_obs::phase::span(Phase::WireIo);",
            "span_always(Phase::LockWait);",
        ] {
            let d = diags(&format!("fn f() {{\n    {call}\n}}\n"));
            assert_eq!(d.len(), 1, "{call} should be flagged");
            assert!(d[0].msg.contains("bare statement"));
        }
    }

    #[test]
    fn expression_positions_pass() {
        // Tail expressions, returns and bindings hand the guard to a scope
        // (or caller) that keeps it live — not this lint's business.
        let src = "fn f() -> SpanGuard {\n    span_always(phase)\n}\n\
                   fn g() {\n    let guard = phase::span(Phase::WireIo);\n    \
                   return phase::span(Phase::WireIo);\n}\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn waiver_suppresses() {
        let src = "fn f() {\n    \
                   // gm-check: allow-dropped-span(probe: only the call count matters)\n    \
                   let _ = phase::span(Phase::EngineExec);\n    \
                   phase::span(Phase::WireIo); // gm-check: allow-dropped-span(same)\n}\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn empty_waiver_reason_does_not_count() {
        let src = "fn f() {\n    // gm-check: allow-dropped-span()\n    \
                   let _ = phase::span(Phase::EngineExec);\n}\n";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   let _ = phase::span(Phase::EngineExec);\n    }\n}\n";
        assert!(diags(src).is_empty());
    }
}
