//! Delegation-completeness lint.
//!
//! The workspace's layering crates (`gm-net`, `gm-shard`, `gm-mvcc`, plus
//! the `Box<T>` blanket impls in `gm-model`) wrap one `GraphSnapshot` /
//! `GraphDb` in another. Rustc forces them to implement every *required*
//! method — but a **defaulted** method silently falls through to the trait
//! default instead of forwarding, which is exactly how `SharedWriter`
//! historically dropped `epoch` (every snapshot read as epoch 0) and the
//! bulk-scan overrides (per-vertex lock reacquisition instead of one locked
//! pass).
//!
//! This lint closes that hole: in the layering crates, every impl of the
//! two traits must, for **each defaulted trait method**, either
//!
//! * override the method,
//! * expand one of the `forward_graph_snapshot!` / `forward_graph_db!`
//!   macros (which forward the full surface by construction), or
//! * carry an explicit waiver comment inside the impl block:
//!   `// gm-check: allow-default(method: reason)` — the reason is part of
//!   the syntax; an unexplained waiver is a diagnostic of its own.
//!
//! The trait definitions are parsed from the file that declares
//! `pub trait GraphSnapshot` (in the real workspace, `gm-model`'s
//! `api.rs`), so a new defaulted method extends the lint automatically.

use crate::lexer::CleanLine;
use crate::{Diag, SourceFile};

/// Crates whose impls are forwarding layers (terminal engines are exempt:
/// their defaults are the intended implementation).
const LAYER_CRATES: &[&str] = &[
    "crates/model/",
    "crates/net/",
    "crates/shard/",
    "crates/mvcc/",
];

const LINT: &str = "delegation";

struct TraitSurface {
    name: &'static str,
    /// Defaulted methods — the ones an impl can silently *not* forward.
    defaulted: Vec<String>,
    forward_macro: &'static str,
}

/// Extract the defaulted-method lists for both traits from the trait
/// definition file. Returns `None` (plus a diagnostic) if no file defines
/// the traits — the lint cannot run without its ground truth.
fn trait_surfaces(files: &[SourceFile]) -> Result<Vec<TraitSurface>, Diag> {
    for f in files {
        if f.lines
            .iter()
            .any(|l| l.code.contains("trait GraphSnapshot"))
        {
            return Ok(vec![
                TraitSurface {
                    name: "GraphSnapshot",
                    defaulted: defaulted_methods(&f.lines, "GraphSnapshot"),
                    forward_macro: "forward_graph_snapshot!",
                },
                TraitSurface {
                    name: "GraphDb",
                    defaulted: defaulted_methods(&f.lines, "GraphDb"),
                    forward_macro: "forward_graph_db!",
                },
            ]);
        }
    }
    Err(Diag {
        file: "<workspace>".into(),
        line: 0,
        lint: LINT,
        msg: "no file defines `trait GraphSnapshot`; cannot check delegation completeness".into(),
    })
}

/// Methods of `trait_name` that carry a default body. A method is
/// defaulted when its signature ends in `{` rather than `;` (scanning at
/// paren-depth 0 from the `fn` line).
fn defaulted_methods(lines: &[CleanLine], trait_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let Some(open) = lines
        .iter()
        .position(|l| l.code.contains("trait ") && l.code.contains(trait_name) && !l.in_test)
    else {
        return out;
    };
    let body_depth = lines[open].depth_after; // depth inside the trait block
    let mut i = open + 1;
    while i < lines.len() && lines[i].depth >= body_depth {
        let l = &lines[i];
        if l.depth == body_depth {
            if let Some(name) = fn_name(&l.code) {
                // Scan forward from the `fn` keyword for the first `{` or
                // `;` outside parens/brackets — `{` means a default body.
                let mut paren = 0i32;
                'sig: for sl in &lines[i..] {
                    let start = if sl.no == l.no {
                        sl.code.find("fn ").unwrap_or(0)
                    } else {
                        0
                    };
                    for c in sl.code[start..].chars() {
                        match c {
                            '(' | '[' | '<' => paren += 1,
                            ')' | ']' | '>' => paren -= 1,
                            '{' if paren <= 0 => {
                                out.push(name.clone());
                                break 'sig;
                            }
                            ';' if paren <= 0 => break 'sig,
                            _ => {}
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// The method name of a `fn name(` declaration on this line, if any.
fn fn_name(code: &str) -> Option<String> {
    let at = code.find("fn ")?;
    // Reject `pub fngarbage` style false hits: require word boundary before.
    if at > 0 {
        let prev = code.as_bytes()[at - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return None;
        }
    }
    let rest = &code[at + 3..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// One `impl Trait for Type` block found in a layering crate.
struct ImplBlock {
    line: usize,
    type_name: String,
    /// Methods defined inside the block.
    methods: Vec<String>,
    /// `allow-default(method: reason)` waivers inside the block.
    waived: Vec<(String, usize, bool)>, // (method, line, has_reason)
    uses_forward_macro: bool,
}

fn find_impls(file: &SourceFile, trait_name: &str, forward_macro: &str) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    let needle = format!(" {trait_name} for ");
    let mut i = 0;
    while i < file.lines.len() {
        let l = &file.lines[i];
        let is_open = !l.in_test
            && l.code.trim_start().starts_with("impl")
            && l.code.contains(&needle)
            && l.code.contains('{');
        if !is_open {
            i += 1;
            continue;
        }
        let type_name = l
            .code
            .split(&needle)
            .nth(1)
            .unwrap_or("")
            .trim()
            .trim_end_matches('{')
            .trim()
            .to_string();
        let body_depth = l.depth_after;
        let mut blk = ImplBlock {
            line: l.no,
            type_name,
            methods: Vec::new(),
            waived: Vec::new(),
            uses_forward_macro: false,
        };
        let mut j = i + 1;
        while j < file.lines.len() && file.lines[j].depth >= body_depth {
            let bl = &file.lines[j];
            if bl.depth == body_depth {
                if let Some(name) = fn_name(&bl.code) {
                    blk.methods.push(name);
                }
                if bl.code.contains(forward_macro) {
                    blk.uses_forward_macro = true;
                }
            }
            if let Some(c) = &bl.comment {
                if let Some(args) = c.strip_prefix("gm-check: allow-default(") {
                    let args = args.trim_end_matches(')');
                    let (method, reason) = match args.split_once(':') {
                        Some((m, r)) => (m.trim().to_string(), !r.trim().is_empty()),
                        None => (args.trim().to_string(), false),
                    };
                    blk.waived.push((method, bl.no, reason));
                }
            }
            j += 1;
        }
        out.push(blk);
        i = j;
    }
    out
}

/// Run the lint over all files.
pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let surfaces = match trait_surfaces(files) {
        Ok(s) => s,
        Err(d) => return vec![d],
    };
    let mut diags = Vec::new();
    for f in files {
        if !LAYER_CRATES.iter().any(|c| f.path.contains(c)) {
            continue;
        }
        for surface in &surfaces {
            for blk in find_impls(f, surface.name, surface.forward_macro) {
                for (method, line, has_reason) in &blk.waived {
                    if !has_reason {
                        diags.push(Diag {
                            file: f.path.clone(),
                            line: *line,
                            lint: LINT,
                            msg: format!(
                                "waiver for `{method}` has no reason; write \
                                 `// gm-check: allow-default({method}: why the default is correct)`"
                            ),
                        });
                    }
                }
                if blk.uses_forward_macro {
                    continue; // the macro forwards the full surface
                }
                for m in &surface.defaulted {
                    let overridden = blk.methods.iter().any(|x| x == m);
                    let waived = blk.waived.iter().any(|(x, _, _)| x == m);
                    if !overridden && !waived {
                        diags.push(Diag {
                            file: f.path.clone(),
                            line: blk.line,
                            lint: LINT,
                            msg: format!(
                                "impl {} for {} inherits the default `{m}` instead of \
                                 forwarding it; override it, use {}, or waive with \
                                 `// gm-check: allow-default({m}: reason)`",
                                surface.name, blk.type_name, surface.forward_macro
                            ),
                        });
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth against the real trait file: the defaulted surface the
    /// lint polices is exactly the set of methods with default bodies in
    /// `gm-model`'s api.rs. If this fails after editing the trait, the
    /// signature scanner needs to learn the new shape.
    #[test]
    fn real_api_defaulted_surface() {
        let api =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../model/src/api.rs"))
                .expect("read gm-model api.rs");
        let lines = crate::lexer::clean(&api);
        assert_eq!(
            defaulted_methods(&lines, "GraphSnapshot"),
            vec!["epoch", "degree_scan", "distinct_neighbor_scan"],
            "GraphSnapshot's defaulted methods"
        );
        assert_eq!(
            defaulted_methods(&lines, "GraphDb"),
            vec!["sync"],
            "GraphDb's defaulted methods"
        );
    }

    #[test]
    fn fn_name_extraction() {
        assert_eq!(
            fn_name("    fn epoch(&self) -> u64 {"),
            Some("epoch".into())
        );
        assert_eq!(
            fn_name("    pub fn take_n<const N: usize>("),
            Some("take_n".into())
        );
        assert_eq!(fn_name("let fn_name = 3;"), None);
        assert_eq!(fn_name("call(WriteFn)"), None);
    }
}
