//! Panic-freedom audit for the decode paths.
//!
//! The wire codec (`gm-net`) and the storage value codec decode **untrusted
//! bytes**: a malformed frame or a corrupt record must surface as
//! `GdbError::Corrupt`, never as a panic that takes down the server thread
//! (or poisons an engine lock under it). This lint forbids the panicking
//! constructs in those files' non-test code:
//!
//! * `.unwrap()` / `.expect(` on `Option`/`Result`,
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`,
//! * direct slice/array indexing (`buf[i]`, `buf[a..b]`), which panics on
//!   out-of-range — `get()`/`get_mut()` return the checkable `Option`.
//!
//! A construct that is provably safe (the index was bounds-checked on the
//! line above) can be waived with `// gm-check: allow-panic(reason)` on the
//! same line or the line directly above.

use crate::{Diag, SourceFile};

const LINT: &str = "panic-freedom";

/// Decode-path files under audit (suffix match against the repo-relative
/// path).
pub const AUDITED: &[&str] = &[
    "crates/net/src/wire.rs",
    "crates/net/src/proto.rs",
    "crates/net/src/fleet.rs",
    "crates/storage/src/valcodec.rs",
    "crates/storage/src/codec.rs",
];

const CALLS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Keywords that can directly precede a `[` that is *not* indexing
/// (`let [a, b] = …`, `for x in arr`, `&'a [u8]` handled separately).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "dyn", "move", "as", "where",
];

/// Is the `[` at byte offset `i` an indexing bracket? True when the text
/// before it ends an expression: an identifier (that is not a keyword and
/// not a `'lifetime`), or `)`, `]`, `?`.
fn is_index_bracket(code: &str, i: usize) -> bool {
    let before = code[..i].trim_end();
    let tok_start = before
        .rfind(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .map_or(0, |p| p + 1);
    let tok = &before[tok_start..];
    if tok.is_empty() {
        return matches!(before.chars().last(), Some(')') | Some(']') | Some('?'));
    }
    // `&'a [u8]` — a lifetime, i.e. a slice type, not an indexing site.
    if before[..tok_start].ends_with('\'') {
        return false;
    }
    !NON_INDEX_KEYWORDS.contains(&tok)
}

pub fn check(files: &[SourceFile]) -> Vec<Diag> {
    let mut diags = Vec::new();
    for f in files {
        if !AUDITED.iter().any(|a| f.path.ends_with(a)) {
            continue;
        }
        for (idx, l) in f.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            let waived = has_waiver(l.comment.as_deref())
                || (idx > 0 && has_waiver(f.lines[idx - 1].comment.as_deref()));
            if waived {
                continue;
            }
            for call in CALLS {
                if l.code.contains(call) {
                    diags.push(Diag {
                        file: f.path.clone(),
                        line: l.no,
                        lint: LINT,
                        msg: format!(
                            "`{}` in a decode path can panic on untrusted input; return \
                             GdbError::Corrupt instead, or waive a proven-safe use with \
                             `// gm-check: allow-panic(reason)`",
                            call.trim_end_matches('(')
                        ),
                    });
                }
            }
            // Indexing: `expr[` where expr ends in an identifier/call.
            let mut at = 0;
            while let Some(rel) = l.code[at..].find('[') {
                let i = at + rel;
                // `#[attr]` and slice-pattern/array-literal brackets have
                // no expression before them.
                if !l.code[..i].trim_end().ends_with('#') && is_index_bracket(&l.code, i) {
                    diags.push(Diag {
                        file: f.path.clone(),
                        line: l.no,
                        lint: LINT,
                        msg: "slice indexing in a decode path panics on out-of-range; \
                              use `.get()` or waive a bounds-checked use with \
                              `// gm-check: allow-panic(reason)`"
                            .into(),
                    });
                    break; // one diagnostic per line is enough
                }
                at = i + 1;
            }
        }
    }
    diags
}

fn has_waiver(comment: Option<&str>) -> bool {
    comment.is_some_and(|c| {
        c.strip_prefix("gm-check: allow-panic(")
            .is_some_and(|r| !r.trim_end_matches(')').trim().is_empty())
    })
}
