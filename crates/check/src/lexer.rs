//! A line-oriented lexical pass over one Rust source file.
//!
//! The lints in this crate are textual by design — no `syn`, no dependency
//! on nightly internals — but raw text matching would trip over patterns
//! inside string literals and comments (`"never .unwrap() here"`), so every
//! lint consumes [`CleanLine`]s instead of raw lines:
//!
//! * `code` is the line with comment text removed and the *contents* of
//!   string/char literals blanked (the quotes survive, so offsets and
//!   syntactic shape are preserved);
//! * `comment` is the body of a plain `//` line comment, if any (doc
//!   comments are deliberately **not** reported here — `// gm-check:` and
//!   `// gm-lock:` waivers must be plain comments, not rustdoc);
//! * `depth` is the brace-nesting depth at the **start** of the line, and
//!   `depth_after` at its end — the scope model the lock-order lint uses;
//! * `in_test` marks lines inside a `#[cfg(test)]`-gated item, which every
//!   lint skips (tests unwrap freely, and deliberately provoke the runtime
//!   deadlock detector).
//!
//! The scanner understands `//` and `/* */` comments (nested, as Rust's
//! are), ordinary string literals with escapes, raw strings up to a few `#`
//! levels, char literals, and the lifetime-vs-char-literal ambiguity
//! (`'a>` vs `'a'`).

/// One source line after lexical cleaning. See the module docs.
pub struct CleanLine {
    /// 1-based line number.
    pub no: usize,
    /// Code text: comments stripped, literal contents blanked.
    pub code: String,
    /// Body of a plain `//` comment on this line (trimmed), if present.
    pub comment: Option<String>,
    /// Brace depth at the start of the line.
    pub depth: usize,
    /// Brace depth after the line's last token.
    pub depth_after: usize,
    /// Inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Scanner state that has to survive line breaks.
enum Mode {
    Code,
    /// Inside `/* */`, with the current nesting level.
    Block(usize),
    /// Inside a normal `"…"` string.
    Str,
    /// Inside a raw string with `n` trailing hashes.
    RawStr(usize),
}

/// Clean one file into per-line lexical facts.
pub fn clean(src: &str) -> Vec<CleanLine> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    let mut depth = 0usize;
    // `#[cfg(test)]` handling: after seeing the attribute we wait for the
    // `{` that opens the gated item and record the depth it opened at; all
    // lines until that brace closes are test code.
    let mut pending_test_attr = false;
    let mut test_depth: Option<usize> = None;

    for (idx, raw) in src.lines().enumerate() {
        let start_depth = depth;
        let started_in_test = test_depth.is_some();
        // Accumulate code as bytes — source lines may contain multi-byte
        // UTF-8 (string contents are blanked, but `'✓'`-style char
        // literals and identifiers must not break byte-wise scanning.)
        let mut code: Vec<u8> = Vec::with_capacity(raw.len());
        let mut comment: Option<String> = None;
        let bytes = raw.as_bytes();
        let mut i = 0usize;

        while i < bytes.len() {
            match mode {
                Mode::Block(ref mut lvl) => {
                    if bytes[i..].starts_with(b"/*") {
                        *lvl += 1;
                        i += 2;
                    } else if bytes[i..].starts_with(b"*/") {
                        *lvl -= 1;
                        if *lvl == 0 {
                            mode = Mode::Code;
                        }
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                Mode::Str => match bytes[i] {
                    b'\\' => i += 2, // escape: skip the escaped byte too
                    b'"' => {
                        code.push(b'"');
                        mode = Mode::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                Mode::RawStr(hashes) => {
                    let closes = bytes[i] == b'"'
                        && bytes.len() >= i + 1 + hashes
                        && bytes[i + 1..i + 1 + hashes].iter().all(|&b| b == b'#');
                    if closes {
                        code.push(b'"');
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    let rest = &bytes[i..];
                    if rest.starts_with(b"//") {
                        // Plain line comment → capture body; doc comments
                        // (`///`, `//!`) are documentation, not waivers.
                        if !rest.starts_with(b"///") && !rest.starts_with(b"//!") {
                            comment = Some(String::from_utf8_lossy(&rest[2..]).trim().to_string());
                        }
                        break;
                    } else if rest.starts_with(b"/*") {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if bytes[i] == b'"' {
                        code.push(b'"');
                        mode = Mode::Str;
                        i += 1;
                    } else if bytes[i] == b'r' && {
                        let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                        bytes.get(i + 1 + hashes) == Some(&b'"')
                    } {
                        let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                        code.push(b'"');
                        mode = Mode::RawStr(hashes);
                        i += 2 + hashes;
                    } else if bytes[i] == b'\'' {
                        // Char literal vs lifetime. `'\…'`, `'x'` or a
                        // multi-byte `'✓'` is a char (one scalar, then the
                        // closing quote); `'a>`/`'static`/`<'a, 'b>` are
                        // lifetimes — their next byte is never a closing
                        // quote one scalar later.
                        if bytes.get(i + 1) == Some(&b'\\') {
                            // Escaped char literal: scan to the closing quote.
                            code.push(b'\'');
                            code.push(b'\'');
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != b'\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else {
                            let scalar_len = match bytes.get(i + 1) {
                                Some(&b) if b < 0x80 => 1,
                                Some(&b) if b < 0xE0 => 2,
                                Some(&b) if b < 0xF0 => 3,
                                Some(_) => 4,
                                None => 0,
                            };
                            if scalar_len > 0 && bytes.get(i + 1 + scalar_len) == Some(&b'\'') {
                                code.push(b'\'');
                                code.push(b'\'');
                                i += scalar_len + 2;
                            } else {
                                code.push(b'\'');
                                i += 1;
                            }
                        }
                    } else {
                        let c = bytes[i];
                        if c == b'{' {
                            depth += 1;
                        } else if c == b'}' {
                            depth = depth.saturating_sub(1);
                        }
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        let code = String::from_utf8_lossy(&code).into_owned();

        // cfg(test) tracking, on the cleaned code only.
        if test_depth.is_none() {
            if code.contains("#[cfg(test)]") {
                pending_test_attr = true;
            } else if pending_test_attr && code.contains('{') {
                // The gated item opened on this line; it closes when depth
                // returns below the depth its `{` produced.
                test_depth = Some(start_depth + 1);
                pending_test_attr = false;
            }
        }
        let in_test = started_in_test || test_depth.is_some();
        if let Some(td) = test_depth {
            if depth < td {
                test_depth = None;
            }
        }

        out.push(CleanLine {
            no: idx + 1,
            code,
            comment,
            depth: start_depth,
            depth_after: depth,
            in_test,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"x.unwrap()\"; // gm-check: allow-panic(demo)\nlet b = 1;";
        let lines = clean(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert_eq!(
            lines[0].comment.as_deref(),
            Some("gm-check: allow-panic(demo)")
        );
        assert!(lines[1].comment.is_none());
    }

    #[test]
    fn doc_comments_are_not_waiver_comments() {
        let lines = clean("/// gm-lock: meta\nfn f() {}\n");
        assert!(lines[0].comment.is_none());
    }

    #[test]
    fn depth_tracks_braces_outside_literals() {
        let src = "fn f() {\n    let s = \"}}}{\";\n    { let x = 1; }\n}\n";
        let lines = clean(src);
        assert_eq!(lines[0].depth, 0);
        assert_eq!(lines[1].depth, 1);
        assert_eq!(lines[1].depth_after, 1, "braces inside strings are inert");
        assert_eq!(lines[2].depth_after, 1);
        assert_eq!(lines[3].depth_after, 0);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = clean(src);
        assert!(!lines[0].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test, "test region ends with its brace");
    }

    #[test]
    fn lifetimes_do_not_eat_the_line() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lines = clean(src);
        assert!(lines[0].code.contains("str"));
        assert_eq!(lines[0].depth_after, 0);
    }

    #[test]
    fn char_literals_are_blanked() {
        let src = "let c = '{'; let d = '\\n';";
        let lines = clean(src);
        assert_eq!(
            lines[0].depth_after, 0,
            "brace inside char literal is inert"
        );
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"body } .unwrap() \"#; let t = 2;";
        let lines = clean(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("let t"));
        assert_eq!(lines[0].depth_after, 0);
    }
}
