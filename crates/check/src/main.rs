//! `gm-check` — run the workspace lints and exit non-zero on findings.
//!
//! ```text
//! cargo run -p gm-check              # check this workspace
//! cargo run -p gm-check -- --root D  # check another tree (lint fixtures)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("gm-check: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: gm-check [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gm-check: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let files = match gm_check::collect_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gm-check: reading {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = gm_check::run(&files);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "gm-check: {} files clean (delegation, lock-order, panic-freedom, atomic-ordering, \
             span-discipline)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("gm-check: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
