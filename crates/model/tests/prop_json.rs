//! Property-based tests: JSON round-trips and Value ordering laws.

use gm_model::json::Json;
use gm_model::value::Value;
use proptest::prelude::*;

/// Strategy producing arbitrary JSON documents of bounded depth.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        // Finite floats only; NaN/Inf intentionally serialize as null.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Json::Float),
        "[a-zA-Z0-9 _\\-\\\\\"\n\t☃]{0,24}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6)
                .prop_map(|m| { Json::Obj(m.into_iter().collect()) }),
        ]
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z0-9]{0,12}".prop_map(Value::Str),
    ]
}

proptest! {
    /// parse(print(doc)) == doc for compact printing.
    #[test]
    fn json_compact_round_trip(doc in arb_json()) {
        let text = doc.to_compact_string();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// parse(pretty_print(doc)) == doc.
    #[test]
    fn json_pretty_round_trip(doc in arb_json()) {
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn json_parser_total(input in "\\PC{0,256}") {
        let _ = Json::parse(&input);
    }

    /// Value ordering is antisymmetric and transitive (spot-check totality).
    #[test]
    fn value_order_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // antisymmetry
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // transitivity for the <= relation
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Eq implies equal hashes for Value.
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }
}
