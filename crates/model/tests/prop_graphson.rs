//! Property-based test: GraphSON round-trips arbitrary datasets.

use gm_model::graphson::{from_graphson, to_graphson};
use gm_model::value::Value;
use gm_model::Dataset;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        "[a-zA-Z0-9 ,.☃]{0,16}".prop_map(Value::Str),
    ]
}

fn arb_props() -> impl Strategy<Value = Vec<(String, Value)>> {
    prop::collection::btree_map("[a-z]{1,8}", arb_value(), 0..5)
        .prop_map(|m| m.into_iter().collect())
}

prop_compose! {
    fn arb_dataset()(
        vlabels in prop::collection::vec(("[a-z]{1,6}", arb_props()), 1..20),
    )(
        edges in prop::collection::vec(
            (0..vlabels.len() as u64, 0..vlabels.len() as u64, "[a-z]{1,6}", arb_props()),
            0..40,
        ),
        vlabels in Just(vlabels),
    ) -> Dataset {
        let mut d = Dataset::new("prop");
        for (label, props) in vlabels {
            d.add_vertex(label, props);
        }
        for (s, t, label, props) in edges {
            d.add_edge(s, t, label, props);
        }
        d
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graphson_round_trip(d in arb_dataset()) {
        let text = to_graphson(&d);
        let back = from_graphson(&text, "prop").unwrap();
        prop_assert_eq!(back.vertices, d.vertices);
        prop_assert_eq!(back.edges, d.edges);
    }
}
