//! Engine-internal identifier newtypes.
//!
//! Every engine assigns its own internal identifiers — for the linked engine a
//! [`Vid`] is a record-file offset, for the cluster engine a logical record id,
//! for the document engine a document key, and so on. The benchmark framework
//! never fabricates internal ids: it obtains them from
//! [`GraphDb::resolve_vertex`](crate::GraphDb::resolve_vertex) /
//! [`GraphDb::resolve_edge`](crate::GraphDb::resolve_edge) (outside the timed
//! region, as the paper prescribes) or from creation calls.

use std::fmt;

/// Engine-internal vertex identifier.
///
/// Opaque to everything except the engine that issued it. Two engines loaded
/// with the same dataset will in general assign *different* `Vid`s to the same
/// canonical vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vid(pub u64);

/// Engine-internal edge identifier. Same caveats as [`Vid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Eid(pub u64);

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Eid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u64> for Vid {
    fn from(v: u64) -> Self {
        Vid(v)
    }
}

impl From<u64> for Eid {
    fn from(v: u64) -> Self {
        Eid(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Vid(7).to_string(), "v7");
        assert_eq!(Eid(9).to_string(), "e9");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Vid(1) < Vid(2));
        assert!(Eid(10) > Eid(2));
    }

    #[test]
    fn from_u64() {
        assert_eq!(Vid::from(3u64), Vid(3));
        assert_eq!(Eid::from(4u64), Eid(4));
    }
}
