//! Per-thread lock-wait accounting.
//!
//! The concurrency harness wants to know *why* a workload stops scaling:
//! time spent executing ops, or time spent queueing on engine locks. Lock
//! acquisitions happen at several layers — the driver's shared `RwLock`,
//! the MVCC cells' writer mutexes and publish locks, and `gm-shard`'s
//! per-partition locks — so the accounting lives here, at the bottom of the
//! stack, as a thread-local accumulator every layer can add to.
//!
//! Protocol: a measured session calls [`reset`] before executing one op and
//! [`take`] after it; every lock acquisition on the op's path runs through
//! [`timed`] (or calls [`add`] with a measured wait). Because each workload
//! worker runs its ops on its own thread, the taken value attributes waits
//! exactly to the op that paid them. Code outside a measured region may
//! still accumulate waits; they are discarded by the next `reset`.

use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static WAITED_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Add `nanos` of measured lock wait to this thread's accumulator.
pub fn add(nanos: u64) {
    WAITED_NANOS.with(|w| w.set(w.get().saturating_add(nanos)));
}

/// Zero this thread's accumulator (start of a measured op).
pub fn reset() {
    WAITED_NANOS.with(|w| w.set(0));
}

/// Return and zero this thread's accumulator (end of a measured op).
pub fn take() -> u64 {
    WAITED_NANOS.with(|w| w.replace(0))
}

/// Run a lock acquisition, adding its duration to the accumulator. Wrap
/// only the *acquisition* (e.g. `lockwait::timed(|| lock.read())`), never
/// the critical section itself — the metric is queueing, not hold time.
pub fn timed<R>(acquire: impl FnOnce() -> R) -> R {
    let t = Instant::now();
    let out = acquire();
    add(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_takes() {
        reset();
        add(5);
        add(7);
        assert_eq!(take(), 12);
        assert_eq!(take(), 0, "take drains the accumulator");
    }

    #[test]
    fn timed_adds_elapsed() {
        reset();
        let x = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(x, 42);
        assert!(take() >= 1_000_000, "at least the slept time is recorded");
    }

    #[test]
    fn threads_are_independent() {
        reset();
        add(3);
        let other = std::thread::spawn(|| {
            reset();
            add(9);
            take()
        })
        .join()
        .unwrap();
        assert_eq!(other, 9);
        assert_eq!(take(), 3, "another thread's waits never leak over");
    }
}
