//! Per-thread lock-wait accounting (shim over the `gm-obs` phase spans).
//!
//! The concurrency harness wants to know *why* a workload stops scaling:
//! time spent executing ops, or time spent queueing on engine locks. Lock
//! acquisitions happen at several layers — the driver's shared `RwLock`,
//! the MVCC cells' writer mutexes and publish locks, and `gm-shard`'s
//! per-partition locks — so the accounting lives here, at the bottom of the
//! stack, as a thread-local accumulator every layer can add to.
//!
//! Since the gm-obs PR this module is a thin compatibility shim: the
//! accumulator is `gm_obs::phase`'s `lock_wait` slot, one of six per-op
//! phases. Existing call sites keep their API; new code should use the
//! phase spans directly. Lock-wait stays live in **every** `GM_OBS` mode —
//! it predates the knob and the fig8/fig10 lock-wait columns must not
//! change meaning under `GM_OBS=off`.
//!
//! Protocol: a measured session calls [`gm_obs::phase::reset_op`] (or the
//! narrower [`reset`]) before executing one op and [`take`] after it; every
//! lock acquisition on the op's path runs through [`timed`] (or calls
//! [`add`] with a measured wait). Because each workload worker runs its ops
//! on its own thread, the taken value attributes waits exactly to the op
//! that paid them. Resetting happens on op *entry*, so residue left behind
//! by a panicking or aborted op can never leak into the next op scheduled
//! on the same thread.

use gm_obs::phase::{self, Phase};

/// Add `nanos` of measured lock wait to this thread's accumulator.
pub fn add(nanos: u64) {
    phase::add(Phase::LockWait, nanos);
}

/// Zero this thread's lock-wait accumulator (start of a measured op).
/// Measured sessions should prefer [`gm_obs::phase::reset_op`], which also
/// clears the other phase slots and any stale span frames.
pub fn reset() {
    phase::reset(Phase::LockWait);
}

/// Return and zero this thread's accumulator (end of a measured op).
pub fn take() -> u64 {
    phase::take(Phase::LockWait)
}

/// Run a lock acquisition, adding its duration to the accumulator. Wrap
/// only the *acquisition* (e.g. `lockwait::timed(|| lock.read())`), never
/// the critical section itself — the metric is queueing, not hold time.
/// Under `GM_OBS=phases` the wait participates in the span stack, so an
/// enclosing `engine_exec` span reports self time without the wait.
pub fn timed<R>(acquire: impl FnOnce() -> R) -> R {
    phase::timed(Phase::LockWait, acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_takes() {
        reset();
        add(5);
        add(7);
        assert_eq!(take(), 12);
        assert_eq!(take(), 0, "take drains the accumulator");
    }

    #[test]
    fn timed_adds_elapsed() {
        reset();
        let x = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(x, 42);
        assert!(take() >= 1_000_000, "at least the slept time is recorded");
    }

    #[test]
    fn threads_are_independent() {
        reset();
        add(3);
        let other = std::thread::spawn(|| {
            reset();
            add(9);
            take()
        })
        .join()
        .unwrap();
        assert_eq!(other, 9);
        assert_eq!(take(), 3, "another thread's waits never leak over");
    }

    #[test]
    fn reset_op_clears_residue_from_an_aborted_op() {
        // Regression for the staleness bug: an op that accumulates wait and
        // then unwinds (panic / poisoned-lock abort) without `take`-ing
        // leaves residue behind. The next op's entry reset must discard it.
        add(1_000_000);
        gm_obs::phase::reset_op();
        assert_eq!(take(), 0, "stale wait must not leak into the next op");
    }
}
