//! Runtime lock-order enforcement (debug builds only).
//!
//! The workspace has a documented lock hierarchy — driver/host locks outside
//! everything, a composite's meta lock before its shard locks (ascending),
//! MVCC cell locks inside those, leaf bookkeeping (purge queues, pin tables)
//! innermost — but until now nothing *enforced* it. This module is the
//! runtime half of that enforcement (the static half is the `gm-check`
//! lint over `// gm-lock:` markers): every ranked acquisition site calls
//! [`acquire`] just before blocking on the lock, and in debug builds a
//! thread-local stack of held ranks panics the moment a thread attempts an
//! acquisition out of order — naming both the offending site and the site
//! that holds the conflicting lock. Because the check runs *before* the
//! thread blocks, a would-be deadlock becomes a deterministic panic in the
//! test suite instead of a hung run.
//!
//! In release builds [`acquire`] compiles to nothing: [`LockToken`] is a
//! zero-sized type and the thread-local stack does not exist, so the
//! instrumented hot paths (this piggybacks on the same sites the
//! [`lockwait`](crate::lockwait) span shim times) pay zero cost.
//!
//! ## The hierarchy
//!
//! Ranks must be acquired in strictly increasing key order per thread:
//!
//! | rank                  | guards                                                  |
//! |-----------------------|---------------------------------------------------------|
//! | `Driver`              | harness/server outer `RwLock` around a hosted engine    |
//! | `Meta`                | a composite's routing table (`ShardedGraph`/`Source`)   |
//! | `Shard(i)`            | one shard's engine lock; multi-shard paths go ascending |
//! | `CellWriter`          | an MVCC cell's working/live mutex                       |
//! | `CellPublished`       | an MVCC cell's published-view `RwLock`                  |
//! | `Leaf`                | innermost bookkeeping: purge queues, pin tables         |
//!
//! `Shard(i)` then `Shard(j)` is legal only for `j > i` — the ascending
//! order `wlock_all` uses — so two writers each holding one shard and
//! wanting the other are caught on the spot.

/// A level in the workspace lock hierarchy. See the module docs for what
/// each rank guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockRank {
    /// Outer harness/server lock around a hosted engine.
    Driver,
    /// Composite routing/meta lock.
    Meta,
    /// One shard's engine lock (index orders multi-shard acquisition).
    Shard(u32),
    /// MVCC cell working/live mutex.
    CellWriter,
    /// MVCC cell published-view lock.
    CellPublished,
    /// Innermost bookkeeping (purge queue, pin table).
    Leaf,
}

impl LockRank {
    /// Total order key: class in the high bits, shard index in the low bits,
    /// so `Shard(0) < Shard(1) < CellWriter` falls out of integer compare.
    fn key(self) -> u64 {
        match self {
            LockRank::Driver => 0,
            LockRank::Meta => 1 << 32,
            LockRank::Shard(i) => (2 << 32) | u64::from(i),
            LockRank::CellWriter => 3 << 32,
            LockRank::CellPublished => 4 << 32,
            LockRank::Leaf => 5 << 32,
        }
    }
}

#[cfg(debug_assertions)]
mod imp {
    use super::LockRank;
    use std::cell::RefCell;

    struct Held {
        key: u64,
        site: &'static str,
        id: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Debug-build token: pops its stack entry on drop. Guards are not
    /// always released LIFO (a caller may drop a meta guard early), so the
    /// entry is removed by id, not by position.
    pub struct LockToken {
        id: u64,
    }

    pub fn acquire(rank: LockRank, site: &'static str) -> LockToken {
        let key = rank.key();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.last() {
                if key <= top.key {
                    panic!(
                        "lock-order violation: acquiring {rank:?} at `{site}` \
                         while `{}` holds a lock of equal or higher rank \
                         (meta before shards, shards ascending, cells and \
                         leaves innermost)",
                        top.site
                    );
                }
            }
            let id = NEXT_ID.with(|n| {
                let mut n = n.borrow_mut();
                *n += 1;
                *n
            });
            held.push(Held { key, site, id });
            LockToken { id }
        })
    }

    impl Drop for LockToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|h| h.id == self.id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Number of ranked locks the current thread holds (tests only).
    pub fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use super::LockRank;

    /// Release-build token: zero-sized, no tracking.
    pub struct LockToken;

    #[inline(always)]
    pub fn acquire(_rank: LockRank, _site: &'static str) -> LockToken {
        LockToken
    }

    /// Number of ranked locks the current thread holds (always 0 when the
    /// detector is compiled out).
    pub fn held_count() -> usize {
        0
    }
}

pub use imp::{acquire, held_count, LockToken};

/// A lock guard bundled with the [`LockToken`] that ranked its acquisition.
///
/// Helpers that *return* guards (`ShardedGraph::rlock`, `meta_read`, …)
/// can't leave the token in their own scope — it must live exactly as long
/// as the guard — so they wrap the pair. Derefs to whatever the guard
/// derefs to, so call sites are unchanged.
pub struct Ranked<G> {
    guard: G,
    _token: LockToken,
}

impl<G> Ranked<G> {
    /// Bundle a guard with the token acquired just before it.
    pub fn new(guard: G, token: LockToken) -> Self {
        Ranked {
            guard,
            _token: token,
        }
    }
}

impl<G: std::ops::Deref> std::ops::Deref for Ranked<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: std::ops::DerefMut> std::ops::DerefMut for Ranked<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_acquisition_is_clean() {
        let _d = acquire(LockRank::Driver, "test driver");
        let _m = acquire(LockRank::Meta, "test meta");
        let _s0 = acquire(LockRank::Shard(0), "test shard 0");
        let _s1 = acquire(LockRank::Shard(1), "test shard 1");
        let _w = acquire(LockRank::CellWriter, "test writer");
        let _p = acquire(LockRank::CellPublished, "test published");
        let _l = acquire(LockRank::Leaf, "test leaf");
        #[cfg(debug_assertions)]
        assert_eq!(held_count(), 7);
    }

    #[test]
    fn release_reopens_the_rank() {
        {
            let _m = acquire(LockRank::Meta, "test meta");
        }
        // Meta released: re-acquiring it (and ranks below) is fine.
        let _d = acquire(LockRank::Driver, "test driver");
        let _m = acquire(LockRank::Meta, "test meta again");
        assert_eq!(held_count(), if cfg!(debug_assertions) { 2 } else { 0 });
    }

    #[test]
    fn non_lifo_release_is_tracked() {
        let m = acquire(LockRank::Meta, "test meta");
        let _s = acquire(LockRank::Shard(3), "test shard 3");
        drop(m); // meta released while the shard guard is still held
        #[cfg(debug_assertions)]
        assert_eq!(held_count(), 1);
        // A later thread-local acquisition of Shard(5) is still ordered
        // against the held Shard(3).
        let _s5 = acquire(LockRank::Shard(5), "test shard 5");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inversion_panics_naming_both_sites() {
        let err = std::panic::catch_unwind(|| {
            let _s = acquire(LockRank::Shard(2), "site A: shard write");
            let _m = acquire(LockRank::Meta, "site B: meta write");
        })
        .expect_err("shard-before-meta must panic in debug builds");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("site A"), "panic names the holder: {msg}");
        assert!(msg.contains("site B"), "panic names the violator: {msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn descending_shards_panic() {
        let err = std::panic::catch_unwind(|| {
            let _a = acquire(LockRank::Shard(4), "shard 4");
            let _b = acquire(LockRank::Shard(1), "shard 1");
        })
        .expect_err("descending shard order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("shard 4"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_shard_twice_panics() {
        assert!(std::panic::catch_unwind(|| {
            let _a = acquire(LockRank::Shard(0), "shard 0 first");
            let _b = acquire(LockRank::Shard(0), "shard 0 again");
        })
        .is_err());
    }

    #[test]
    fn threads_have_independent_stacks() {
        let _m = acquire(LockRank::Leaf, "leaf on main thread");
        std::thread::spawn(|| {
            // Leaf held on the spawning thread doesn't constrain this one.
            let _d = acquire(LockRank::Driver, "driver on worker");
            let _l = acquire(LockRank::Leaf, "leaf on worker");
        })
        .join()
        .expect("worker thread is independent of the main thread's stack");
    }
}
