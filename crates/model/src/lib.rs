//! # gm-model — data model and engine API for graphmark
//!
//! This crate defines everything that the benchmark framework, the traversal
//! layer and the seven storage engines share:
//!
//! * [`Value`] — the attributed-graph property value type;
//! * [`Json`](json::Json) — a small, dependency-free JSON document type with
//!   parser and printer (GraphSON is plain JSON);
//! * [`Dataset`] — the canonical in-memory representation of a graph dataset,
//!   produced by the generators in `gm-datasets` and consumed by
//!   [`GraphDb::bulk_load`];
//! * [`GraphDb`] — the engine trait; the Rust analogue of a TinkerPop/Gremlin
//!   adapter. All 35 microbenchmark queries and the 13 complex queries of the
//!   paper decompose into calls on this trait;
//! * [`QueryCtx`] — cooperative deadline/cancellation context threaded through
//!   every read/traversal operation (the paper's 2-hour timeout, scaled down);
//! * [`fxmap`] — a tiny FxHash-style hasher so engines get fast integer-keyed
//!   maps without external dependencies.
//!
//! The design rule of the whole workspace is enforced by this crate's API:
//! **one trait, physical diversity**. Engines differ only in how they lay the
//! data out; the queries that run on top of them are byte-for-byte the same.

pub mod api;
pub mod ctx;
pub mod dataset;
pub mod error;
pub mod forward;
pub mod fxmap;
pub mod graphson;
pub mod ids;
pub mod interner;
pub mod json;
pub mod lockorder;
pub mod lockwait;
pub mod testkit;
pub mod value;

pub use api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SharedGraph, SpaceReport, VertexData,
};
pub use ctx::QueryCtx;
pub use dataset::{Dataset, DsEdge, DsVertex};
pub use error::{GdbError, GdbResult};
pub use ids::{Eid, Vid};
pub use interner::Interner;
pub use value::{Props, Value};
