//! Property values of the attributed graph model.
//!
//! The paper's data model (§3) attaches sets of name–value pairs to nodes and
//! edges. The value domain needed by all seven datasets is small: strings,
//! integers, floats and booleans. [`Value`] supports total ordering and
//! hashing (floats via `f64::total_cmp` / bit patterns) so it can be used as
//! a key in engine indexes — B+Trees in the relational and triple engines,
//! value→bitmap maps in the bitmap engine.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A property value. `Null` is used only as an in-band "absent" marker by a
/// few engine internals; datasets never contain explicit nulls.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absence marker.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Ordered with `total_cmp`, hashed by canonicalized bits.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

/// A property list: ordered name–value pairs. The order is the insertion
/// order of the generator, which every engine must preserve semantically
/// (they may store properties however they like physically).
pub type Props = Vec<(String, Value)>;

impl Value {
    /// Short type tag, used in error messages and the triple engine's
    /// statement encoding.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    /// Returns the string slice if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float` (or lossless `Int`) value.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate heap + inline footprint in bytes; engines use this for the
    /// space accounting of Figure 1.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 16 + s.len() as u64,
        }
    }

    /// Canonicalized float bits: all NaNs map to one pattern, -0.0 to +0.0,
    /// so `Eq`/`Hash` agree with `total order by value`.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0u64 // fold -0.0 and +0.0
        } else {
            f.to_bits()
        }
    }

    /// A stable order across value types: Null < Bool < Int/Float < Str.
    /// Ints and floats compare numerically with each other so that engine
    /// indexes behave like a database ORDER BY.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            // Int and Float that are numerically equal must hash equally
            // because Eq says they are equal: hash both through float bits
            // when the int is exactly representable, otherwise through the
            // integer itself (such an int can never equal any float value
            // produced by parsing, which we accept).
            Value::Int(i) => {
                state.write_u8(2);
                let f = *i as f64;
                if f as i64 == *i {
                    state.write_u64(Self::float_bits(f));
                } else {
                    state.write_u64(*i as u64);
                }
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(Self::float_bits(*f));
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Find a property by name in a [`Props`] list.
pub fn prop_get<'a>(props: &'a Props, name: &str) -> Option<&'a Value> {
    props.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

/// Insert-or-replace a property in a [`Props`] list; returns the old value.
pub fn prop_set(props: &mut Props, name: &str, value: Value) -> Option<Value> {
    for (n, v) in props.iter_mut() {
        if n == name {
            return Some(std::mem::replace(v, value));
        }
    }
    props.push((name.to_string(), value));
    None
}

/// Remove a property by name; returns the removed value if present.
pub fn prop_remove(props: &mut Props, name: &str) -> Option<Value> {
    let idx = props.iter().position(|(n, _)| n == name)?;
    Some(props.remove(idx).1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordering_across_types_is_total() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
            Value::Str("a".into()),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::Str("a".into()));
        assert_eq!(vals[5], Value::Str("b".into()));
    }

    #[test]
    fn int_float_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn nan_is_self_equal_after_canonicalization() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn zero_signs_fold() {
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn prop_list_helpers() {
        let mut p: Props = vec![("a".into(), Value::Int(1))];
        assert_eq!(prop_get(&p, "a"), Some(&Value::Int(1)));
        assert_eq!(prop_get(&p, "b"), None);
        assert_eq!(prop_set(&mut p, "a", Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(prop_set(&mut p, "b", Value::Bool(true)), None);
        assert_eq!(p.len(), 2);
        assert_eq!(prop_remove(&mut p, "a"), Some(Value::Int(2)));
        assert_eq!(prop_remove(&mut p, "a"), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn approx_bytes_scales_with_strings() {
        assert!(Value::Str("hello".into()).approx_bytes() > Value::Int(1).approx_bytes());
    }

    #[test]
    fn display_round_trip_for_ints() {
        assert_eq!(Value::Int(-42).to_string(), "-42");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
    }
}
