//! String interning for labels and property names.
//!
//! Engines store labels and property names as small integer ids; this
//! interner provides the id↔string mapping. Every engine owns its own
//! interner — the benchmark would be distorted if engines shared one.

use crate::fxmap::FxHashMap;

/// Bidirectional string↔u32 mapping with stable ids.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    by_name: FxHashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern a string, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an id without interning; `None` if the string is unknown.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its string.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned strings in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }

    /// Approximate memory footprint.
    pub fn bytes(&self) -> u64 {
        self.names
            .iter()
            .map(|s| 2 * (s.len() as u64 + 24) + 8)
            .sum::<u64>()
            + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("knows");
        let b = i.intern("knows");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.resolve(0), Some("a"));
        assert_eq!(i.resolve(1), Some("b"));
        assert_eq!(i.resolve(2), None);
        assert_eq!(i.get("b"), Some(1));
        assert_eq!(i.get("c"), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let all: Vec<(u32, &str)> = i.iter().collect();
        assert_eq!(all, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn bytes_nonzero_after_interning() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("hello");
        assert!(!i.is_empty());
        assert!(i.bytes() > 0);
    }
}
