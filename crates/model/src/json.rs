//! A small, dependency-free JSON document type with parser and printer.
//!
//! GraphSON — the interchange format of the paper's suite — is "plain JSON"
//! (§5, *Test Suite*). The subset implemented here is the full JSON grammar
//! (RFC 8259) minus some exotic corner cases we reject deliberately
//! (documents nested deeper than [`MAX_DEPTH`]). Object key order is
//! preserved (objects are association lists) so GraphSON files round-trip
//! byte-stably modulo whitespace.
//!
//! Written by hand instead of pulling `serde_json` because the approved
//! offline dependency list does not include it; see DESIGN.md §2.

use std::fmt;

/// Maximum nesting depth accepted by the parser; protects against stack
/// exhaustion on adversarial inputs.
pub const MAX_DEPTH: usize = 128;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that parsed as an exact 64-bit integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved, duplicate keys rejected by the parser.
    Obj(Vec<(String, Json)>),
}

/// Parse error with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array view; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view; floats with an exact integral value also qualify.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(53) => Some(*f as i64),
            _ => None,
        }
    }

    /// Float view; ints convert losslessly.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; serialize as null like most encoders.
        out.push_str("null");
    } else {
        let text = format!("{f}");
        // Keep a float marker so the value re-parses as Float, not Int —
        // Rust's shortest representation omits it for integral values of
        // any magnitude (e.g. 3.4e16 prints as 34000000000000000).
        if text.contains('.') || text.contains('e') || text.contains('E') {
            out.push_str(&text);
        } else {
            out.push_str(&text);
            out.push_str(".0");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, val: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("invalid literal, expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: must be followed by \uXXXX low.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let len = utf8_len(c).ok_or_else(|| self.err("invalid utf-8 byte"))?;
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8 sequence"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let doc = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(Json::parse("01").is_err(), "leading zero");
        assert!(Json::parse("1.").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nwith \"quotes\", tab\t, slash\\ and unicode: ☃";
        let doc = Json::Str(s.into());
        let text = doc.to_compact_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair: U+1F600
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn raw_utf8_passthrough() {
        let doc = Json::parse("\"naïve ☃ 😀\"").unwrap();
        assert_eq!(doc, Json::Str("naïve ☃ 😀".into()));
    }

    #[test]
    fn integers_preserved_floats_marked() {
        // Integral floats serialize with ".0" so the type survives a round trip.
        assert_eq!(Json::Float(3.0).to_compact_string(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::Int(3).to_compact_string(), "3");
    }

    #[test]
    fn huge_int_falls_back_to_float() {
        let v = Json::parse("99999999999999999999999").unwrap();
        assert!(matches!(v, Json::Float(_)));
    }

    #[test]
    fn pretty_output_reparses() {
        let doc = Json::parse(r#"{"a":[1,2],"b":{"c":true},"d":[]}"#).unwrap();
        let pretty = doc.to_pretty_string();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn nan_and_inf_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn object_key_order_preserved() {
        let doc = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        if let Json::Obj(fields) = &doc {
            let keys: Vec<_> = fields.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, vec!["z", "a", "m"]);
        } else {
            panic!("not an object");
        }
    }
}
