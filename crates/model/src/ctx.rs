//! Cooperative query deadlines — the in-process analogue of the paper's
//! 2-hour per-query timeout.
//!
//! Real GDB servers are killed from the outside when a query overruns; inside
//! one process we instead thread a [`QueryCtx`] through every scan and
//! traversal loop. Engines call [`QueryCtx::tick`] once per element touched;
//! the context checks the wall clock only every [`TICKS_PER_CLOCK_CHECK`]
//! ticks so the overhead on the measured path stays in the sub-nanosecond
//! range.
//!
//! The counters are relaxed atomics rather than `Cell`s so a `QueryCtx` is
//! `Sync`: the concurrent workload driver (`gm-workload`) shares engines
//! across threads, and every read path borrows the context. A query still
//! logically belongs to one client, so the tick counter uses relaxed
//! load+store pairs — the same cost class as the old `Cell` on the measured
//! hot path, not an atomic read-modify-write. If several threads ever tick
//! one context concurrently, counts may be under-recorded but never corrupt,
//! and deadline checks still fire; the work counter is bookkeeping, not a
//! correctness input.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::error::{GdbError, GdbResult};

/// How many `tick()` calls elapse between wall-clock checks.
pub const TICKS_PER_CLOCK_CHECK: u64 = 4096;

/// Per-query execution context: deadline + work counter.
#[derive(Debug)]
pub struct QueryCtx {
    deadline: Option<Instant>,
    ticks: AtomicU64,
    expired: AtomicBool,
}

impl QueryCtx {
    /// A context that never times out. Used by unit tests and by setup code
    /// outside the measured region.
    pub fn unbounded() -> Self {
        QueryCtx {
            deadline: None,
            ticks: AtomicU64::new(0),
            expired: AtomicBool::new(false),
        }
    }

    /// A context that expires `budget` from now.
    pub fn with_timeout(budget: Duration) -> Self {
        QueryCtx {
            deadline: Some(Instant::now() + budget),
            ticks: AtomicU64::new(0),
            expired: AtomicBool::new(false),
        }
    }

    /// A context that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        QueryCtx {
            deadline: Some(deadline),
            ticks: AtomicU64::new(0),
            expired: AtomicBool::new(false),
        }
    }

    /// Record one unit of work; fails with [`GdbError::Timeout`] once the
    /// deadline has passed. Engines call this in every scan/traversal loop.
    #[inline]
    pub fn tick(&self) -> GdbResult<()> {
        // gm-check: relaxed(cancellation flag: a late observation only delays the timeout by ticks)
        if self.expired.load(Ordering::Relaxed) {
            return Err(GdbError::Timeout);
        }
        // gm-check: relaxed(work counter: single-query hot path, approximate totals are fine)
        let t = self.ticks.load(Ordering::Relaxed).wrapping_add(1);
        // gm-check: relaxed(work counter: single-query hot path, approximate totals are fine)
        self.ticks.store(t, Ordering::Relaxed);
        if t.is_multiple_of(TICKS_PER_CLOCK_CHECK) {
            self.check_clock()?;
        }
        Ok(())
    }

    /// Record `n` units of work at once (bulk operations).
    #[inline]
    pub fn tick_n(&self, n: u64) -> GdbResult<()> {
        // gm-check: relaxed(cancellation flag: a late observation only delays the timeout by ticks)
        if self.expired.load(Ordering::Relaxed) {
            return Err(GdbError::Timeout);
        }
        // gm-check: relaxed(work counter: single-query hot path, approximate totals are fine)
        let before = self.ticks.load(Ordering::Relaxed);
        let after = before.wrapping_add(n);
        // gm-check: relaxed(work counter: single-query hot path, approximate totals are fine)
        self.ticks.store(after, Ordering::Relaxed);
        if before / TICKS_PER_CLOCK_CHECK != after / TICKS_PER_CLOCK_CHECK {
            self.check_clock()?;
        }
        Ok(())
    }

    /// Force an immediate wall-clock check regardless of tick count.
    pub fn check_clock(&self) -> GdbResult<()> {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                // gm-check: relaxed(cancellation flag: readers tolerate a few extra ticks)
                self.expired.store(true, Ordering::Relaxed);
                return Err(GdbError::Timeout);
            }
        }
        Ok(())
    }

    /// Total units of work recorded so far — a rough, engine-reported
    /// "elements touched" figure that reports can show next to latencies.
    pub fn work(&self) -> u64 {
        // gm-check: relaxed(work counter: approximate report figure)
        self.ticks.load(Ordering::Relaxed)
    }

    /// Whether this context has already observed its deadline expiring.
    pub fn is_expired(&self) -> bool {
        // gm-check: relaxed(cancellation flag: a stale false only delays the timeout by ticks)
        self.expired.load(Ordering::Relaxed)
    }

    /// Time left before the deadline: `None` for an unbounded context,
    /// `Some(ZERO)` once the deadline has passed. Transports (gm-net) use
    /// this to forward the *remaining* budget to a remote server, so a query
    /// that already spent half its deadline client-side cannot spend a full
    /// budget again server-side.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for QueryCtx {
    fn default() -> Self {
        QueryCtx::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_times_out() {
        let ctx = QueryCtx::unbounded();
        for _ in 0..(TICKS_PER_CLOCK_CHECK * 3) {
            ctx.tick().unwrap();
        }
        assert!(!ctx.is_expired());
        assert_eq!(ctx.work(), TICKS_PER_CLOCK_CHECK * 3);
    }

    #[test]
    fn zero_budget_times_out_on_first_clock_check() {
        let ctx = QueryCtx::with_timeout(Duration::from_millis(0));
        // The first TICKS_PER_CLOCK_CHECK-1 ticks succeed (no clock check yet).
        let mut failed = false;
        for _ in 0..(TICKS_PER_CLOCK_CHECK * 2) {
            if ctx.tick().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline must eventually fire");
        // Once expired, every subsequent tick fails immediately.
        assert_eq!(ctx.tick(), Err(GdbError::Timeout));
        assert!(ctx.is_expired());
    }

    #[test]
    fn explicit_clock_check_fires_immediately() {
        let ctx = QueryCtx::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(ctx.check_clock(), Err(GdbError::Timeout));
    }

    #[test]
    fn tick_n_crosses_check_boundary() {
        let ctx = QueryCtx::with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        // A single bulk tick spanning the boundary must observe the deadline.
        assert_eq!(
            ctx.tick_n(TICKS_PER_CLOCK_CHECK + 1),
            Err(GdbError::Timeout)
        );
    }

    #[test]
    fn remaining_budget_reports_sanely() {
        assert_eq!(QueryCtx::unbounded().remaining(), None);
        let r = QueryCtx::with_timeout(Duration::from_secs(60))
            .remaining()
            .expect("bounded ctx has a remaining budget");
        assert!(r <= Duration::from_secs(60));
        assert!(r > Duration::from_secs(50));
        // A context whose deadline already passed saturates to zero.
        let expired = QueryCtx::with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_allows_work() {
        let ctx = QueryCtx::with_timeout(Duration::from_secs(60));
        ctx.tick_n(100_000).unwrap();
        assert!(!ctx.is_expired());
    }

    #[test]
    fn ctx_is_sync_and_survives_cross_thread_ticks() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<QueryCtx>();
        let ctx = QueryCtx::unbounded();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        ctx.tick().unwrap();
                    }
                });
            }
        });
        // Relaxed load+store may under-count under contention (documented);
        // the counter must stay sane and the context usable.
        let w = ctx.work();
        assert!(w > 0 && w <= 4_000, "work = {w}");
        assert!(!ctx.is_expired());
    }
}
