//! The engine API — graphmark's analogue of a TinkerPop/Gremlin adapter.
//!
//! Every storage engine implements [`GraphDb`]. The 35 microbenchmark queries
//! (paper Table 2) and the complex LDBC-style workload decompose into calls
//! on this trait, exactly as Gremlin queries decompose into primitive
//! operators (§1, *Micro-benchmarking*). The traversal layer (`gm-traversal`)
//! builds BFS, shortest paths, and multi-step traversals from these
//! primitives so that **per-engine differences come only from the physical
//! data organization underneath**.

use std::time::Duration;

use crate::ctx::QueryCtx;
use crate::dataset::Dataset;
use crate::error::GdbResult;
use crate::ids::{Eid, Vid};
use crate::value::{Props, Value};

/// Traversal direction, matching Gremlin's `in()`, `out()`, `both()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow incoming edges (`v.in()` / `v.inE()`).
    In,
    /// Follow outgoing edges (`v.out()` / `v.outE()`).
    Out,
    /// Follow edges in both directions (`v.both()` / `v.bothE()`).
    Both,
}

impl Direction {
    /// The opposite direction; `Both` is its own opposite.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::In => Direction::Out,
            Direction::Out => Direction::In,
            Direction::Both => Direction::Both,
        }
    }

    /// All three directions, for tests and sweeps.
    pub const ALL: [Direction; 3] = [Direction::In, Direction::Out, Direction::Both];
}

/// A (edge, neighbor) pair returned by [`GraphDb::vertex_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Internal edge id.
    pub eid: Eid,
    /// The endpoint on the far side of the edge relative to the queried
    /// vertex. For self-loops this equals the queried vertex.
    pub other: Vid,
}

/// Materialized vertex (Q14 result shape).
#[derive(Debug, Clone, PartialEq)]
pub struct VertexData {
    /// Internal id.
    pub id: Vid,
    /// Vertex label.
    pub label: String,
    /// Properties.
    pub props: Props,
}

/// Materialized edge (Q15 result shape).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeData {
    /// Internal id.
    pub id: Eid,
    /// Source vertex.
    pub src: Vid,
    /// Destination vertex.
    pub dst: Vid,
    /// Edge label.
    pub label: String,
    /// Properties.
    pub props: Props,
}

/// Options for [`GraphDb::bulk_load`] (Q1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOptions {
    /// Use the engine's bulk path if it has one. The paper had to enable
    /// this explicitly for BlazeGraph ("bulk loading" option, §6.2); with
    /// `false` the triple engine updates all three B+Trees per statement.
    pub bulk: bool,
    /// Build attribute indexes during the load instead of after.
    pub index_during_load: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            bulk: true,
            index_during_load: false,
        }
    }
}

/// Load outcome (vertex/edge counts as seen by the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Vertices ingested.
    pub vertices: u64,
    /// Edges ingested.
    pub edges: u64,
}

/// Structure-by-structure space accounting (Figure 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpaceReport {
    /// Named components, e.g. `("node records", 1_048_576)`.
    pub components: Vec<(String, u64)>,
}

impl SpaceReport {
    /// Add a named component.
    pub fn add(&mut self, name: impl Into<String>, bytes: u64) {
        self.components.push((name.into(), bytes));
    }

    /// Total bytes across all components.
    pub fn total(&self) -> u64 {
        self.components.iter().map(|(_, b)| *b).sum()
    }
}

/// Static description of an engine for the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineFeatures {
    /// Short engine name, e.g. `"linked(v1)"`.
    pub name: String,
    /// `"Native"` or `"Hybrid (…)"`, as in Table 1.
    pub system_type: String,
    /// Physical storage summary, as in Table 1's *Storage* column.
    pub storage: String,
    /// How edge traversal is resolved, as in Table 1's *Edge Traversal*.
    pub edge_traversal: String,
    /// Whether the adapter conflates multiple query steps into one plan
    /// (Table 1's "Optimized" column; true for the relational engine).
    pub optimized_adapter: bool,
    /// Whether writes are acknowledged before reaching the primary store
    /// (the document engine's asynchronous journal; biases CUD latency,
    /// §6.4 "Insertions …" caveat).
    pub async_writes: bool,
    /// Whether user-controlled attribute indexes are supported (Figure 4c;
    /// the triple engine has none, as BlazeGraph in §6.4 *Effect of Indexing*).
    pub attribute_indexes: bool,
}

/// The **read-only half** of the engine interface — everything a consistent
/// view of the graph can answer without mutating it.
///
/// Every query in this trait takes `&self` (plus, for scans and traversals, a
/// [`QueryCtx`] carrying the cooperative deadline; implementations must call
/// [`QueryCtx::tick`] at least once per element touched so timeouts observe
/// the same granularity across engines).
///
/// Three kinds of values implement it:
///
/// * live engines — every [`GraphDb`] is a `GraphSnapshot` of "now"
///   (`GraphDb: GraphSnapshot`), so `&dyn GraphDb` upcasts wherever a
///   read-only view is expected;
/// * pinned snapshots — `gm-mvcc` hands out immutable epoch views that
///   answer reads while writers keep mutating the live engine;
/// * remote proxies — `gm-net`'s client forwards each read over a socket.
///
/// `catalog::execute_read`, the traversal algorithms, and the workload
/// driver's read path are all written against this trait, which is what lets
/// a scan run against a stable epoch instead of holding the engine's read
/// lock for its whole duration.
pub trait GraphSnapshot: Send + Sync {
    /// Variant-qualified engine name (e.g. `"linked(v2)"`).
    fn name(&self) -> String;

    /// Static feature description (Table 1).
    fn features(&self) -> EngineFeatures;

    /// The epoch (graph version) this view observes. Live engines report 0
    /// ("unversioned: reads see whatever writes have landed"); pinned
    /// `gm-mvcc` snapshots report their publish epoch, which is strictly
    /// monotone per source and lets harnesses tag every read sample with the
    /// graph version that produced it.
    fn epoch(&self) -> u64 {
        0
    }

    /// Map a canonical vertex id to this engine's internal id.
    ///
    /// Used by the benchmark runner *outside* the timed region ("the lookup
    /// for the object is performed before the time is measured", §4.2).
    fn resolve_vertex(&self, canonical: u64) -> Option<Vid>;

    /// Map a canonical edge id to this engine's internal id.
    fn resolve_edge(&self, canonical: u64) -> Option<Eid>;

    // ----- Read (Q8–Q15) ----------------------------------------------

    /// Q8: total number of vertices.
    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64>;

    /// Q9: total number of edges.
    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64>;

    /// Q10: distinct edge labels (order unspecified, no duplicates).
    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>>;

    /// Q11: vertices whose property `name` equals `value`.
    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>>;

    /// Q12: edges whose property `name` equals `value`.
    fn edges_with_property(&self, name: &str, value: &Value, ctx: &QueryCtx)
        -> GdbResult<Vec<Eid>>;

    /// Q13: edges with the given label.
    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>>;

    /// Q14: the vertex with internal id `v`, fully materialized.
    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>>;

    /// Q15: the edge with internal id `e`, fully materialized.
    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>>;

    // ----- Traversal primitives (Q22–Q35 build on these) ----------------

    /// Q22/Q23/Q24: neighbors of `v` via `dir` edges, optionally restricted
    /// to a label. Duplicates allowed (parallel edges yield repeats), order
    /// unspecified.
    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>>;

    /// Incident edges of `v` with the far endpoint.
    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>>;

    /// Number of incident edges (Q28–Q30 predicate).
    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64>;

    /// Q25/Q26/Q27: distinct labels of incident edges.
    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>>;

    /// Iterate all vertex ids (`g.V`). Engines yield `Err(Timeout)` if the
    /// context expires mid-scan.
    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>>;

    /// Iterate all edge ids (`g.E`).
    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>>;

    // ----- Element accessors used by traversal filters -------------------

    /// Single vertex property lookup.
    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>>;

    /// Single edge property lookup.
    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>>;

    /// Source and destination of an edge.
    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>>;

    /// Label of an edge.
    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>>;

    /// Label of a vertex.
    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>>;

    // ----- Bulk traversal helpers -----------------------------------------

    /// Q28–Q30: all vertices with at least `k` incident edges in `dir`.
    ///
    /// The default implementation is the Gremlin decomposition — scan all
    /// vertices and evaluate the degree filter per vertex. Engines may
    /// override it with a physically better (or, in the bitmap engine's
    /// case, deliberately adapter-faithful worse) strategy; the paper's
    /// Figure 5(b) differences come precisely from these implementations.
    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        let mut out = Vec::new();
        let scan = self.scan_vertices(ctx)?;
        for v in scan {
            let v = v?;
            if self.vertex_degree(v, dir, ctx)? >= k {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// Q31: distinct vertices reachable over one hop in `dir` from any
    /// vertex (`g.V.out.dedup()` — "nodes having an incoming edge" for
    /// `Out`).
    ///
    /// The default is the Gremlin decomposition: per-vertex neighbor
    /// expansion followed by dedup. Engines whose adapter conflates steps
    /// into one plan (Table 1's "Optimized") may override — the relational
    /// engine answers with one pass over its edge tables, which is why the
    /// paper finds "Sqlg is able to complete only Q.31" among the
    /// whole-graph filters (§6.4).
    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        let mut out = Vec::new();
        let scan = self.scan_vertices(ctx)?;
        let mut sources = Vec::new();
        for v in scan {
            sources.push(v?);
        }
        for v in sources {
            out.extend(self.neighbors(v, dir, None, ctx)?);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    // ----- Attribute indexes (Figure 4c) ---------------------------------

    /// Whether a vertex index on `prop` exists.
    fn has_vertex_index(&self, prop: &str) -> bool;

    // ----- Space (Figure 1) ----------------------------------------------

    /// Structure-by-structure space report.
    fn space(&self) -> SpaceReport;
}

/// The common engine interface: the read-only half ([`GraphSnapshot`]) plus
/// every mutating operation.
///
/// Mutating operations take `&mut self`; queries take `&self` and live on
/// the supertrait. Engines are `Send + Sync` (inherited from
/// `GraphSnapshot`): all interior state is owned (no `Rc`/`Cell`), so the
/// concurrent workload driver (`gm-workload`) can share one engine across
/// client threads behind an `RwLock` — concurrent reads through `&self`,
/// serialized writes through `&mut self`. The type system enforces the
/// read/write split twice over: every mutating method takes `&mut self`,
/// and a pinned `&dyn GraphSnapshot` cannot name a mutation at all.
pub trait GraphDb: GraphSnapshot {
    // ----- Load (Q1) --------------------------------------------------

    /// Ingest a canonical dataset into an **empty** engine.
    fn bulk_load(&mut self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats>;

    // ----- Create (Q2–Q7) ---------------------------------------------

    /// Q2: add a vertex with properties; returns the internal id.
    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid>;

    /// Q3/Q4: add an edge (with properties for Q4).
    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid>;

    /// Q5/Q16: insert or update a vertex property.
    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()>;

    /// Q6/Q17: insert or update an edge property.
    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()>;

    // ----- Update / Delete (Q16–Q21) ------------------------------------

    /// Q18: delete a vertex together with its incident edges and properties.
    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()>;

    /// Q19: delete an edge and its properties.
    fn remove_edge(&mut self, e: Eid) -> GdbResult<()>;

    /// Q20: remove a vertex property; returns the previous value if present.
    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>>;

    /// Q21: remove an edge property; returns the previous value if present.
    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>>;

    // ----- Attribute indexes (Figure 4c) ---------------------------------

    /// Build a user-controlled index on a vertex property. Engines without
    /// this capability return [`GdbError::Unsupported`](crate::GdbError).
    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()>;

    /// Flush any asynchronous write buffers (document engine journal).
    /// Engines with synchronous writes implement this as a no-op. The
    /// benchmark runner calls it after CUD batches *outside* the timed
    /// region, matching the client-side measurement caveat of §6.4.
    fn sync(&mut self) -> GdbResult<()> {
        Ok(())
    }
}

/// A graph whose writes synchronize **internally** — both reads and writes
/// go through `&self`, so the harness never needs an exclusive outer lock
/// around the whole engine.
///
/// This is the interface the ROADMAP's "sharded locks" item calls for:
/// engines that expose disjoint state (per-partition locks) accept
/// concurrent writers to different partitions, which a single engine-wide
/// `RwLock` would serialize. `gm-shard`'s `ShardedGraph` is the first
/// implementation; `gm-net`'s server hosts any `SharedGraph` without taking
/// an exclusive lock on the write path.
///
/// The write closure receives `&mut dyn GraphDb` (the familiar mutation
/// surface), but implementations may hand out a lightweight routing handle
/// whose mutations lock only the partitions they touch — two concurrent
/// `with_write` calls that land on different partitions proceed in
/// parallel. Mutations within one closure invocation are applied in order;
/// atomicity across partitions is implementation-defined.
pub trait SharedGraph: GraphSnapshot {
    /// Run one mutation batch. Returns whatever the closure returns
    /// (conventionally a result cardinality).
    fn with_write(&self, f: &mut dyn FnMut(&mut dyn GraphDb) -> GdbResult<u64>) -> GdbResult<u64>;
}

// ----- blanket delegation through Box ---------------------------------------
//
// `Box<dyn GraphDb>` is the currency of the engine registry and the workload
// driver; composites like `gm-shard`'s `ShardedGraph<E>` are generic over
// `E: GraphDb` and want to accept registry engines directly. Delegating the
// traits through `Box` makes `Box<dyn GraphDb>: GraphDb` (and likewise for
// `GraphSnapshot`), so `ShardedGraph<Box<dyn GraphDb>>` just works. The
// `forward_*` macros generate every method — including the overridable
// scans — as a forward to the boxed value, so per-engine physical
// strategies survive the indirection and a newly added trait method can
// never silently fall back to its default here.

impl<T: GraphSnapshot + ?Sized> GraphSnapshot for Box<T> {
    crate::forward_graph_snapshot!(target = |s| (**s));
}

impl<T: GraphDb + ?Sized> GraphDb for Box<T> {
    crate::forward_graph_db!(target = |s| (**s));
}

/// A timeout helper used by the runner: the paper's per-query budget.
#[derive(Debug, Clone, Copy)]
pub struct TimeBudget {
    /// Wall-clock budget for one query execution.
    pub per_query: Duration,
}

impl Default for TimeBudget {
    fn default() -> Self {
        // The paper uses 2 hours on server hardware with up to 314M edges;
        // scaled-down datasets get a proportionally scaled-down default.
        TimeBudget {
            per_query: Duration::from_secs(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::In.reverse(), Direction::Out);
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::Both.reverse(), Direction::Both);
    }

    #[test]
    fn space_report_totals() {
        let mut r = SpaceReport::default();
        r.add("a", 10);
        r.add("b", 32);
        assert_eq!(r.total(), 42);
        assert_eq!(r.components.len(), 2);
    }

    #[test]
    fn load_options_default_is_bulk() {
        assert!(LoadOptions::default().bulk);
        assert!(!LoadOptions::default().index_during_load);
    }
}
