//! Fast integer-friendly hashing (FxHash-style) without external crates.
//!
//! The engines key most of their internal maps by `u64` ids; the default
//! SipHash hasher of `std::collections::HashMap` is measurably slow for such
//! keys (see the Rust Performance Book, "Hashing"). This module implements the
//! multiply-rotate hash used by rustc's `FxHasher` — low quality but extremely
//! fast, and HashDoS is not a concern for an in-process benchmark suite.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc "Fx" hash: for each word, `hash = (rotl(hash, 5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Standalone convenience: hash a single `u64` with the Fx mix. Useful for
/// engines that need a cheap deterministic scramble (e.g. hash partitioning).
#[inline]
pub fn fx_mix(word: u64) -> u64 {
    word.rotate_left(ROTATE).wrapping_mul(SEED64)
}

/// Hash an arbitrary byte string with [`FxHasher`]; used where engines need a
/// stable digest of a label or property name.
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_bytes(b"person"), fx_hash_bytes(b"person"));
        assert_ne!(fx_hash_bytes(b"person"), fx_hash_bytes(b"persons"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn set_distinguishes_values() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(1);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tail_bytes_affect_hash() {
        // Distinct lengths with a shared prefix must not collide trivially.
        assert_ne!(fx_hash_bytes(b"abcdefgh"), fx_hash_bytes(b"abcdefg"));
        assert_ne!(fx_hash_bytes(b""), fx_hash_bytes(b"\0"));
    }

    #[test]
    fn mix_is_not_identity() {
        assert_ne!(fx_mix(1), 1);
        assert_ne!(fx_mix(1), fx_mix(2));
    }
}
