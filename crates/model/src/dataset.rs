//! Canonical in-memory datasets.
//!
//! A [`Dataset`] is the engine-independent form of a graph: what the paper
//! stores as a GraphSON file and feeds to every system. Generators in
//! `gm-datasets` produce `Dataset`s; [`GraphDb::bulk_load`](crate::GraphDb)
//! consumes them; the statistics module derives Table 3 from them.
//!
//! Canonical ids are dense (`0..vertices.len()`), which the generators
//! guarantee and [`Dataset::validate`] checks. Engines map canonical ids to
//! their internal ids at load time.

use crate::value::{prop_get, Props, Value};

/// A vertex in canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct DsVertex {
    /// Canonical id, equal to the index in [`Dataset::vertices`].
    pub id: u64,
    /// Vertex label (type), e.g. `"author"`, `"person"`, `"protein"`.
    pub label: String,
    /// Properties.
    pub props: Props,
}

/// An edge in canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct DsEdge {
    /// Canonical id, equal to the index in [`Dataset::edges`].
    pub id: u64,
    /// Canonical id of the source vertex.
    pub src: u64,
    /// Canonical id of the destination vertex.
    pub dst: u64,
    /// Edge label. In the paper's model every edge has a label.
    pub label: String,
    /// Properties (only the LDBC dataset populates these — §5, *Datasets*).
    pub props: Props,
}

/// An engine-independent graph dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Short dataset name (`"yeast"`, `"mico"`, `"frb-s"`, `"ldbc"`, …).
    pub name: String,
    /// Vertices, indexed by canonical id.
    pub vertices: Vec<DsVertex>,
    /// Edges, indexed by canonical id.
    pub edges: Vec<DsEdge>,
}

impl Dataset {
    /// Create an empty dataset with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Dataset {
            name: name.into(),
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Append a vertex, assigning the next canonical id. Returns the id.
    pub fn add_vertex(&mut self, label: impl Into<String>, props: Props) -> u64 {
        let id = self.vertices.len() as u64;
        self.vertices.push(DsVertex {
            id,
            label: label.into(),
            props,
        });
        id
    }

    /// Append an edge, assigning the next canonical id. Returns the id.
    ///
    /// Panics in debug builds if an endpoint is out of range; release-mode
    /// validation is done by [`Dataset::validate`].
    pub fn add_edge(&mut self, src: u64, dst: u64, label: impl Into<String>, props: Props) -> u64 {
        debug_assert!((src as usize) < self.vertices.len(), "src out of range");
        debug_assert!((dst as usize) < self.vertices.len(), "dst out of range");
        let id = self.edges.len() as u64;
        self.edges.push(DsEdge {
            id,
            src,
            dst,
            label: label.into(),
            props,
        });
        id
    }

    /// Check structural invariants: dense ids and in-range endpoints.
    pub fn validate(&self) -> Result<(), String> {
        for (i, v) in self.vertices.iter().enumerate() {
            if v.id != i as u64 {
                return Err(format!("vertex at index {i} has id {}", v.id));
            }
        }
        let n = self.vertices.len() as u64;
        for (i, e) in self.edges.iter().enumerate() {
            if e.id != i as u64 {
                return Err(format!("edge at index {i} has id {}", e.id));
            }
            if e.src >= n || e.dst >= n {
                return Err(format!(
                    "edge {} references missing vertex ({} -> {}, |V| = {n})",
                    e.id, e.src, e.dst
                ));
            }
        }
        Ok(())
    }

    /// Distinct edge labels, sorted. |L| of Table 3.
    pub fn edge_label_set(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self.edges.iter().map(|e| e.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Distinct vertex labels, sorted.
    pub fn vertex_label_set(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self.vertices.iter().map(|v| v.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Out-degree, in-degree and total degree per vertex.
    pub fn degrees(&self) -> Vec<DegreeEntry> {
        let mut deg = vec![
            DegreeEntry {
                out_deg: 0,
                in_deg: 0
            };
            self.vertices.len()
        ];
        for e in &self.edges {
            deg[e.src as usize].out_deg += 1;
            deg[e.dst as usize].in_deg += 1;
        }
        deg
    }

    /// Build a CSR-style undirected adjacency for statistics algorithms
    /// (connected components, diameter estimation, modularity).
    pub fn undirected_adjacency(&self) -> Adjacency {
        let n = self.vertices.len();
        let mut degree = vec![0u32; n];
        for e in &self.edges {
            degree[e.src as usize] += 1;
            degree[e.dst as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0u64);
        for d in &degree {
            acc += *d as u64;
            offsets.push(acc);
        }
        let mut targets = vec![0u32; acc as usize];
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for e in &self.edges {
            let (s, d) = (e.src as usize, e.dst as usize);
            targets[cursor[s] as usize] = e.dst as u32;
            cursor[s] += 1;
            targets[cursor[d] as usize] = e.src as u32;
            cursor[d] += 1;
        }
        Adjacency { offsets, targets }
    }

    /// Sum of the name/value byte sizes of all properties — the "raw data"
    /// yardstick used in the space experiment.
    pub fn approx_property_bytes(&self) -> u64 {
        let props_bytes = |props: &Props| {
            props
                .iter()
                .map(|(n, v)| n.len() as u64 + v.approx_bytes())
                .sum::<u64>()
        };
        self.vertices
            .iter()
            .map(|v| props_bytes(&v.props))
            .sum::<u64>()
            + self
                .edges
                .iter()
                .map(|e| props_bytes(&e.props))
                .sum::<u64>()
    }

    /// Look up a vertex property by canonical id (generator-side helper).
    pub fn vertex_prop(&self, id: u64, name: &str) -> Option<&Value> {
        self.vertices
            .get(id as usize)
            .and_then(|v| prop_get(&v.props, name))
    }
}

/// Per-vertex degree counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeEntry {
    /// Number of outgoing edges.
    pub out_deg: u32,
    /// Number of incoming edges.
    pub in_deg: u32,
}

impl DegreeEntry {
    /// Total degree (in + out).
    pub fn total(&self) -> u32 {
        self.out_deg + self.in_deg
    }
}

/// Compressed sparse row adjacency (undirected view of the graph).
#[derive(Debug, Clone)]
pub struct Adjacency {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    pub offsets: Vec<u64>,
    /// Concatenated neighbor lists.
    pub targets: Vec<u32>,
}

impl Adjacency {
    /// Neighbors of vertex `v` (with multiplicity; self-loops appear twice).
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::new("tiny");
        let a = d.add_vertex("person", vec![("name".into(), Value::Str("ann".into()))]);
        let b = d.add_vertex("person", vec![("name".into(), Value::Str("bob".into()))]);
        let c = d.add_vertex("city", vec![]);
        d.add_edge(a, b, "knows", vec![]);
        d.add_edge(b, c, "lives_in", vec![]);
        d.add_edge(a, c, "lives_in", vec![]);
        d
    }

    #[test]
    fn ids_are_dense_and_valid() {
        let d = tiny();
        assert_eq!(d.vertex_count(), 3);
        assert_eq!(d.edge_count(), 3);
        d.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_endpoint() {
        let mut d = tiny();
        d.edges[0].dst = 99;
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_catches_non_dense_ids() {
        let mut d = tiny();
        d.vertices[1].id = 7;
        assert!(d.validate().is_err());
    }

    #[test]
    fn label_sets_are_sorted_distinct() {
        let d = tiny();
        assert_eq!(d.edge_label_set(), vec!["knows", "lives_in"]);
        assert_eq!(d.vertex_label_set(), vec!["city", "person"]);
    }

    #[test]
    fn degrees_count_directionally() {
        let d = tiny();
        let deg = d.degrees();
        assert_eq!(
            deg[0],
            DegreeEntry {
                out_deg: 2,
                in_deg: 0
            }
        );
        assert_eq!(
            deg[1],
            DegreeEntry {
                out_deg: 1,
                in_deg: 1
            }
        );
        assert_eq!(
            deg[2],
            DegreeEntry {
                out_deg: 0,
                in_deg: 2
            }
        );
        assert_eq!(deg[2].total(), 2);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let d = tiny();
        let adj = d.undirected_adjacency();
        assert_eq!(adj.len(), 3);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.neighbors(2).len(), 2);
        // total slots == 2|E|
        assert_eq!(adj.targets.len(), 6);
    }

    #[test]
    fn property_bytes_positive() {
        assert!(tiny().approx_property_bytes() > 0);
    }

    #[test]
    fn vertex_prop_lookup() {
        let d = tiny();
        assert_eq!(d.vertex_prop(0, "name"), Some(&Value::Str("ann".into())));
        assert_eq!(d.vertex_prop(2, "name"), None);
        assert_eq!(d.vertex_prop(99, "name"), None);
    }
}
