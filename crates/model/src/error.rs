//! Error type shared by engines, traversal layer and benchmark runner.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type GdbResult<T> = Result<T, GdbError>;

/// Errors surfaced by graph engines and the query machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdbError {
    /// The cooperative deadline of a [`QueryCtx`](crate::QueryCtx) expired.
    ///
    /// This is the in-process analogue of the paper's 2-hour query timeout;
    /// the runner records it as a *did-not-complete* for Figure 1(c).
    Timeout,
    /// A vertex referenced by internal id does not exist (wrong id or deleted).
    VertexNotFound(u64),
    /// An edge referenced by internal id does not exist (wrong id or deleted).
    EdgeNotFound(u64),
    /// The operation is not supported by this engine (paper Table 1 gaps,
    /// e.g. an engine without user-controllable attribute indexes).
    Unsupported(String),
    /// An invariant of the engine's physical storage was violated. Seeing this
    /// in practice is a bug in the engine, never a user error.
    Corrupt(String),
    /// The caller supplied an invalid argument (empty label, NaN property
    /// used as a key, …).
    Invalid(String),
    /// An engine-specific resource budget was exhausted (e.g. the bitmap
    /// engine's intermediate-materialization cap, mirroring the Sparksee
    /// memory-exhaustion failures of §6.4).
    ResourceExhausted(String),
    /// I/O or parse failure while reading a GraphSON file.
    Io(String),
    /// A shared engine lock was poisoned: a writer panicked mid-mutation and
    /// may have left the engine half-mutated. Unlike [`GdbError::Corrupt`]
    /// (an engine bug detected by the engine itself), this is a harness-level
    /// signal that the run must abort rather than keep measuring against
    /// unreliable state.
    Poisoned(String),
    /// A write transaction lost the first-committer-wins race: another
    /// commit published a conflicting write set after this transaction
    /// pinned its read epoch. The transaction's buffered writes were
    /// discarded; the caller may retry against a fresh epoch.
    TxnConflict(String),
}

impl fmt::Display for GdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdbError::Timeout => write!(f, "query exceeded its deadline"),
            GdbError::VertexNotFound(id) => write!(f, "vertex v{id} not found"),
            GdbError::EdgeNotFound(id) => write!(f, "edge e{id} not found"),
            GdbError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            GdbError::Corrupt(what) => write!(f, "storage corruption detected: {what}"),
            GdbError::Invalid(what) => write!(f, "invalid argument: {what}"),
            GdbError::ResourceExhausted(what) => write!(f, "resource exhausted: {what}"),
            GdbError::Io(what) => write!(f, "i/o error: {what}"),
            GdbError::Poisoned(what) => {
                write!(f, "engine lock poisoned by a panicking writer: {what}")
            }
            GdbError::TxnConflict(what) => write!(f, "transaction conflict: {what}"),
        }
    }
}

impl std::error::Error for GdbError {}

impl From<std::io::Error> for GdbError {
    fn from(e: std::io::Error) -> Self {
        GdbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(GdbError::Timeout.to_string(), "query exceeded its deadline");
        assert_eq!(
            GdbError::VertexNotFound(3).to_string(),
            "vertex v3 not found"
        );
        assert!(GdbError::Unsupported("x".into()).to_string().contains("x"));
        assert!(GdbError::Poisoned("worker 3".into())
            .to_string()
            .contains("poisoned"));
        assert!(GdbError::TxnConflict("vertex v9".into())
            .to_string()
            .contains("conflict"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GdbError = io.into();
        assert!(matches!(e, GdbError::Io(_)));
    }
}
