//! Declarative forwarding for [`GraphSnapshot`](crate::GraphSnapshot) /
//! [`GraphDb`](crate::GraphDb) delegation impls.
//!
//! The workspace grew ~20 hand-written forwarding impls (`Box<T>`, remote
//! proxies, sharded composites, MVCC views). Each one is a trap: when a new
//! method with a default body lands on `GraphSnapshot`, every hand-written
//! impl that forgets to forward it silently falls back to the default —
//! the compiler can't object, and the benchmark quietly measures the wrong
//! code path (a composite answering `degree_scan` per-vertex instead of via
//! its engines' overrides, say). These macros generate the *entire* method
//! surface from one line, so a forwarding impl is complete by construction;
//! the `gm-check` delegation lint treats an impl containing an invocation
//! as fully overriding and flags hand-written impls that miss a method.
//!
//! Usage — the one argument is a closure-shaped binder naming `self` and
//! producing the forwarding target (a place or value whose type implements
//! the trait):
//!
//! ```ignore
//! impl<T: GraphSnapshot + ?Sized> GraphSnapshot for Box<T> {
//!     gm_model::forward_graph_snapshot!(target = |s| (**s));
//! }
//! impl<E: GraphDb> GraphDb for ShardedGraph<E> {
//!     gm_model::forward_graph_db!(target = |s| SharedWriter::new(s));
//! }
//! ```
//!
//! For `forward_graph_snapshot!` the target is evaluated with `$s` bound to
//! `&self`; for `forward_graph_db!` with `$s` bound to `&mut self`, and the
//! target may be a freshly constructed routing handle (its methods are
//! invoked by auto-ref, so a temporary works).

/// Generate every [`GraphSnapshot`](crate::GraphSnapshot) method as a
/// forward to `target`. See the [module docs](crate::forward).
#[macro_export]
macro_rules! forward_graph_snapshot {
    (target = |$s:ident| $t:expr) => {
        fn name(&self) -> ::std::string::String {
            let $s = self;
            $t.name()
        }
        fn features(&self) -> $crate::api::EngineFeatures {
            let $s = self;
            $t.features()
        }
        fn epoch(&self) -> u64 {
            let $s = self;
            $t.epoch()
        }
        fn resolve_vertex(&self, canonical: u64) -> ::std::option::Option<$crate::ids::Vid> {
            let $s = self;
            $t.resolve_vertex(canonical)
        }
        fn resolve_edge(&self, canonical: u64) -> ::std::option::Option<$crate::ids::Eid> {
            let $s = self;
            $t.resolve_edge(canonical)
        }
        fn vertex_count(&self, ctx: &$crate::ctx::QueryCtx) -> $crate::error::GdbResult<u64> {
            let $s = self;
            $t.vertex_count(ctx)
        }
        fn edge_count(&self, ctx: &$crate::ctx::QueryCtx) -> $crate::error::GdbResult<u64> {
            let $s = self;
            $t.edge_count(ctx)
        }
        fn edge_label_set(
            &self,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<::std::string::String>> {
            let $s = self;
            $t.edge_label_set(ctx)
        }
        fn vertices_with_property(
            &self,
            name: &str,
            value: &$crate::value::Value,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<$crate::ids::Vid>> {
            let $s = self;
            $t.vertices_with_property(name, value, ctx)
        }
        fn edges_with_property(
            &self,
            name: &str,
            value: &$crate::value::Value,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<$crate::ids::Eid>> {
            let $s = self;
            $t.edges_with_property(name, value, ctx)
        }
        fn edges_with_label(
            &self,
            label: &str,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<$crate::ids::Eid>> {
            let $s = self;
            $t.edges_with_label(label, ctx)
        }
        fn vertex(
            &self,
            v: $crate::ids::Vid,
        ) -> $crate::error::GdbResult<::std::option::Option<$crate::api::VertexData>> {
            let $s = self;
            $t.vertex(v)
        }
        fn edge(
            &self,
            e: $crate::ids::Eid,
        ) -> $crate::error::GdbResult<::std::option::Option<$crate::api::EdgeData>> {
            let $s = self;
            $t.edge(e)
        }
        fn neighbors(
            &self,
            v: $crate::ids::Vid,
            dir: $crate::api::Direction,
            label: ::std::option::Option<&str>,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<$crate::ids::Vid>> {
            let $s = self;
            $t.neighbors(v, dir, label, ctx)
        }
        fn vertex_edges(
            &self,
            v: $crate::ids::Vid,
            dir: $crate::api::Direction,
            label: ::std::option::Option<&str>,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<$crate::api::EdgeRef>> {
            let $s = self;
            $t.vertex_edges(v, dir, label, ctx)
        }
        fn vertex_degree(
            &self,
            v: $crate::ids::Vid,
            dir: $crate::api::Direction,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<u64> {
            let $s = self;
            $t.vertex_degree(v, dir, ctx)
        }
        fn vertex_edge_labels(
            &self,
            v: $crate::ids::Vid,
            dir: $crate::api::Direction,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<::std::string::String>> {
            let $s = self;
            $t.vertex_edge_labels(v, dir, ctx)
        }
        fn scan_vertices<'a>(
            &'a self,
            ctx: &'a $crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<
            ::std::boxed::Box<
                dyn ::std::iter::Iterator<Item = $crate::error::GdbResult<$crate::ids::Vid>> + 'a,
            >,
        > {
            let $s = self;
            $t.scan_vertices(ctx)
        }
        fn scan_edges<'a>(
            &'a self,
            ctx: &'a $crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<
            ::std::boxed::Box<
                dyn ::std::iter::Iterator<Item = $crate::error::GdbResult<$crate::ids::Eid>> + 'a,
            >,
        > {
            let $s = self;
            $t.scan_edges(ctx)
        }
        fn vertex_property(
            &self,
            v: $crate::ids::Vid,
            name: &str,
        ) -> $crate::error::GdbResult<::std::option::Option<$crate::value::Value>> {
            let $s = self;
            $t.vertex_property(v, name)
        }
        fn edge_property(
            &self,
            e: $crate::ids::Eid,
            name: &str,
        ) -> $crate::error::GdbResult<::std::option::Option<$crate::value::Value>> {
            let $s = self;
            $t.edge_property(e, name)
        }
        fn edge_endpoints(
            &self,
            e: $crate::ids::Eid,
        ) -> $crate::error::GdbResult<::std::option::Option<($crate::ids::Vid, $crate::ids::Vid)>> {
            let $s = self;
            $t.edge_endpoints(e)
        }
        fn edge_label(
            &self,
            e: $crate::ids::Eid,
        ) -> $crate::error::GdbResult<::std::option::Option<::std::string::String>> {
            let $s = self;
            $t.edge_label(e)
        }
        fn vertex_label(
            &self,
            v: $crate::ids::Vid,
        ) -> $crate::error::GdbResult<::std::option::Option<::std::string::String>> {
            let $s = self;
            $t.vertex_label(v)
        }
        fn degree_scan(
            &self,
            dir: $crate::api::Direction,
            k: u64,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<$crate::ids::Vid>> {
            let $s = self;
            $t.degree_scan(dir, k, ctx)
        }
        fn distinct_neighbor_scan(
            &self,
            dir: $crate::api::Direction,
            ctx: &$crate::ctx::QueryCtx,
        ) -> $crate::error::GdbResult<::std::vec::Vec<$crate::ids::Vid>> {
            let $s = self;
            $t.distinct_neighbor_scan(dir, ctx)
        }
        fn has_vertex_index(&self, prop: &str) -> bool {
            let $s = self;
            $t.has_vertex_index(prop)
        }
        fn space(&self) -> $crate::api::SpaceReport {
            let $s = self;
            $t.space()
        }
    };
}

/// Generate every [`GraphDb`](crate::GraphDb) mutation as a forward to
/// `target`. See the [module docs](crate::forward).
#[macro_export]
macro_rules! forward_graph_db {
    (target = |$s:ident| $t:expr) => {
        fn bulk_load(
            &mut self,
            data: &$crate::dataset::Dataset,
            opts: &$crate::api::LoadOptions,
        ) -> $crate::error::GdbResult<$crate::api::LoadStats> {
            let $s = self;
            $t.bulk_load(data, opts)
        }
        fn add_vertex(
            &mut self,
            label: &str,
            props: &$crate::value::Props,
        ) -> $crate::error::GdbResult<$crate::ids::Vid> {
            let $s = self;
            $t.add_vertex(label, props)
        }
        fn add_edge(
            &mut self,
            src: $crate::ids::Vid,
            dst: $crate::ids::Vid,
            label: &str,
            props: &$crate::value::Props,
        ) -> $crate::error::GdbResult<$crate::ids::Eid> {
            let $s = self;
            $t.add_edge(src, dst, label, props)
        }
        fn set_vertex_property(
            &mut self,
            v: $crate::ids::Vid,
            name: &str,
            value: $crate::value::Value,
        ) -> $crate::error::GdbResult<()> {
            let $s = self;
            $t.set_vertex_property(v, name, value)
        }
        fn set_edge_property(
            &mut self,
            e: $crate::ids::Eid,
            name: &str,
            value: $crate::value::Value,
        ) -> $crate::error::GdbResult<()> {
            let $s = self;
            $t.set_edge_property(e, name, value)
        }
        fn remove_vertex(&mut self, v: $crate::ids::Vid) -> $crate::error::GdbResult<()> {
            let $s = self;
            $t.remove_vertex(v)
        }
        fn remove_edge(&mut self, e: $crate::ids::Eid) -> $crate::error::GdbResult<()> {
            let $s = self;
            $t.remove_edge(e)
        }
        fn remove_vertex_property(
            &mut self,
            v: $crate::ids::Vid,
            name: &str,
        ) -> $crate::error::GdbResult<::std::option::Option<$crate::value::Value>> {
            let $s = self;
            $t.remove_vertex_property(v, name)
        }
        fn remove_edge_property(
            &mut self,
            e: $crate::ids::Eid,
            name: &str,
        ) -> $crate::error::GdbResult<::std::option::Option<$crate::value::Value>> {
            let $s = self;
            $t.remove_edge_property(e, name)
        }
        fn create_vertex_index(&mut self, prop: &str) -> $crate::error::GdbResult<()> {
            let $s = self;
            $t.create_vertex_index(prop)
        }
        fn sync(&mut self) -> $crate::error::GdbResult<()> {
            let $s = self;
            $t.sync()
        }
    };
}
