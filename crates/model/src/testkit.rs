//! Engine conformance suite.
//!
//! Every engine crate runs [`conformance_suite`] in its tests: it loads a
//! small, hand-checkable dataset and asserts the *semantics* of every
//! [`GraphDb`] method. The whole benchmark rests on all engines giving
//! identical answers — only their latencies may differ — so this suite is
//! the first line of defence, complemented by the cross-engine equivalence
//! tests in the workspace's `tests/` directory.

use std::time::Duration;

use crate::api::{Direction, GraphDb, LoadOptions};
use crate::ctx::QueryCtx;
use crate::dataset::Dataset;
use crate::error::GdbError;
use crate::value::Value;

/// A small social-style graph with every feature the trait exercises:
/// parallel edges, self-loops, multiple labels, properties on both
/// vertices and edges, and an isolated vertex.
///
/// ```text
///   v0(ann)   --knows-->  v1(bob)   --knows-->  v2(col)
///   v0        --knows-->  v1                  (parallel edge)
///   v2        --likes-->  v0
///   v2        --likes-->  v2                  (self-loop)
///   v3(dan)   (isolated, label "robot")
///   v4(eve)   --follows-> v0
/// ```
pub fn tiny_dataset() -> Dataset {
    let mut d = Dataset::new("testkit-tiny");
    let v0 = d.add_vertex(
        "person",
        vec![
            ("name".into(), Value::Str("ann".into())),
            ("age".into(), Value::Int(30)),
        ],
    );
    let v1 = d.add_vertex(
        "person",
        vec![
            ("name".into(), Value::Str("bob".into())),
            ("age".into(), Value::Int(25)),
        ],
    );
    let v2 = d.add_vertex(
        "person",
        vec![
            ("name".into(), Value::Str("col".into())),
            ("age".into(), Value::Int(30)),
        ],
    );
    let v3 = d.add_vertex("robot", vec![("name".into(), Value::Str("dan".into()))]);
    let v4 = d.add_vertex("person", vec![("name".into(), Value::Str("eve".into()))]);
    let _ = v3;
    d.add_edge(v0, v1, "knows", vec![("since".into(), Value::Int(2010))]);
    d.add_edge(v1, v2, "knows", vec![("since".into(), Value::Int(2012))]);
    d.add_edge(v0, v1, "knows", vec![]); // parallel
    d.add_edge(v2, v0, "likes", vec![("weight".into(), Value::Float(0.5))]);
    d.add_edge(v2, v2, "likes", vec![]); // self-loop
    d.add_edge(v4, v0, "follows", vec![]);
    d
}

/// A larger random-ish graph used for scan/timeout checks.
pub fn chain_dataset(n: u64) -> Dataset {
    let mut d = Dataset::new("testkit-chain");
    for i in 0..n {
        d.add_vertex(
            if i % 3 == 0 { "even" } else { "odd" },
            vec![("idx".into(), Value::Int(i as i64))],
        );
    }
    for i in 0..n.saturating_sub(1) {
        d.add_edge(i, i + 1, if i % 2 == 0 { "next" } else { "link" }, vec![]);
    }
    d
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// Run the full conformance battery against a fresh engine from `make`.
///
/// Panics with a descriptive message on the first violation.
pub fn conformance_suite(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    check_load_and_reads(&mut *make);
    check_traversals(&mut *make);
    check_mutations(&mut *make);
    check_deletes(&mut *make);
    check_indexes(&mut *make);
    check_timeouts(&mut *make);
    check_degree_scan(&mut *make);
    check_space_and_features(&mut *make);
}

fn load_tiny(make: &mut dyn FnMut() -> Box<dyn GraphDb>) -> Box<dyn GraphDb> {
    let mut db = make();
    let stats = db
        .bulk_load(&tiny_dataset(), &LoadOptions::default())
        .expect("bulk_load failed");
    assert_eq!(stats.vertices, 5, "load stats vertices");
    assert_eq!(stats.edges, 6, "load stats edges");
    db
}

/// Map canonical vertex ids to internal ones for assertion convenience.
fn vids(db: &dyn GraphDb) -> Vec<crate::Vid> {
    (0..5)
        .map(|c| {
            db.resolve_vertex(c)
                .unwrap_or_else(|| panic!("canonical v{c} unmapped"))
        })
        .collect()
}

fn check_load_and_reads(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let db = load_tiny(make);
    let ctx = QueryCtx::unbounded();

    assert_eq!(db.vertex_count(&ctx).unwrap(), 5, "Q8 vertex count");
    assert_eq!(db.edge_count(&ctx).unwrap(), 6, "Q9 edge count");

    let mut labels = db.edge_label_set(&ctx).unwrap();
    labels.sort();
    assert_eq!(labels, vec!["follows", "knows", "likes"], "Q10 label set");

    let v = vids(db.as_ref());

    // Q11: vertices with age == 30 -> ann, col.
    let hits = db
        .vertices_with_property("age", &Value::Int(30), &ctx)
        .unwrap();
    assert_eq!(
        sorted(hits.iter().map(|x| x.0).collect()),
        sorted(vec![v[0].0, v[2].0]),
        "Q11 property search"
    );
    // Missing property value.
    assert!(db
        .vertices_with_property("age", &Value::Int(99), &ctx)
        .unwrap()
        .is_empty());

    // Q12: edges with since == 2012.
    let hits = db
        .edges_with_property("since", &Value::Int(2012), &ctx)
        .unwrap();
    assert_eq!(hits.len(), 1, "Q12 edge property search");

    // Q13: edges labeled "knows" -> 3.
    assert_eq!(
        db.edges_with_label("knows", &ctx).unwrap().len(),
        3,
        "Q13 label search"
    );
    assert_eq!(db.edges_with_label("nope", &ctx).unwrap().len(), 0);

    // Q14: vertex by id.
    let vd = db.vertex(v[0]).unwrap().expect("v0 exists");
    assert_eq!(vd.label, "person");
    assert_eq!(
        vd.props.iter().find(|(n, _)| n == "name").map(|(_, v)| v),
        Some(&Value::Str("ann".into())),
        "Q14 materializes properties"
    );

    // Q15: edge by id.
    let e0 = db.resolve_edge(0).expect("canonical e0");
    let ed = db.edge(e0).unwrap().expect("e0 exists");
    assert_eq!(ed.label, "knows");
    assert_eq!((ed.src, ed.dst), (v[0], v[1]), "Q15 endpoints");
    assert_eq!(
        ed.props.iter().find(|(n, _)| n == "since").map(|(_, v)| v),
        Some(&Value::Int(2010))
    );

    // Scans visit everything exactly once.
    let scanned: Vec<u64> = db
        .scan_vertices(&ctx)
        .unwrap()
        .map(|r| r.unwrap().0)
        .collect();
    assert_eq!(scanned.len(), 5, "vertex scan cardinality");
    let scanned_e: Vec<u64> = db.scan_edges(&ctx).unwrap().map(|r| r.unwrap().0).collect();
    assert_eq!(scanned_e.len(), 6, "edge scan cardinality");

    // Accessors.
    assert_eq!(db.vertex_label(v[3]).unwrap().as_deref(), Some("robot"));
    assert_eq!(db.edge_label(e0).unwrap().as_deref(), Some("knows"));
    assert_eq!(db.edge_endpoints(e0).unwrap(), Some((v[0], v[1])));
    assert_eq!(
        db.vertex_property(v[1], "age").unwrap(),
        Some(Value::Int(25))
    );
    assert_eq!(db.vertex_property(v[1], "nope").unwrap(), None);
    assert_eq!(
        db.edge_property(e0, "since").unwrap(),
        Some(Value::Int(2010))
    );
}

fn check_traversals(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let db = load_tiny(make);
    let ctx = QueryCtx::unbounded();
    let v = vids(db.as_ref());

    // Q23 out(): v0 -> bob twice (parallel edges count).
    let out = db.neighbors(v[0], Direction::Out, None, &ctx).unwrap();
    assert_eq!(
        sorted(out.iter().map(|x| x.0).collect()),
        sorted(vec![v[1].0, v[1].0]),
        "Q23 out neighbors with parallel edge"
    );

    // Q22 in(): v0 <- col, eve.
    let inn = db.neighbors(v[0], Direction::In, None, &ctx).unwrap();
    assert_eq!(
        sorted(inn.iter().map(|x| x.0).collect()),
        sorted(vec![v[2].0, v[4].0]),
        "Q22 in neighbors"
    );

    // Q24 both('likes') at v2: likes-out to v0, self-loop twice.
    let both = db
        .neighbors(v[2], Direction::Both, Some("likes"), &ctx)
        .unwrap();
    assert_eq!(
        sorted(both.iter().map(|x| x.0).collect()),
        sorted(vec![v[0].0, v[2].0, v[2].0]),
        "Q24 labeled both() with self-loop seen from both ends"
    );

    // Labeled filter with no matches.
    assert!(db
        .neighbors(v[0], Direction::Out, Some("likes"), &ctx)
        .unwrap()
        .is_empty());

    // Degrees (Q28-30 predicate).
    assert_eq!(db.vertex_degree(v[0], Direction::Out, &ctx).unwrap(), 2);
    assert_eq!(db.vertex_degree(v[0], Direction::In, &ctx).unwrap(), 2);
    assert_eq!(db.vertex_degree(v[0], Direction::Both, &ctx).unwrap(), 4);
    assert_eq!(
        db.vertex_degree(v[2], Direction::Both, &ctx).unwrap(),
        4,
        "self-loop counts twice in both()"
    );
    assert_eq!(db.vertex_degree(v[3], Direction::Both, &ctx).unwrap(), 0);

    // Q25-27 edge label sets.
    let mut labels = db.vertex_edge_labels(v[0], Direction::Both, &ctx).unwrap();
    labels.sort();
    assert_eq!(labels, vec!["follows", "knows", "likes"], "Q27 both labels");
    let mut labels = db.vertex_edge_labels(v[0], Direction::Out, &ctx).unwrap();
    labels.sort();
    assert_eq!(labels, vec!["knows"], "Q26 out labels dedup");

    // vertex_edges returns matching EdgeRefs.
    let refs = db.vertex_edges(v[0], Direction::Out, None, &ctx).unwrap();
    assert_eq!(refs.len(), 2);
    assert!(refs.iter().all(|r| r.other == v[1]));
}

fn check_mutations(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let mut db = load_tiny(make);
    let ctx = QueryCtx::unbounded();
    let v = vids(db.as_ref());

    // Q2: add vertex with properties.
    let nv = db
        .add_vertex("person", &vec![("name".into(), Value::Str("fred".into()))])
        .unwrap();
    assert_eq!(db.vertex_count(&ctx).unwrap(), 6);
    assert_eq!(
        db.vertex_property(nv, "name").unwrap(),
        Some(Value::Str("fred".into()))
    );

    // Q3/Q4: add edges.
    let ne = db.add_edge(nv, v[0], "knows", &vec![]).unwrap();
    assert_eq!(db.edge_count(&ctx).unwrap(), 7);
    assert_eq!(db.edge_endpoints(ne).unwrap(), Some((nv, v[0])));
    let ne2 = db
        .add_edge(nv, v[1], "rated", &vec![("stars".into(), Value::Int(5))])
        .unwrap();
    assert_eq!(db.edge_property(ne2, "stars").unwrap(), Some(Value::Int(5)));
    assert!(
        db.edge_label_set(&ctx)
            .unwrap()
            .contains(&"rated".to_string()),
        "new edge label appears in Q10"
    );

    // Q5/Q16: set vertex property (new + update).
    db.set_vertex_property(nv, "age", Value::Int(40)).unwrap();
    assert_eq!(db.vertex_property(nv, "age").unwrap(), Some(Value::Int(40)));
    db.set_vertex_property(nv, "age", Value::Int(41)).unwrap();
    assert_eq!(db.vertex_property(nv, "age").unwrap(), Some(Value::Int(41)));

    // Q6/Q17: set edge property.
    db.set_edge_property(ne, "since", Value::Int(2024)).unwrap();
    assert_eq!(
        db.edge_property(ne, "since").unwrap(),
        Some(Value::Int(2024))
    );

    // Adding an edge to a missing vertex fails.
    let missing = crate::Vid(u64::MAX - 7);
    assert!(db.add_edge(missing, v[0], "x", &vec![]).is_err());

    // Mutations visible to search after sync.
    db.sync().unwrap();
    let hits = db
        .vertices_with_property("name", &Value::Str("fred".into()), &ctx)
        .unwrap();
    assert_eq!(hits, vec![nv], "new vertex findable by property");
}

fn check_deletes(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let mut db = load_tiny(make);
    let ctx = QueryCtx::unbounded();
    let v = vids(db.as_ref());
    let e0 = db.resolve_edge(0).unwrap();

    // Q20/Q21 property removal.
    assert_eq!(
        db.remove_vertex_property(v[0], "age").unwrap(),
        Some(Value::Int(30))
    );
    assert_eq!(db.remove_vertex_property(v[0], "age").unwrap(), None);
    assert_eq!(db.vertex_property(v[0], "age").unwrap(), None);
    assert_eq!(
        db.remove_edge_property(e0, "since").unwrap(),
        Some(Value::Int(2010))
    );
    assert_eq!(db.edge_property(e0, "since").unwrap(), None);

    // Q19: edge removal.
    db.remove_edge(e0).unwrap();
    assert_eq!(db.edge_count(&ctx).unwrap(), 5);
    assert_eq!(db.edge(e0).unwrap(), None);
    assert!(db.remove_edge(e0).is_err(), "double edge delete errors");
    // v0 -> v1 still connected via the parallel edge.
    let out = db.neighbors(v[0], Direction::Out, None, &ctx).unwrap();
    assert_eq!(out, vec![v[1]], "parallel edge survives");

    // Q18: vertex removal cascades to incident edges.
    db.remove_vertex(v[2]).unwrap();
    assert_eq!(db.vertex_count(&ctx).unwrap(), 4);
    // col had: in knows from bob, out likes to ann, self-loop likes = 3 edges.
    assert_eq!(
        db.edge_count(&ctx).unwrap(),
        2,
        "cascade removed col's 3 edges"
    );
    assert_eq!(db.vertex(v[2]).unwrap(), None);
    assert!(db.remove_vertex(v[2]).is_err());
    // ann's in-neighbors no longer include col.
    let inn = db.neighbors(v[0], Direction::In, None, &ctx).unwrap();
    assert_eq!(inn, vec![v[4]]);
    // Scans reflect deletions.
    assert_eq!(db.scan_edges(&ctx).unwrap().count(), 2);
    assert_eq!(db.scan_vertices(&ctx).unwrap().count(), 4);
}

fn check_indexes(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let mut db = load_tiny(make);
    let ctx = QueryCtx::unbounded();
    if !db.features().attribute_indexes {
        assert!(matches!(
            db.create_vertex_index("name"),
            Err(GdbError::Unsupported(_))
        ));
        return;
    }
    let before = db
        .vertices_with_property("name", &Value::Str("ann".into()), &ctx)
        .unwrap();
    db.create_vertex_index("name").unwrap();
    assert!(db.has_vertex_index("name"));
    assert!(!db.has_vertex_index("other"));
    let after = db
        .vertices_with_property("name", &Value::Str("ann".into()), &ctx)
        .unwrap();
    assert_eq!(
        sorted(before.iter().map(|x| x.0).collect()),
        sorted(after.iter().map(|x| x.0).collect()),
        "index must not change results"
    );
    // Index stays correct under mutation.
    let nv = db
        .add_vertex("person", &vec![("name".into(), Value::Str("ann".into()))])
        .unwrap();
    db.sync().unwrap();
    let hits = db
        .vertices_with_property("name", &Value::Str("ann".into()), &ctx)
        .unwrap();
    assert_eq!(hits.len(), after.len() + 1, "index sees inserts");
    db.remove_vertex(nv).unwrap();
    let hits = db
        .vertices_with_property("name", &Value::Str("ann".into()), &ctx)
        .unwrap();
    assert_eq!(hits.len(), after.len(), "index sees deletes");
    // Property update moves the entry.
    let target = hits[0];
    db.set_vertex_property(target, "name", Value::Str("zoe".into()))
        .unwrap();
    let hits = db
        .vertices_with_property("name", &Value::Str("zoe".into()), &ctx)
        .unwrap();
    assert!(hits.contains(&target), "index sees updates");
}

fn check_timeouts(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let mut db = make();
    db.bulk_load(&chain_dataset(20_000), &LoadOptions::default())
        .expect("chain load");
    // An already-expired context must abort a full scan with Timeout.
    let ctx = QueryCtx::with_timeout(Duration::from_millis(0));
    std::thread::sleep(Duration::from_millis(2));
    let outcome = db.vertex_count(&ctx);
    assert_eq!(
        outcome,
        Err(GdbError::Timeout),
        "scan must observe the deadline ({})",
        db.name()
    );
}

fn check_degree_scan(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let db = load_tiny(make);
    let ctx = QueryCtx::unbounded();
    let v = vids(db.as_ref());
    // Vertices with both-degree >= 4: ann (4) and col (4).
    let hits = db.degree_scan(Direction::Both, 4, &ctx);
    match hits {
        Ok(hits) => {
            assert_eq!(
                sorted(hits.iter().map(|x| x.0).collect()),
                sorted(vec![v[0].0, v[2].0]),
                "Q30 degree scan"
            );
            // k = 0 matches everything.
            assert_eq!(db.degree_scan(Direction::Both, 0, &ctx).unwrap().len(), 5);
        }
        Err(GdbError::ResourceExhausted(_)) => {
            // Acceptable: the bitmap engine's adapter-faithful failure mode.
        }
        Err(e) => panic!("degree_scan failed unexpectedly: {e}"),
    }
}

fn check_space_and_features(make: &mut dyn FnMut() -> Box<dyn GraphDb>) {
    let db = load_tiny(make);
    let report = db.space();
    assert!(report.total() > 0, "space report must be non-empty");
    assert!(!report.components.is_empty());
    let f = db.features();
    assert!(!f.name.is_empty());
    assert!(!f.storage.is_empty());
    assert_eq!(f.name, db.name());
}
