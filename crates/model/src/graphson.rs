//! GraphSON I/O — the suite's interchange format.
//!
//! The paper's suite stores every dataset as "GraphSON file (plain JSON)"
//! (§5, *Test Suite*). We implement the classic (TinkerPop 2 style) GraphSON
//! shape, which is the version the paper's Gremlin 2.6 queries operate on:
//!
//! ```json
//! {
//!   "graph": {
//!     "mode": "NORMAL",
//!     "vertices": [
//!       {"_id": 0, "_type": "vertex", "_label": "author", "name": "ann"}
//!     ],
//!     "edges": [
//!       {"_id": 0, "_type": "edge", "_outV": 0, "_inV": 1,
//!        "_label": "coauthor", "papers": 3}
//!     ]
//!   }
//! }
//! ```
//!
//! Property values may be strings, integers, floats or booleans. Reserved
//! keys (prefixed `_`) never collide with dataset property names — the
//! generators enforce this and the reader rejects violations.

use std::fs;
use std::path::Path;

use crate::dataset::{Dataset, DsEdge, DsVertex};
use crate::error::{GdbError, GdbResult};
use crate::json::Json;
use crate::value::{Props, Value};

/// Serialize a dataset to GraphSON text (compact JSON).
pub fn to_graphson(data: &Dataset) -> String {
    json_of_dataset(data).to_compact_string()
}

/// Serialize a dataset to pretty-printed GraphSON text.
pub fn to_graphson_pretty(data: &Dataset) -> String {
    json_of_dataset(data).to_pretty_string()
}

/// Write a dataset to a GraphSON file.
pub fn write_file(data: &Dataset, path: &Path) -> GdbResult<()> {
    fs::write(path, to_graphson(data))?;
    Ok(())
}

/// Read a dataset from a GraphSON file.
pub fn read_file(path: &Path) -> GdbResult<Dataset> {
    let text = fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    from_graphson(&text, &name)
}

/// Parse GraphSON text into a dataset.
pub fn from_graphson(text: &str, name: &str) -> GdbResult<Dataset> {
    let doc = Json::parse(text).map_err(|e| GdbError::Io(e.to_string()))?;
    let graph = doc
        .get("graph")
        .ok_or_else(|| bad("missing top-level 'graph' object"))?;
    let vertices = graph
        .get("vertices")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing 'vertices' array"))?;
    let edges = graph
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing 'edges' array"))?;

    let mut out = Dataset::new(name);
    out.vertices.reserve(vertices.len());
    for (idx, v) in vertices.iter().enumerate() {
        let id = required_int(v, "_id")?;
        if id != idx as i64 {
            return Err(bad(&format!(
                "vertex ids must be dense: saw {id} at index {idx}"
            )));
        }
        let label = v
            .get("_label")
            .and_then(Json::as_str)
            .unwrap_or("vertex")
            .to_string();
        out.vertices.push(DsVertex {
            id: id as u64,
            label,
            props: props_of(v)?,
        });
    }
    out.edges.reserve(edges.len());
    for (idx, e) in edges.iter().enumerate() {
        let id = required_int(e, "_id")?;
        if id != idx as i64 {
            return Err(bad(&format!(
                "edge ids must be dense: saw {id} at index {idx}"
            )));
        }
        let src = required_int(e, "_outV")? as u64;
        let dst = required_int(e, "_inV")? as u64;
        let label = e
            .get("_label")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("edge without '_label'"))?
            .to_string();
        out.edges.push(DsEdge {
            id: id as u64,
            src,
            dst,
            label,
            props: props_of(e)?,
        });
    }
    out.validate().map_err(|m| bad(&m))?;
    Ok(out)
}

fn bad(msg: &str) -> GdbError {
    GdbError::Io(format!("graphson: {msg}"))
}

fn required_int(obj: &Json, key: &str) -> GdbResult<i64> {
    obj.get(key)
        .and_then(Json::as_int)
        .ok_or_else(|| bad(&format!("missing integer field '{key}'")))
}

fn props_of(obj: &Json) -> GdbResult<Props> {
    let fields = match obj {
        Json::Obj(fields) => fields,
        _ => return Err(bad("element is not an object")),
    };
    let mut props = Props::new();
    for (k, v) in fields {
        if k.starts_with('_') {
            continue; // reserved key
        }
        let value = match v {
            Json::Str(s) => Value::Str(s.clone()),
            Json::Int(i) => Value::Int(*i),
            Json::Float(f) => Value::Float(*f),
            Json::Bool(b) => Value::Bool(*b),
            Json::Null => Value::Null,
            _ => return Err(bad(&format!("property '{k}' has unsupported nested value"))),
        };
        props.push((k.clone(), value));
    }
    Ok(props)
}

fn json_of_value(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

fn json_of_dataset(data: &Dataset) -> Json {
    let vertices: Vec<Json> = data
        .vertices
        .iter()
        .map(|v| {
            let mut fields = vec![
                ("_id".to_string(), Json::Int(v.id as i64)),
                ("_type".to_string(), Json::Str("vertex".into())),
                ("_label".to_string(), Json::Str(v.label.clone())),
            ];
            for (k, val) in &v.props {
                fields.push((k.clone(), json_of_value(val)));
            }
            Json::Obj(fields)
        })
        .collect();
    let edges: Vec<Json> = data
        .edges
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("_id".to_string(), Json::Int(e.id as i64)),
                ("_type".to_string(), Json::Str("edge".into())),
                ("_outV".to_string(), Json::Int(e.src as i64)),
                ("_inV".to_string(), Json::Int(e.dst as i64)),
                ("_label".to_string(), Json::Str(e.label.clone())),
            ];
            for (k, val) in &e.props {
                fields.push((k.clone(), json_of_value(val)));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![(
        "graph".to_string(),
        Json::Obj(vec![
            ("mode".to_string(), Json::Str("NORMAL".into())),
            ("vertices".to_string(), Json::Arr(vertices)),
            ("edges".to_string(), Json::Arr(edges)),
        ]),
    )])
}

/// Byte size of the dataset's GraphSON serialization — the "Raw Data (JSON)"
/// reference series of Figure 1.
pub fn raw_json_bytes(data: &Dataset) -> u64 {
    to_graphson(data).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new("sample");
        let a = d.add_vertex(
            "author",
            vec![
                ("name".into(), Value::Str("ann".into())),
                ("papers".into(), Value::Int(12)),
                ("active".into(), Value::Bool(true)),
                ("h_index".into(), Value::Float(3.5)),
            ],
        );
        let b = d.add_vertex("author", vec![("name".into(), Value::Str("bob".into()))]);
        d.add_edge(a, b, "coauthor", vec![("papers".into(), Value::Int(3))]);
        d
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = sample();
        let text = to_graphson(&d);
        let back = from_graphson(&text, "sample").unwrap();
        assert_eq!(back.vertices, d.vertices);
        assert_eq!(back.edges, d.edges);
    }

    #[test]
    fn pretty_round_trip() {
        let d = sample();
        let text = to_graphson_pretty(&d);
        let back = from_graphson(&text, "sample").unwrap();
        assert_eq!(back.vertices, d.vertices);
    }

    #[test]
    fn rejects_missing_graph_key() {
        assert!(from_graphson("{}", "x").is_err());
        assert!(from_graphson(r#"{"graph":{}}"#, "x").is_err());
    }

    #[test]
    fn rejects_non_dense_ids() {
        let text = r#"{"graph":{"mode":"NORMAL","vertices":[{"_id":5,"_type":"vertex","_label":"a"}],"edges":[]}}"#;
        assert!(from_graphson(text, "x").is_err());
    }

    #[test]
    fn rejects_dangling_edge() {
        let text = r#"{"graph":{"mode":"NORMAL","vertices":[{"_id":0,"_type":"vertex","_label":"a"}],
            "edges":[{"_id":0,"_type":"edge","_outV":0,"_inV":7,"_label":"l"}]}}"#;
        assert!(from_graphson(text, "x").is_err());
    }

    #[test]
    fn rejects_nested_property_values() {
        let text = r#"{"graph":{"mode":"NORMAL","vertices":[{"_id":0,"_type":"vertex","_label":"a","bad":[1,2]}],"edges":[]}}"#;
        assert!(from_graphson(text, "x").is_err());
    }

    #[test]
    fn file_round_trip() {
        let d = sample();
        let dir = std::env::temp_dir().join("graphmark-test-graphson");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.graphson.json");
        write_file(&d, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.vertex_count(), d.vertex_count());
        assert_eq!(back.edge_count(), d.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_bytes_nonzero() {
        assert!(raw_json_bytes(&sample()) > 100);
    }

    #[test]
    fn edge_label_required() {
        let text = r#"{"graph":{"mode":"NORMAL","vertices":[{"_id":0,"_type":"vertex","_label":"a"},
            {"_id":1,"_type":"vertex","_label":"a"}],
            "edges":[{"_id":0,"_type":"edge","_outV":0,"_inV":1}]}}"#;
        assert!(from_graphson(text, "x").is_err());
    }
}
