//! Fleet integration tests over loopback: N in-process shard servers,
//! one `Fleet` coordinator, real sockets.
//!
//! The headline guarantee is cross-process replay equality: a write-heavy
//! workload driven through a 4-server fleet produces per-op results
//! identical to the in-process `ShardedGraph` sequential replay — while
//! spending **fewer wire round trips than ops** thanks to batched,
//! pipelined dispatch.

use gm_model::testkit;
use gm_net::{run_fleet, run_fleet_sequential, Fleet, Server, ServerHandle};
use gm_workload::{MixKind, WorkloadConfig};
use graphmark::registry::EngineKind;
use graphmark::shard::run_sharded_sequential;

/// Spawn `n` single-engine shard servers, each announcing its fleet
/// identity, and return (handles, address table).
fn spawn_fleet(kind: EngineKind, n: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let mut handles = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for s in 0..n {
        let handle = Server::bind("127.0.0.1:0", Box::new(move || kind.make()))
            .expect("bind shard server")
            .with_shard_identity(s as u32, n as u32)
            .spawn()
            .expect("spawn shard server");
        addrs.push(handle.addr().to_string());
        handles.push(handle);
    }
    (handles, addrs)
}

fn cfg(mix: MixKind, threads: u32, ops: u64) -> WorkloadConfig {
    WorkloadConfig {
        mix,
        threads,
        ops_per_worker: ops,
        seed: 1234,
        record_cardinalities: true,
        ..WorkloadConfig::default()
    }
}

/// Acceptance criterion of the fleet PR: a 4-process fleet completes the
/// write-heavy mix with per-op results identical to the in-process sharded
/// replay, and batched dispatch spends fewer wire round trips than ops.
#[test]
fn fleet_write_heavy_matches_in_process_sharded_replay() {
    let data = testkit::chain_dataset(150);
    let kind = EngineKind::LinkedV2;
    let (handles, addrs) = spawn_fleet(kind, 4);

    let fleet = Fleet::connect(addrs).expect("connect fleet");
    assert_eq!(fleet.shard_count(), 4);
    assert_eq!(fleet.name(), "linked(v2)/f4");

    let c = cfg(MixKind::WriteHeavy, 3, 40);
    let epoch_before = fleet.epoch().expect("fleet epoch");
    let trips_before = fleet.round_trips();
    let remote = run_fleet_sequential(&fleet, &data, &c).expect("fleet run");
    let measured_trips = fleet.round_trips() - trips_before;

    let factory = move || kind.make();
    let local = run_sharded_sequential(&factory, 4, &data, &c).expect("local sharded replay");

    assert_eq!(
        remote.cardinality_trace(),
        local.cardinality_trace(),
        "fleet results must match the in-process sharded replay op for op"
    );
    assert_eq!(remote.errors(), 0, "no op errors across the fleet");
    assert_eq!(fleet.routing_errors(), 0, "no routing errors");
    assert!(
        fleet.batched_ops() > 0,
        "write-heavy dispatch must use ExecBatch frames"
    );
    // round_trips counts frames measured from Fleet::connect, and the
    // measured window still includes setup (load + meta probes + param
    // resolution); the run itself must stay under one frame per op, so the
    // whole window staying under ops + setup slack proves it a fortiori.
    let total_ops = 3 * 40u64;
    assert!(
        measured_trips > 0,
        "the frame counter must observe the run's traffic"
    );
    let run_trips = measured_trips.saturating_sub(setup_frames(&fleet, &data, &c));
    assert!(
        run_trips < total_ops,
        "batched dispatch must spend fewer wire round trips ({run_trips}) than ops ({total_ops})"
    );
    // Locked hosting is unversioned: the fleet epoch holds at 0, which is
    // still (trivially) monotone.
    let epoch_after = fleet.epoch().expect("fleet epoch");
    assert!(epoch_after >= epoch_before, "fleet epoch must be monotone");

    for h in handles {
        h.shutdown();
    }
}

/// Measure how many frames one `Fleet::setup` costs, so the test above can
/// subtract the setup traffic and gate the *run* alone.
fn setup_frames(fleet: &Fleet, data: &gm_model::Dataset, c: &WorkloadConfig) -> u64 {
    let before = fleet.round_trips();
    fleet.setup(data, c).expect("setup for frame measurement");
    fleet.round_trips() - before
}

/// The concurrent fleet driver completes cleanly too: per-worker
/// connections, all pacing machinery unchanged.
#[test]
fn fleet_concurrent_write_heavy_completes() {
    let data = testkit::chain_dataset(150);
    let (handles, addrs) = spawn_fleet(EngineKind::LinkedV2, 3);
    let fleet = Fleet::connect(addrs).expect("connect fleet");
    let c = cfg(MixKind::WriteHeavy, 4, 30);
    let report = run_fleet(&fleet, &data, &c).expect("concurrent fleet run");
    assert_eq!(report.ops() + report.errors(), 4 * 30);
    assert_eq!(report.errors(), 0, "no op should fail over loopback");
    assert_eq!(fleet.routing_errors(), 0);
    assert_eq!(report.engine, "linked(v2)/f3");
    for h in handles {
        h.shutdown();
    }
}

/// Read-only fleet runs close the loop with the unsharded replay as well:
/// scatter-gather reads with ghost correction return exactly what one
/// engine would.
#[test]
fn fleet_read_only_matches_unsharded_replay() {
    use gm_workload::run_sequential;

    let data = testkit::chain_dataset(150);
    let kind = EngineKind::ColumnarV10;
    let (handles, addrs) = spawn_fleet(kind, 4);
    let fleet = Fleet::connect(addrs).expect("connect fleet");
    let c = cfg(MixKind::ReadOnly, 3, 20);
    let remote = run_fleet_sequential(&fleet, &data, &c).expect("fleet run");
    let factory = move || kind.make();
    let local = run_sequential(&factory, &data, &c).expect("local replay");
    assert_eq!(
        remote.cardinality_trace(),
        local.cardinality_trace(),
        "ghost-corrected scatter-gather must match the single-engine replay"
    );
    assert_eq!(remote.errors(), 0);
    for h in handles {
        h.shutdown();
    }
}

/// Routing-table verification: dialing a server whose announced identity
/// does not match its position in the address table is refused at connect
/// time, before any op can be misrouted.
#[test]
fn fleet_refuses_a_miswired_address_table() {
    let (handles, mut addrs) = spawn_fleet(EngineKind::LinkedV1, 2);
    addrs.swap(0, 1); // shard 1's server now sits in slot 0
    match Fleet::connect(addrs) {
        Err(gm_model::GdbError::Invalid(why)) => {
            assert!(why.contains("shard identity"), "{why}");
        }
        Err(other) => panic!("a miswired fleet must fail with Invalid, got {other:?}"),
        Ok(_) => panic!("a miswired fleet must be refused"),
    }
    // A server with no identity at all is refused too.
    let plain = Server::bind("127.0.0.1:0", Box::new(|| EngineKind::LinkedV1.make()))
        .expect("bind")
        .spawn()
        .expect("spawn");
    match Fleet::connect(vec![plain.addr().to_string()]) {
        Err(gm_model::GdbError::Invalid(why)) => {
            assert!(why.contains("None"), "{why}");
        }
        Err(other) => panic!("an identity-less server must fail with Invalid, got {other:?}"),
        Ok(_) => panic!("an identity-less server must be refused"),
    }
    plain.shutdown();
    for h in handles {
        h.shutdown();
    }
}
