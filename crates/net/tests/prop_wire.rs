//! Property-based tests of the gm-net wire protocol: arbitrary
//! `QueryInstance` params and value payloads encode → decode identically,
//! and truncated/corrupt frames are rejected without panicking.

use gm_core::catalog::{QueryId, QueryInstance};
use gm_model::api::Direction;
use gm_model::{Props, Value};
use gm_net::wire::{self, Cur};
use gm_net::{Request, Response};
use gm_workload::{Op, WriteOp};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 _☃-]{0,24}".prop_map(Value::Str),
    ]
}

fn arb_props() -> impl Strategy<Value = Props> {
    prop::collection::vec(("[a-z_]{1,12}", arb_value()), 0..6)
}

fn arb_instance() -> impl Strategy<Value = QueryInstance> {
    (
        0..QueryId::ALL.len(),
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u64>()),
    )
        .prop_map(|(i, depth, k)| QueryInstance {
            id: QueryId::ALL[i],
            depth,
            k,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_instance().prop_map(Op::Read),
        prop_oneof![
            Just(WriteOp::AddVertex),
            Just(WriteOp::AddEdge),
            Just(WriteOp::SetVertexProp),
            Just(WriteOp::RemoveOwnEdge),
        ]
        .prop_map(Op::Write),
    ]
}

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::In),
        Just(Direction::Out),
        Just(Direction::Both)
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            arb_op()
        )
            .prop_map(|(worker, op_index, trace_id, timeout_micros, strict, op)| {
                Request::ExecOp {
                    worker,
                    op_index,
                    trace_id,
                    timeout_micros,
                    strict,
                    op,
                }
            }),
        ("[a-z]{1,8}", arb_props()).prop_map(|(label, props)| Request::AddVertex { label, props }),
        ("[a-z]{1,8}", arb_value(), any::<u64>())
            .prop_map(|(name, value, t)| { Request::VerticesWithProperty { name, value, t } }),
        (
            any::<u64>(),
            arb_direction(),
            prop::option::of("[a-z]{0,8}".prop_map(String::from)),
            any::<u64>()
        )
            .prop_map(|(v, dir, label, t)| Request::Neighbors { v, dir, label, t }),
        (arb_direction(), any::<u64>(), any::<u64>()).prop_map(|(dir, k, t)| Request::DegreeScan {
            dir,
            k,
            t
        }),
        (any::<u64>(), any::<u32>()).prop_map(|(seed, slots)| Request::Prepare { seed, slots }),
        Just(Request::Reset),
        Just(Request::Space),
        Just(Request::Sync),
        Just(Request::Epoch),
    ]
}

/// A v6 batch frame: any mix of (non-batch) requests. Nesting is rejected
/// by construction server-side, so the generator stays flat like the wire.
fn arb_batch() -> impl Strategy<Value = Request> {
    prop::collection::vec(arb_request(), 0..12).prop_map(Request::ExecBatch)
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Unit),
        any::<bool>().prop_map(Response::Bool),
        any::<u64>().prop_map(Response::U64),
        prop::option::of(any::<u64>()).prop_map(Response::OptU64),
        prop::collection::vec(any::<u64>(), 0..32).prop_map(Response::U64List),
        prop::collection::vec("[a-z ]{0,12}".prop_map(String::from), 0..8)
            .prop_map(Response::StrList),
        prop::option::of(arb_value()).prop_map(Response::OptValue),
        prop::option::of((any::<u64>(), any::<u64>())).prop_map(Response::OptPair),
    ]
}

/// Exact structural equality: `Value`'s `PartialEq` equates `Int(2)` with
/// `Float(2.0)`, but the codec must preserve the variant too.
fn same_value(a: &Value, b: &Value) -> bool {
    a == b && a.type_tag() == b.type_tag()
}

proptest! {
    /// Requests round-trip identically through encode → decode.
    #[test]
    fn request_round_trip(req in arb_request()) {
        let bytes = req.encode().unwrap();
        let back = Request::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &req);
        // For value-carrying requests, check variant-exactness too.
        if let (
            Request::VerticesWithProperty { value: a, .. },
            Request::VerticesWithProperty { value: b, .. },
        ) = (&req, &back)
        {
            prop_assert!(same_value(a, b));
        }
    }

    /// Responses round-trip identically.
    #[test]
    fn response_round_trip(rsp in arb_response()) {
        let bytes = rsp.encode().unwrap();
        let back = Response::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &rsp);
    }

    /// Arbitrary value payloads survive the low-level codec variant-exactly.
    #[test]
    fn value_payload_round_trip(props in arb_props()) {
        let mut out = Vec::new();
        wire::put_props(&mut out, &props).unwrap();
        let mut cur = Cur::new(&out);
        let back = cur.props().unwrap();
        cur.finish().unwrap();
        prop_assert_eq!(back.len(), props.len());
        for ((an, av), (bn, bv)) in back.iter().zip(props.iter()) {
            prop_assert_eq!(an, bn);
            prop_assert!(same_value(av, bv), "{:?} vs {:?}", av, bv);
        }
    }

    /// v6 `ExecBatch` frames round-trip identically: every entry survives
    /// in order, whatever mix of ops the client queued.
    #[test]
    fn exec_batch_round_trip(batch in arb_batch()) {
        let bytes = batch.encode().unwrap();
        let back = Request::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &batch);
    }

    /// `BatchDone` envelopes round-trip too, including entries that carry
    /// errors (a rejected op must not corrupt its successors' decode).
    #[test]
    fn batch_done_round_trip(rsps in prop::collection::vec(arb_response(), 0..12)) {
        let rsp = Response::BatchDone(rsps);
        let bytes = rsp.encode().unwrap();
        let back = Response::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &rsp);
    }

    /// Every proper prefix of a valid batch frame is rejected — truncation
    /// mid-entry never yields a shorter valid batch.
    #[test]
    fn truncated_batches_rejected(batch in arb_batch(), frac in 0.0f64..1.0) {
        let bytes = batch.encode().unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Request::decode(&bytes[..cut]).is_err());
        }
    }

    /// Single-byte corruption of a batch frame either decodes to some
    /// message or errors — never a panic, never an over-allocation (the
    /// nested-batch rejection keeps decode depth bounded too).
    #[test]
    fn corrupted_batches_never_panic(batch in arb_batch(), pos in any::<u16>(), bit in 0u8..8) {
        let mut bytes = batch.encode().unwrap();
        if !bytes.is_empty() {
            let i = (pos as usize) % bytes.len();
            bytes[i] ^= 1 << bit;
            let _ = Request::decode(&bytes);
        }
    }

    /// Every proper prefix of a valid request frame is rejected — never
    /// accepted as some other message, never a panic.
    #[test]
    fn truncated_requests_rejected(req in arb_request(), frac in 0.0f64..1.0) {
        let bytes = req.encode().unwrap();
        if !bytes.is_empty() {
            let cut = ((bytes.len() as f64) * frac) as usize;
            if cut < bytes.len() {
                prop_assert!(Request::decode(&bytes[..cut]).is_err());
            }
        }
    }

    /// Decoding arbitrary bytes never panics (it may legitimately succeed
    /// when the bytes happen to spell a valid message).
    #[test]
    fn corrupt_frames_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let mut cur = Cur::new(&bytes);
        let _ = cur.props();
    }

    /// Single-byte corruption of a valid frame either decodes to *some*
    /// message or errors — it never panics or over-allocates.
    #[test]
    fn bitflips_never_panic(req in arb_request(), pos in any::<u16>(), bit in 0u8..8) {
        let mut bytes = req.encode().unwrap();
        if !bytes.is_empty() {
            let i = (pos as usize) % bytes.len();
            bytes[i] ^= 1 << bit;
            let _ = Request::decode(&bytes);
        }
    }
}
