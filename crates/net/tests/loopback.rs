//! Loopback integration tests: a real server on `127.0.0.1`, real client
//! connections, every engine variant.
//!
//! The headline guarantee is the cross-engine determinism contract: a
//! read-only workload driven through the wire produces per-op results
//! identical to the in-process sequential replay, op for op.

use std::net::TcpStream;
use std::time::Duration;

use gm_core::catalog::{QueryId, QueryInstance};
use gm_core::params::Workload;
use gm_core::report::{Outcome, RunMode};
use gm_core::runner::{BenchConfig, Runner};
use gm_model::api::LoadOptions;
use gm_model::{testkit, GdbError, GraphDb, GraphSnapshot, QueryCtx, Vid};
use gm_net::wire;
use gm_net::{
    run_remote, Connection, RemoteEngine, Request, Response, Server, ServerHandle, MAGIC,
    PROTO_VERSION,
};
use gm_workload::{run_sequential, MixKind, Pacing, WorkloadConfig};
use graphmark::registry::EngineKind;

fn spawn_server(kind: EngineKind) -> ServerHandle {
    Server::bind("127.0.0.1:0", Box::new(move || kind.make()))
        .expect("bind loopback")
        .spawn()
        .expect("spawn server")
}

fn cfg(mix: MixKind, threads: u32, ops: u64) -> WorkloadConfig {
    WorkloadConfig {
        mix,
        threads,
        ops_per_worker: ops,
        seed: 1234,
        record_cardinalities: true,
        ..WorkloadConfig::default()
    }
}

/// Acceptance criterion: a read-only workload driven through the wire
/// produces per-op results identical to the in-process sequential replay on
/// every engine variant.
#[test]
fn remote_read_only_matches_in_process_sequential_on_every_engine() {
    let data = testkit::chain_dataset(150);
    for kind in EngineKind::ALL {
        let server = spawn_server(kind);
        let addr = server.addr().to_string();
        let c = cfg(MixKind::ReadOnly, 3, 20);
        let remote = run_remote(&addr, &data, &c)
            .unwrap_or_else(|e| panic!("{}: remote run failed: {e}", kind.name()));
        let factory = move || kind.make();
        let local = run_sequential(&factory, &data, &c)
            .unwrap_or_else(|e| panic!("{}: local replay failed: {e}", kind.name()));
        assert_eq!(
            remote.cardinality_trace(),
            local.cardinality_trace(),
            "{}: network-attached results must match the in-process replay",
            kind.name()
        );
        assert_eq!(remote.errors(), 0, "{}: no op errors", kind.name());
        assert_eq!(remote.engine, kind.name(), "engine name crosses the wire");
        server.shutdown();
    }
}

/// Mixed read/write workloads complete over the wire too (writes replay
/// server-side with per-connection owned-edge pools).
#[test]
fn remote_mixed_workload_completes() {
    let data = testkit::chain_dataset(150);
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    let c = cfg(MixKind::Mixed, 4, 30);
    let report = run_remote(&addr, &data, &c).expect("remote mixed run");
    assert_eq!(report.ops() + report.errors(), 4 * 30);
    assert_eq!(report.errors(), 0, "no op should fail over loopback");
    assert!(report.throughput() > 0.0);
    server.shutdown();
}

/// Open-loop and bounded-overload pacing work unchanged over the wire: the
/// driver's shed accounting engages against a loopback server exactly as it
/// does in-process.
#[test]
fn bounded_overload_sheds_over_the_wire() {
    let data = testkit::chain_dataset(800);
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    let c = WorkloadConfig {
        pacing: Pacing::open_bounded(2_000_000.0, Duration::from_millis(2)),
        ..cfg(MixKind::ScanHeavy, 2, 600)
    };
    let report = run_remote(&addr, &data, &c).expect("remote overload run");
    assert!(report.shed() > 0, "overload must shed over the wire");
    assert_eq!(
        report.ops() + report.errors() + report.shed(),
        2 * 600,
        "every scheduled op is completed, errored, or shed"
    );
    assert_eq!(report.offered_ops_per_sec, Some(2_000_000.0));
    server.shutdown();
}

/// `RemoteEngine` implements `GraphDb` transparently: the sequential
/// `Runner` and `catalog::execute_read` drive it with client-side query
/// decomposition, one round trip per primitive.
///
/// Read-only instances only: the server hosts a *single* engine, so the
/// Runner's cached-engine optimization would observe server-side mutations
/// (in-process it caches a separate never-mutated instance).
#[test]
fn remote_engine_drops_into_the_sequential_runner() {
    let data = testkit::chain_dataset(80);
    let kind = EngineKind::LinkedV1;
    let server = spawn_server(kind);
    let addr = server.addr().to_string();

    let remote_factory = move || -> Box<dyn GraphDb> {
        let engine = RemoteEngine::connect(&addr).expect("connect");
        engine.reset().expect("reset");
        Box::new(engine)
    };
    let workload = Workload::choose(&data, 7, 16);
    let mut runner = Runner::new(&remote_factory, &data, &workload, BenchConfig::default());
    assert_eq!(runner.engine_name(), kind.name());

    let local_factory = move || kind.make();
    let mut local_runner = Runner::new(&local_factory, &data, &workload, BenchConfig::default());

    for id in [
        QueryId::Q8,
        QueryId::Q9,
        QueryId::Q14,
        QueryId::Q23,
        QueryId::Q27,
    ] {
        let inst = QueryInstance::plain(id);
        let remote = runner.run_instance(&inst, RunMode::Isolation);
        let local = local_runner.run_instance(&inst, RunMode::Isolation);
        assert_eq!(remote.outcome, Outcome::Completed, "{id:?}");
        assert_eq!(
            remote.cardinality, local.cardinality,
            "{id:?}: remote runner answer must equal in-process"
        );
    }
    server.shutdown();
}

/// Error fidelity across the wire: engine errors keep their exact variant
/// instead of collapsing into a generic I/O error.
#[test]
fn remote_errors_keep_their_variant() {
    let data = testkit::chain_dataset(40);
    // Linked engine: a missing vertex stays VertexNotFound.
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    let mut engine = RemoteEngine::connect(&addr).expect("connect");
    engine.reset().unwrap();
    engine.bulk_load(&data, &LoadOptions::default()).unwrap();
    match engine.remove_vertex(Vid(9_999_999)) {
        Err(GdbError::VertexNotFound(id)) => assert_eq!(id, 9_999_999),
        other => panic!("expected VertexNotFound across the wire, got {other:?}"),
    }
    match engine.edge_property(gm_model::Eid(9_999_999), "weight") {
        Err(GdbError::EdgeNotFound(_)) | Ok(None) => {}
        other => panic!("expected EdgeNotFound or None, got {other:?}"),
    }
    server.shutdown();

    // Triple engine: attribute indexes are unsupported — the variant (and
    // its message) must survive the round trip.
    let server = spawn_server(EngineKind::Triple);
    let addr = server.addr().to_string();
    let mut engine = RemoteEngine::connect(&addr).expect("connect");
    match engine.create_vertex_index("name") {
        Err(GdbError::Unsupported(_)) => {}
        other => panic!("expected Unsupported across the wire, got {other:?}"),
    }
    // ExecOp before Prepare is an Invalid protocol-state error.
    match engine.exec_op(
        gm_workload::Op::Read(QueryInstance::plain(QueryId::Q8)),
        0,
        0,
        Duration::from_secs(1),
    ) {
        Err(GdbError::Invalid(why)) => assert!(why.contains("Prepare"), "{why}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    server.shutdown();
}

/// A cooperative deadline crosses the wire: the remaining client budget is
/// forwarded, and a server-side timeout comes back as `GdbError::Timeout`.
#[test]
fn timeouts_cross_the_wire() {
    let data = testkit::chain_dataset(3_000);
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    let mut engine = RemoteEngine::connect(&addr).expect("connect");
    engine.reset().unwrap();
    engine.bulk_load(&data, &LoadOptions::default()).unwrap();
    // An already-expired context must fail server-side, not hang.
    let expired = QueryCtx::with_timeout(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    match engine.distinct_neighbor_scan(gm_model::Direction::Both, &expired) {
        Err(GdbError::Timeout) => {}
        other => panic!("expected Timeout across the wire, got {other:?}"),
    }
    server.shutdown();
}

/// A `Reset` from one connection invalidates every other connection's
/// owned-edges pool: a stale `Eid` from the discarded engine must never
/// delete an edge of the freshly loaded one.
#[test]
fn reset_invalidates_other_connections_owned_edges() {
    use gm_workload::{Op, WriteOp};
    let data = testkit::chain_dataset(50);
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();

    // Connection A: set up a run and create one owned edge.
    let mut a = RemoteEngine::connect(&addr).expect("connect A");
    a.reset().unwrap();
    a.bulk_load(&data, &LoadOptions::default()).unwrap();
    a.prepare(1, 16).unwrap();
    assert_eq!(
        a.exec_op(Op::Write(WriteOp::AddEdge), 0, 0, Duration::from_secs(1))
            .unwrap()
            .cardinality,
        1
    );

    // Connection B: start a brand-new run (reset + reload + prepare).
    let mut b = RemoteEngine::connect(&addr).expect("connect B");
    b.reset().unwrap();
    b.bulk_load(&data, &LoadOptions::default()).unwrap();
    b.prepare(1, 16).unwrap();

    // A's RemoveOwnEdge must NOT delete anything from the fresh engine: its
    // pool belongs to the discarded generation, so the op degrades to the
    // documented AddVertex fallback.
    a.exec_op(
        Op::Write(WriteOp::RemoveOwnEdge),
        0,
        1,
        Duration::from_secs(1),
    )
    .unwrap();
    let ctx = QueryCtx::unbounded();
    assert_eq!(
        b.edge_count(&ctx).unwrap(),
        data.edge_count() as u64,
        "stale pool must not delete fresh edges"
    );
    assert_eq!(
        b.vertex_count(&ctx).unwrap(),
        data.vertex_count() as u64 + 1,
        "the op degraded to the AddVertex fallback"
    );
    server.shutdown();
}

/// The server answers pipelined requests in order: several requests written
/// back to back on one connection, responses read afterwards.
#[test]
fn pipelined_requests_answered_in_order() {
    let data = testkit::chain_dataset(60);
    let server = spawn_server(EngineKind::Relational);
    let addr = server.addr().to_string();
    {
        let mut setup = RemoteEngine::connect(&addr).expect("connect");
        setup.reset().unwrap();
        setup.bulk_load(&data, &LoadOptions::default()).unwrap();
    }
    let mut conn = Connection::connect(&addr).expect("connect");
    // Three requests in flight before any response is read.
    conn.send(&Request::VertexCount { t: 0 }).unwrap();
    conn.send(&Request::EdgeCount { t: 0 }).unwrap();
    conn.send(&Request::HasVertexIndex {
        prop: "name".into(),
    })
    .unwrap();
    assert_eq!(conn.recv().unwrap(), Response::U64(60));
    assert_eq!(conn.recv().unwrap(), Response::U64(59));
    assert!(matches!(conn.recv().unwrap(), Response::Bool(_)));
    server.shutdown();
}

/// Handshake discipline: a wrong protocol version (or magic) is refused
/// with a descriptive error — the server never misparses a peer.
#[test]
fn version_and_magic_mismatches_rejected() {
    let server = spawn_server(EngineKind::LinkedV1);
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("dial");
    let bad = Request::Hello {
        magic: MAGIC,
        version: PROTO_VERSION + 1,
    };
    wire::write_frame(&mut stream, &bad.encode().unwrap()).unwrap();
    match Response::decode(&wire::read_frame(&mut stream).unwrap()).unwrap() {
        Response::Err(GdbError::Invalid(why)) => {
            assert!(why.contains("version"), "{why}");
        }
        other => panic!("expected handshake rejection, got {other:?}"),
    }

    let mut stream = TcpStream::connect(addr).expect("dial");
    let bad = Request::Hello {
        magic: 0xDEAD_BEEF,
        version: PROTO_VERSION,
    };
    wire::write_frame(&mut stream, &bad.encode().unwrap()).unwrap();
    match Response::decode(&wire::read_frame(&mut stream).unwrap()).unwrap() {
        Response::Err(GdbError::Invalid(why)) => {
            assert!(why.contains("magic"), "{why}");
        }
        other => panic!("expected handshake rejection, got {other:?}"),
    }

    // A non-Hello first frame is refused too.
    let mut stream = TcpStream::connect(addr).expect("dial");
    wire::write_frame(&mut stream, &Request::Reset.encode().unwrap()).unwrap();
    match Response::decode(&wire::read_frame(&mut stream).unwrap()).unwrap() {
        Response::Err(GdbError::Invalid(why)) => {
            assert!(why.contains("Hello"), "{why}");
        }
        other => panic!("expected handshake rejection, got {other:?}"),
    }
    server.shutdown();
}

/// Snapshot-mode hosting (satellite of the gm-mvcc PR): a server built over
/// a `SnapshotSource` serves every read from a pinned epoch, and the v2
/// `ExecOp` response carries that serving epoch. With a concurrent remote
/// writer hammering the engine, a remote scan client asserts the epoch
/// contract end to end:
///
/// * every read response decodes against exactly **one** epoch (responses
///   with equal epochs agree exactly — no torn reads across the wire);
/// * epochs are monotone per connection (so `epoch_skew` stays 0);
/// * counts are monotone in epoch, and the final epoch sees every write.
#[test]
fn snapshot_server_tags_reads_with_one_epoch_under_concurrent_writers() {
    use gm_workload::{Op, WriteOp, WORKLOAD_SLOTS};
    use graphmark::mvcc::SnapshotMode;

    let data = testkit::chain_dataset(120);
    let kind = EngineKind::LinkedV2;
    let server = Server::bind_snapshot(
        "127.0.0.1:0",
        Box::new(move || kind.make_snapshot_source(SnapshotMode::Cow)),
    )
    .expect("bind snapshot loopback")
    .spawn()
    .expect("spawn snapshot server");
    let addr = server.addr().to_string();

    let ctl = RemoteEngine::connect(&addr).expect("connect control");
    ctl.reset().unwrap();
    {
        // bulk_load takes &mut; scope a second connection for setup.
        let mut loader = RemoteEngine::connect(&addr).expect("connect loader");
        loader.bulk_load(&data, &LoadOptions::default()).unwrap();
    }
    ctl.prepare(7, WORKLOAD_SLOTS as u32).unwrap();

    const WRITES: u64 = 120;
    const READS: u64 = 150;
    let initial = data.vertex_count() as u64;

    let samples = std::thread::scope(|s| {
        let addr_w = addr.clone();
        let writer = s.spawn(move || {
            let w = RemoteEngine::connect(&addr_w).expect("connect writer");
            for i in 0..WRITES {
                w.exec_op(Op::Write(WriteOp::AddVertex), 0, i, Duration::from_secs(5))
                    .expect("remote write");
            }
        });
        let addr_r = addr.clone();
        let reader = s.spawn(move || {
            let r = RemoteEngine::connect(&addr_r).expect("connect reader");
            let mut samples: Vec<(u64, u64)> = Vec::new();
            for i in 0..READS {
                let res = r
                    .exec_op(
                        Op::Read(QueryInstance::plain(QueryId::Q8)),
                        1,
                        i,
                        Duration::from_secs(5),
                    )
                    .expect("remote read");
                let epoch = res
                    .epoch
                    .expect("snapshot server must tag reads with the serving epoch");
                samples.push((epoch, res.cardinality));
            }
            samples
        });
        writer.join().expect("writer thread");
        reader.join().expect("reader thread")
    });

    // Monotone epochs per connection: a later read never serves an older
    // graph version (this is exactly what the driver's epoch_skew counts).
    for pair in samples.windows(2) {
        assert!(
            pair[1].0 >= pair[0].0,
            "epochs must be monotone per connection: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
    // One epoch = one graph version: reads claiming the same epoch agree
    // exactly, no matter how the writer interleaved.
    let mut by_epoch: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (epoch, count) in &samples {
        if let Some(prev) = by_epoch.insert(*epoch, *count) {
            assert_eq!(
                prev, *count,
                "two reads of epoch {epoch} disagreed ({prev} vs {count})"
            );
        }
    }
    // Counts are monotone in epoch (writers only add), within bounds.
    let mut last = 0u64;
    for (epoch, count) in &by_epoch {
        assert!(
            *count >= last && *count >= initial && *count <= initial + WRITES,
            "epoch {epoch} count {count} out of range"
        );
        last = *count;
    }
    // A final pin observes every write: the server's ExecOp reads tolerate
    // bounded staleness (gm-workload's pin cadence), so let the pending
    // epoch age past the bound before asserting exactness.
    std::thread::sleep(Duration::from_millis(5));
    let final_count = ctl
        .exec_op(
            Op::Read(QueryInstance::plain(QueryId::Q8)),
            1,
            READS,
            Duration::from_secs(5),
        )
        .expect("final read");
    assert_eq!(final_count.cardinality, initial + WRITES);
    assert!(final_count.epoch.is_some());

    server.shutdown();
}

/// Sharded hosting (the gm-shard PR's loopback satellite): a server built
/// over a per-partition-locked `ShardedGraph` serves the same results as
/// the in-process sharded replay — and as the unsharded replay, closing
/// the loop remote-sharded == local-sharded == local-unsharded.
#[test]
fn sharded_server_matches_in_process_sharded_and_unsharded_replay() {
    use gm_model::SharedGraph;
    use graphmark::shard::run_sharded_sequential;

    let data = testkit::chain_dataset(150);
    let kind = EngineKind::LinkedV2;
    let server = Server::bind_sharded(
        "127.0.0.1:0",
        Box::new(move || Box::new(kind.make_sharded(4)) as Box<dyn SharedGraph>),
    )
    .expect("bind sharded loopback")
    .spawn()
    .expect("spawn sharded server");
    let addr = server.addr().to_string();

    let c = cfg(MixKind::ReadOnly, 3, 20);
    let remote = run_remote(&addr, &data, &c).expect("remote sharded run");
    let factory = move || kind.make();
    let local_sharded = run_sharded_sequential(&factory, 4, &data, &c).expect("local sharded");
    let local_plain = run_sequential(&factory, &data, &c).expect("local unsharded");
    assert_eq!(
        remote.cardinality_trace(),
        local_sharded.cardinality_trace(),
        "remote sharded results must match the in-process sharded replay"
    );
    assert_eq!(
        remote.cardinality_trace(),
        local_plain.cardinality_trace(),
        "…and therefore the unsharded replay too"
    );
    assert_eq!(remote.errors(), 0);
    assert_eq!(
        remote.engine, "linked(v2)/s4",
        "the composite's shard count crosses the wire"
    );
    server.shutdown();
}

/// Concurrent remote writers on different shards must not serialize: the
/// per-op lock wait of a write-heavy run against a 4-shard server stays
/// below the same run against a 1-shard server (identical composite
/// machinery, so the comparison isolates the lock split). Lock waits are
/// measured server-side and shipped in the v3 `ExecDone` frames. A few
/// attempts are allowed — the claim is structural, a single descheduled
/// run must not fail it.
#[test]
fn remote_writers_on_different_shards_do_not_serialize() {
    use gm_model::SharedGraph;

    let data = testkit::chain_dataset(120);
    let kind = EngineKind::Triple; // heavy writes: serialization dominates
    let run_against = |shards: usize| -> u64 {
        let server = Server::bind_sharded(
            "127.0.0.1:0",
            Box::new(move || Box::new(kind.make_sharded(shards)) as Box<dyn SharedGraph>),
        )
        .expect("bind sharded loopback")
        .spawn()
        .expect("spawn sharded server");
        let addr = server.addr().to_string();
        let c = cfg(MixKind::WriteHeavy, 6, 400);
        let report = run_remote(&addr, &data, &c).expect("remote write-heavy run");
        assert_eq!(report.errors(), 0, "s{shards}: clean run");
        let row = report.scaling_row();
        server.shutdown();
        assert!(
            row.lock_wait_nanos > 0,
            "s{shards}: server-side lock waits must cross the wire"
        );
        eprintln!(
            "[loopback] s{shards}: lock wait {} ns/op over {} ops",
            row.lock_wait_per_op(),
            row.ops
        );
        row.lock_wait_per_op()
    };
    // The structural claim: the 4-shard server *can* run the write stream
    // with less queueing than the single lock's typical run. Median for
    // the baseline (its typical serialization), best-of for the sharded
    // side — a single descheduled attempt must not fail an honest win.
    let mut base: Vec<u64> = (0..3).map(|_| run_against(1)).collect();
    base.sort_unstable();
    let typical1 = base[1];
    let best4 = (0..3).map(|_| run_against(4)).min().unwrap();
    if best4 >= typical1 {
        // Minimum-core guard: with 6 workers time-slicing fewer than 4
        // cores, lock queueing is dominated by the scheduler, not the lock
        // split — the comparison is not a deterministic claim there.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(
            cores < 4,
            "4-shard per-op lock wait ({best4} ns) must stay below the single-lock \
             baseline ({typical1} ns median) on a {cores}-core host: writers on \
             different shards must not serialize"
        );
        eprintln!(
            "[loopback] {cores}-core host: lock-split comparison not deterministic \
             here (best4={best4} ns vs typical1={typical1} ns), gate relaxed"
        );
    }
}

/// A snapshot-hosted server still satisfies the determinism contract: a
/// read-only remote workload matches the in-process sequential replay op
/// for op, and a locked-mode server answers `ExecOp` reads with no epoch.
#[test]
fn snapshot_server_read_only_matches_replay_and_locked_has_no_epoch() {
    use gm_workload::Op;
    use graphmark::mvcc::SnapshotMode;

    let data = testkit::chain_dataset(150);
    let kind = EngineKind::ColumnarV10;
    let server = Server::bind_snapshot(
        "127.0.0.1:0",
        Box::new(move || kind.make_snapshot_source(SnapshotMode::Native)),
    )
    .expect("bind native snapshot loopback")
    .spawn()
    .expect("spawn");
    let addr = server.addr().to_string();
    let c = cfg(MixKind::ReadOnly, 3, 20);
    let remote = run_remote(&addr, &data, &c).expect("remote snapshot run");
    let factory = move || kind.make();
    let local = run_sequential(&factory, &data, &c).expect("local replay");
    assert_eq!(
        remote.cardinality_trace(),
        local.cardinality_trace(),
        "snapshot-served results must match the in-process replay"
    );
    assert_eq!(remote.epoch_skew(), 0, "in-order epochs never skew");
    server.shutdown();

    // Locked-mode servers keep answering ExecOp — with no epoch tag.
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    let ctl = RemoteEngine::connect(&addr).expect("connect");
    ctl.reset().unwrap();
    {
        let mut loader = RemoteEngine::connect(&addr).expect("loader");
        loader.bulk_load(&data, &LoadOptions::default()).unwrap();
    }
    ctl.prepare(7, gm_workload::WORKLOAD_SLOTS as u32).unwrap();
    let res = ctl
        .exec_op(
            Op::Read(QueryInstance::plain(QueryId::Q8)),
            0,
            0,
            Duration::from_secs(5),
        )
        .expect("locked read");
    assert_eq!(res.epoch, None, "locked mode carries no epochs");
    server.shutdown();
}

/// `GetStats` returns a well-formed snapshot of the server's live metrics
/// registry: the server-side `net.ops` counter advances by at least the
/// number of `ExecOp` frames a workload shipped, and the remote run's
/// report splits client latency into wire time and server-reported
/// execution time (the v4 `ExecDone` phase breakdown).
#[test]
fn get_stats_round_trips_from_a_live_server() {
    fn counter(s: &gm_obs::RegistrySnapshot, name: &str) -> u64 {
        s.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    let data = testkit::chain_dataset(150);
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    let mut conn = Connection::connect(&addr).expect("connect");
    let before = counter(&conn.get_stats().expect("stats before run"), "net.ops");

    let c = cfg(MixKind::ReadOnly, 2, 15);
    let report = run_remote(&addr, &data, &c).expect("remote run");
    assert_eq!(report.errors(), 0);

    let after = counter(&conn.get_stats().expect("stats after run"), "net.ops");
    assert!(
        after >= before + 2 * 15,
        "server-side net.ops must count every ExecOp frame: before={before} after={after}"
    );

    // Default mode is `phases`: the client attributes frame codec time and
    // the socket round trip (minus server-reported time) to the wire
    // phases, so the report's latency split is populated.
    let phases = report.phase_nanos();
    assert!(
        phases.wire() > 0,
        "remote runs must attribute wire time: {phases:?}"
    );
    assert!(
        phases.get(gm_workload::Phase::EngineExec) > 0,
        "server-side exec time must cross the wire: {phases:?}"
    );
    server.shutdown();
}

/// PROTO v5 satellite: every `GetStats` snapshot carries the server's
/// monotonic capture stamp, so two snapshots bound the interval between
/// them without comparing wall clocks across processes.
#[test]
fn stats_snapshots_carry_a_monotone_capture_stamp() {
    let server = spawn_server(EngineKind::LinkedV1);
    let addr = server.addr().to_string();
    let mut conn = Connection::connect(&addr).expect("connect");
    let a = conn.get_stats().expect("first stats");
    std::thread::sleep(Duration::from_millis(3));
    let b = conn.get_stats().expect("second stats");
    assert!(
        b.captured_at_us >= a.captured_at_us + 2_000,
        "a later snapshot must carry a later stamp covering the sleep: \
         {} then {}",
        a.captured_at_us,
        b.captured_at_us
    );
    server.shutdown();
}

/// PROTO v5 tentpole: the server records `ExecOp` spans in its flight
/// recorder under the **client's** trace id, and `GetTraces` ships them
/// back — so the client can stitch one cross-process trace out of its own
/// end-to-end measurement and the server's phase-attributed span.
#[test]
fn server_records_exec_traces_under_the_client_trace_id() {
    use gm_obs::trace;
    use gm_workload::Op;

    let data = testkit::chain_dataset(80);
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    let mut engine = RemoteEngine::connect(&addr).expect("connect");
    engine.reset().unwrap();
    engine.bulk_load(&data, &LoadOptions::default()).unwrap();
    engine
        .prepare(7, gm_workload::WORKLOAD_SLOTS as u32)
        .unwrap();

    // An id with the low 7 bits clear is retained by the tail gate's
    // deterministic sampling arm, so this test does not depend on how other
    // tests in this process have warmed the shared gate's tail threshold.
    let id = 0x5EED_0080u64;
    assert_eq!(id & 0x7F, 0);
    trace::begin_op(id);
    let t0 = std::time::Instant::now();
    engine
        .exec_op(
            Op::Read(QueryInstance::plain(QueryId::Q8)),
            3,
            17,
            Duration::from_secs(5),
        )
        .expect("remote read");
    let e2e = t0.elapsed().as_nanos() as u64;

    let mut conn = Connection::connect(&addr).expect("connect");
    let records = conn.get_traces().expect("get traces");
    let rec = records
        .iter()
        .find(|r| r.id == id)
        .expect("the server must record the span under the client's trace id");
    assert_eq!(rec.origin, trace::TraceOrigin::Server);
    assert_eq!(rec.worker, 3);
    assert_eq!(rec.op_index, 17);
    assert_eq!(rec.op_code, 8, "Q8's trace code crosses the wire");
    assert!(
        rec.total_nanos <= e2e,
        "the server span ({}) nests inside the client's end-to-end time ({e2e})",
        rec.total_nanos
    );
    assert!(
        rec.phases.total() <= rec.total_nanos,
        "self-time phases never exceed the span they attribute"
    );
    server.shutdown();
}

/// PROTO v7 tentpole: an epoch-pinned write transaction over the wire.
/// Writes after `TxnBegin` buffer server-side (invisible to other
/// connections), reads on the transaction's connection see the
/// read-your-writes overlay, and `TxnCommit` publishes everything
/// atomically. A conflicting transaction on a second connection loses
/// first-committer-wins with the distinct `TxnConflict` variant.
#[test]
fn wire_transactions_buffer_commit_atomically_and_conflict_distinctly() {
    use graphmark::mvcc::SnapshotMode;

    let data = testkit::chain_dataset(50);
    let kind = EngineKind::LinkedV2;
    let server = Server::bind_snapshot(
        "127.0.0.1:0",
        Box::new(move || kind.make_snapshot_source(SnapshotMode::Cow)),
    )
    .expect("bind snapshot loopback")
    .spawn()
    .expect("spawn snapshot server");
    let addr = server.addr().to_string();

    {
        let mut loader = RemoteEngine::connect(&addr).expect("loader");
        loader.bulk_load(&data, &LoadOptions::default()).unwrap();
    }

    let mut a = Connection::connect(&addr).expect("connect A");
    let mut b = Connection::connect(&addr).expect("connect B");

    let epoch = a.txn_begin().expect("begin");
    // Buffer two writes: a fresh vertex and a property on an existing one.
    let created = match a
        .call(&Request::AddVertex {
            label: "txn".into(),
            props: vec![],
        })
        .unwrap()
    {
        Response::U64(v) => v,
        other => panic!("expected U64, got {other:?}"),
    };
    a.call(&Request::SetVertexProp {
        v: 7,
        name: "who".into(),
        value: gm_model::Value::Str("a".into()),
    })
    .unwrap();

    // RYOW on A's connection: the buffered vertex is visible…
    assert_eq!(
        a.call(&Request::VertexCount { t: 0 }).unwrap(),
        Response::U64(51)
    );
    assert_eq!(
        a.call(&Request::GetVertex(created)).unwrap().kind(),
        "OptVertex"
    );
    assert_eq!(
        a.call(&Request::Epoch).unwrap(),
        Response::U64(epoch),
        "reads inside the txn stay pinned to the begin epoch"
    );
    // …and invisible to B until commit.
    assert_eq!(
        b.call(&Request::VertexCount { t: 0 }).unwrap(),
        Response::U64(50),
        "uncommitted writes must not leak across connections"
    );

    // B opens a conflicting transaction against the same pre-commit epoch.
    b.txn_begin().expect("begin B");
    b.call(&Request::SetVertexProp {
        v: 7,
        name: "who".into(),
        value: gm_model::Value::Str("b".into()),
    })
    .unwrap();

    // A commits first and wins; the published count includes its vertex.
    let (ops, _epoch_after) = a.txn_commit().expect("commit A");
    assert_eq!(ops, 2, "both buffered writes replayed");
    assert_eq!(
        a.call(&Request::VertexCount { t: 0 }).unwrap(),
        Response::U64(51)
    );

    // B's commit lost the race: the distinct variant crosses the wire and
    // its write set is discarded.
    match b.txn_commit() {
        Err(GdbError::TxnConflict(why)) => assert!(why.contains("v7"), "{why}"),
        other => panic!("expected TxnConflict across the wire, got {other:?}"),
    }
    match b.call(&Request::VertexProperty {
        v: 7,
        name: "who".into(),
    }) {
        Ok(Response::OptValue(Some(gm_model::Value::Str(s)))) => assert_eq!(s, "a"),
        other => panic!("winner's property must survive, got {other:?}"),
    }

    // Commit/abort without an open transaction are protocol-state errors,
    // and the connection stays usable after them.
    match b.txn_commit() {
        Err(GdbError::Invalid(why)) => assert!(why.contains("open transaction"), "{why}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    assert_eq!(
        b.call(&Request::VertexCount { t: 0 }).unwrap(),
        Response::U64(51)
    );

    // Abort discards: a new transaction's buffered write disappears.
    a.txn_begin().expect("begin again");
    a.call(&Request::AddVertex {
        label: "discard".into(),
        props: vec![],
    })
    .unwrap();
    assert_eq!(a.txn_abort().expect("abort"), 1);
    assert_eq!(
        a.call(&Request::VertexCount { t: 0 }).unwrap(),
        Response::U64(51)
    );

    // Structural frames are refused while a transaction is open.
    a.txn_begin().expect("begin for structural check");
    match a.call(&Request::Reset) {
        Err(GdbError::Invalid(why)) => assert!(why.contains("transaction"), "{why}"),
        other => panic!("expected Invalid for Reset inside txn, got {other:?}"),
    }
    a.txn_abort().expect("abort structural check");

    // Locked-mode hosting refuses transactions outright.
    let locked = spawn_server(EngineKind::LinkedV2);
    let locked_addr = locked.addr().to_string();
    let mut c = Connection::connect(&locked_addr).expect("connect locked");
    match c.txn_begin() {
        Err(GdbError::Unsupported(why)) => assert!(why.contains("snapshot"), "{why}"),
        other => panic!("expected Unsupported under locked hosting, got {other:?}"),
    }
    locked.shutdown();
    server.shutdown();
}

/// A failing entry inside an `ExecBatch` (here: `RemoveVertex` of a vertex
/// that does not exist) must surface as an inline per-entry error with the
/// same `GdbError` variant the in-process engine returns — without aborting
/// the rest of the batch or the connection. This is the contract the fleet
/// coordinator's deferred write path relies on.
#[test]
fn batch_entry_errors_stay_inline_and_keep_the_variant() {
    let data = testkit::chain_dataset(30);
    let server = spawn_server(EngineKind::LinkedV2);
    let addr = server.addr().to_string();
    {
        let mut loader = RemoteEngine::connect(&addr).expect("loader");
        loader.bulk_load(&data, &LoadOptions::default()).unwrap();
    }

    // The in-process variant for the same failure, as the oracle.
    let mut oracle = EngineKind::LinkedV2.make();
    oracle.bulk_load(&data, &LoadOptions::default()).unwrap();
    let expected = oracle.remove_vertex(Vid(9_999_999)).unwrap_err();
    assert!(matches!(expected, GdbError::VertexNotFound(9_999_999)));

    let mut conn = Connection::connect(&addr).expect("connect");
    let rsps = conn
        .call_batch(vec![
            Request::AddVertex {
                label: "pre".into(),
                props: vec![],
            },
            Request::RemoveVertex(9_999_999),
            Request::VertexCount { t: 0 },
        ])
        .expect("the batch envelope itself must succeed");
    assert_eq!(rsps.len(), 3);
    assert!(matches!(rsps[0], Response::U64(_)), "{:?}", rsps[0]);
    match &rsps[1] {
        Response::Err(e) => assert_eq!(
            e, &expected,
            "wire batch error must keep the in-process variant"
        ),
        other => panic!("expected inline Err entry, got {other:?}"),
    }
    assert_eq!(
        rsps[2],
        Response::U64(31),
        "entries after the failure still execute"
    );

    // The connection survives the failed entry.
    assert_eq!(
        conn.call(&Request::VertexCount { t: 0 }).unwrap(),
        Response::U64(31)
    );
    server.shutdown();
}
