//! Cross-**process** fleet test: four real `gm-server` processes (the
//! shipped binary, not in-process handles), one `Fleet` coordinator.
//!
//! This is the deployment the fleet feature exists for — separate OS
//! processes with separate address spaces — so the replay-equality
//! guarantee is asserted here too, against the in-process `ShardedGraph`
//! sequential replay.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use gm_model::testkit;
use gm_net::{run_fleet_sequential, Fleet};
use gm_workload::{MixKind, WorkloadConfig};
use graphmark::registry::EngineKind;
use graphmark::shard::run_sharded_sequential;

/// A spawned `gm-server` process, killed on drop so a failing assertion
/// never leaks servers.
struct ShardProc {
    child: Child,
    addr: String,
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Launch one shard server on an ephemeral port and parse the bound
/// address from its startup banner
/// (`[gm-server] hosting … on 127.0.0.1:PORT — …`).
fn spawn_shard(engine: &str, shard: usize, fleet_size: usize) -> ShardProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gm-server"))
        .args([
            engine,
            "--shard-id",
            &shard.to_string(),
            "--fleet-size",
            &fleet_size.to_string(),
        ])
        .env("GM_SERVER_ADDR", "127.0.0.1:0")
        .env("GM_OBS", "off")
        .env("GM_STATS_INTERVAL_MS", "0")
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn gm-server");
    let stderr = child.stderr.take().expect("child stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("gm-server exited before its banner")
            .expect("read gm-server banner");
        if let Some(rest) = line.split(" on ").nth(1) {
            if line.contains("hosting") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("banner names a bound address")
                    .to_string();
            }
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    ShardProc { child, addr }
}

/// Acceptance criterion, cross-process edition: a 4-process fleet completes
/// the write-heavy mix with per-op results identical to the in-process
/// sharded replay, zero routing errors, fewer frames than ops on the run,
/// and a monotone fleet epoch.
#[test]
fn four_process_fleet_matches_in_process_sharded_replay() {
    const N: usize = 4;
    let kind = EngineKind::LinkedV2;
    let procs: Vec<ShardProc> = (0..N).map(|s| spawn_shard(kind.name(), s, N)).collect();
    let addrs: Vec<String> = procs.iter().map(|p| p.addr.clone()).collect();

    let fleet = Fleet::connect(addrs).expect("connect 4-process fleet");
    assert_eq!(fleet.name(), "linked(v2)/f4");

    let data = testkit::chain_dataset(150);
    let c = WorkloadConfig {
        mix: MixKind::WriteHeavy,
        threads: 3,
        ops_per_worker: 40,
        seed: 99,
        record_cardinalities: true,
        ..WorkloadConfig::default()
    };

    let epoch_before = fleet.epoch().expect("fleet epoch");
    let trips_before = fleet.round_trips();
    let remote = run_fleet_sequential(&fleet, &data, &c).expect("4-process fleet run");
    let window = fleet.round_trips() - trips_before;

    let factory = move || kind.make();
    let local = run_sharded_sequential(&factory, N, &data, &c).expect("local sharded replay");

    assert_eq!(
        remote.cardinality_trace(),
        local.cardinality_trace(),
        "4-process fleet results must match the in-process sharded replay op for op"
    );
    assert_eq!(remote.errors(), 0);
    assert_eq!(fleet.routing_errors(), 0, "zero routing errors");
    assert!(fleet.batched_ops() > 0, "dispatch must batch");

    // Frames < ops on the measured run: a second setup reproduces the
    // deterministic setup traffic, so the first run's own frame count is
    // the measured window minus one setup.
    let before_setup = fleet.round_trips();
    fleet.setup(&data, &c).expect("setup for frame measurement");
    let setup_frames = fleet.round_trips() - before_setup;
    let run_frames = window.saturating_sub(setup_frames);
    let total_ops = 3 * 40u64;
    assert!(
        run_frames < total_ops,
        "batched dispatch must spend fewer frames ({run_frames}) than ops ({total_ops})"
    );

    let epoch_after = fleet.epoch().expect("fleet epoch");
    assert!(epoch_after >= epoch_before, "fleet epoch must be monotone");
}
