//! Network-attached benchmarking in five minutes: spawn a loopback
//! `gm-server`, point the multi-client workload driver at it, and compare
//! against the same run in-process — the dispatch + serialization cost of
//! the wire shows up directly in the latency columns.
//!
//! ```sh
//! cargo run --release -p gm-net --example remote_clients
//! ```
//!
//! Against an already-running server (`cargo run -p gm-net --bin gm-server`)
//! set `GM_SERVER_ADDR=127.0.0.1:7687` and the example dials it instead.

use gm_net::{run_remote, RemoteEngine, Server};
use graphmark::core::summary;
use graphmark::model::{GraphSnapshot, QueryCtx};
use graphmark::registry::EngineKind;
use graphmark::workload::{run, MixKind, WorkloadConfig};

fn main() {
    let data = graphmark::datasets::generate(
        graphmark::datasets::DatasetId::Yeast,
        graphmark::datasets::Scale::tiny(),
        42,
    );

    // 1. A server. Externally: `cargo run -p gm-net --bin gm-server`.
    //    Here: spawned on a loopback port inside this process.
    let kind = EngineKind::LinkedV2;
    let (addr, handle) = match std::env::var("GM_SERVER_ADDR") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let server = Server::bind("127.0.0.1:0", Box::new(move || kind.make())).expect("bind");
            let handle = server.spawn().expect("spawn");
            (handle.addr().to_string(), Some(handle))
        }
    };
    println!("server: {addr}");

    // 2. The same workload, twice: in-process, then through gm-net with one
    //    TCP connection per client. `run_remote` resets the server, ships
    //    the dataset, prepares parameters, and drives the workers.
    let cfg = WorkloadConfig {
        mix: MixKind::ReadHeavy,
        threads: 4,
        ops_per_worker: 500,
        seed: 7,
        ..WorkloadConfig::default()
    };
    let factory = move || kind.make();
    let local = run(&factory, &data, &cfg).expect("in-process run");
    let remote = run_remote(&addr, &data, &cfg).expect("network-attached run");

    let mut rows = vec![local.scaling_row(), remote.scaling_row()];
    rows[1].engine.push_str("@net");
    println!(
        "\nsame mix, same seed, same engine — the difference is the wire:\n{}",
        summary::render_scaling(&rows)
    );

    // 3. RemoteEngine is a GraphDb: trait-level access over the socket.
    let engine = RemoteEngine::connect(&addr).expect("connect");
    let ctx = QueryCtx::unbounded();
    println!(
        "remote {}: |V| = {}, |E| = {} (asked over the wire)",
        engine.name(),
        engine.vertex_count(&ctx).expect("count"),
        engine.edge_count(&ctx).expect("count"),
    );

    if let Some(handle) = handle {
        handle.shutdown();
    }
}
