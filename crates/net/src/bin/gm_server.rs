//! `gm-server` — host a graphmark engine behind a TCP socket.
//!
//! ```sh
//! # host the default engine on the default address
//! cargo run --release -p gm-net --bin gm-server
//!
//! # pick engine and address (engine names as in `GM_ENGINES`)
//! GM_SERVER_ADDR=127.0.0.1:7687 cargo run --release -p gm-net --bin gm-server -- 'linked(v2)'
//!
//! # serve reads from pinned MVCC snapshots instead of the shared lock
//! GM_SNAPSHOT_MODE=cow cargo run --release -p gm-net --bin gm-server -- 'columnar(v10)'
//! ```
//!
//! The server hosts **one** engine instance. Clients drive it with the
//! gm-net protocol: `RemoteEngine::connect` for trait-level access, or
//! `run_remote` / the `fig9_network` bench binary for whole workloads
//! (which reset, load and prepare the engine themselves). The process runs
//! until killed.
//!
//! With `GM_SNAPSHOT_MODE=cow` (generic copy-on-write) or `native` (the
//! columnar engine's segment-sharing freeze path, `cow` fallback
//! elsewhere), every read request executes against a pinned epoch — remote
//! scans never block remote writers — and `ExecOp` responses carry the
//! serving epoch. Unset or `off` keeps the original shared-`RwLock`
//! hosting.
//!
//! With `GM_SHARDS=N` (N > 1) the server hosts a hash-partitioned
//! `gm-shard` composite of N engines instead of a single instance — one
//! server, many shards. In locked mode the composite's per-partition locks
//! are the only synchronization on the op path (concurrent remote writers
//! on different shards do not serialize); in snapshot mode each shard gets
//! its own MVCC cell and reads pin composite epochs.

use std::time::{Duration, Instant};

use graphmark::mvcc::SnapshotMode;
use graphmark::registry::EngineKind;

use gm_model::SharedGraph;
use gm_net::Server;
use gm_obs::{trace, ObsMode, RegistrySnapshot};

/// One line of live server stats: interval throughput and p99 from the
/// `net.*` metrics, snapshot-GC pressure from the `mvcc.*` gauges, and
/// shard balance (max/min interval ops across `shard.{i}.ops`).
fn stats_line(prev: &RegistrySnapshot, cur: &RegistrySnapshot, dt: f64) -> String {
    let ops = cur
        .counter("net.ops")
        .saturating_sub(prev.counter("net.ops"));
    // Interval p99: the cumulative histogram counters are monotone, so the
    // element-wise delta is the interval's own histogram.
    let p99 = match cur.hist("net.op_nanos") {
        None => 0,
        Some(h) => {
            let mut d = h.clone();
            if let Some(p) = prev.hist("net.op_nanos") {
                for (a, b) in d.counts.iter_mut().zip(p.counts.iter()) {
                    *a -= b;
                }
                d.count -= p.count;
                d.sum = d.sum.saturating_sub(p.sum);
            }
            d.p99()
        }
    };
    let mut line = format!(
        "ops/s {:.0}  p99 {:.1}ms",
        ops as f64 / dt,
        p99 as f64 / 1e6
    );
    for kind in ["cow", "native"] {
        let retained = cur.gauge(&format!("mvcc.{kind}.retained_epochs"));
        if retained > 0 {
            line.push_str(&format!(
                "  {kind}: {retained} epochs pinned, oldest {:.1}ms",
                cur.gauge(&format!("mvcc.{kind}.oldest_pin_age_us")) as f64 / 1e3
            ));
        }
    }
    let mut per_shard: Vec<u64> = cur
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("shard.") && n.ends_with(".ops"))
        .map(|(n, v)| v.saturating_sub(prev.counter(n)))
        .collect();
    if per_shard.len() > 1 {
        per_shard.sort_unstable();
        line.push_str(&format!(
            "  shards: min/max ops {}/{}",
            per_shard.first().unwrap(),
            per_shard.last().unwrap()
        ));
    }
    line
}

/// Summarize snapshot-GC state for the shutdown banner.
fn gc_summary(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for kind in ["cow", "native"] {
        let pins = snap.counter(&format!("mvcc.{kind}.pins"));
        if pins == 0 {
            continue;
        }
        out.push_str(&format!(
            "\n[gm-server]   {kind}: {pins} pins ({} stale), {} publishes, \
             {} epochs / {} bytes still retained by live pins",
            snap.counter(&format!("mvcc.{kind}.stale_pins")),
            snap.counter(&format!("mvcc.{kind}.publishes")),
            snap.gauge(&format!("mvcc.{kind}.retained_epochs")),
            snap.gauge(&format!("mvcc.{kind}.retained_bytes")),
        ));
    }
    out
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: gm-server [engine-name] [--shard-id N --fleet-size N]");
        eprintln!("  engine-name: one of:");
        for kind in EngineKind::ALL {
            eprintln!("    {:<15} ({})", kind.name(), kind.emulates());
        }
        eprintln!("  --shard-id N --fleet-size N: announce a fleet shard identity in the");
        eprintln!("       HelloAck so a gm-net Fleet coordinator can verify its routing");
        eprintln!("       table (both flags required together; id < size)");
        eprintln!("  env: GM_SERVER_ADDR (default 127.0.0.1:7687)");
        eprintln!("       GM_SNAPSHOT_MODE (off|cow|native; default off = shared lock)");
        eprintln!("       GM_SHARDS (default 1; >1 hosts a gm-shard composite)");
        eprintln!("       GM_OBS (off|counters|phases; default phases)");
        eprintln!("       GM_STATS_INTERVAL_MS (default 0 = no periodic stats line)");
        eprintln!("       GM_TRACE (off|tail|all; default tail = tail-biased flight recorder)");
        eprintln!("       GM_TRACE_CAP (flight-recorder capacity, default 4096)");
        eprintln!("       GM_TRACE_DUMP (path base: dump <base>.txt/<base>.json on shutdown)");
        std::process::exit(0);
    }

    // Split flags from the positional engine name. `--shard-id`/`--fleet-size`
    // declare this process one shard of a fleet; the identity is echoed in
    // every HelloAck so the coordinator can catch a miswired address table.
    let mut args: Vec<String> = Vec::new();
    let mut shard_id: Option<u32> = None;
    let mut fleet_size: Option<u32> = None;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        let slot = match a.as_str() {
            "--shard-id" => &mut shard_id,
            "--fleet-size" => &mut fleet_size,
            _ => {
                args.push(a);
                continue;
            }
        };
        *slot = match it.next().map(|v| v.trim().parse::<u32>()) {
            Some(Ok(n)) => Some(n),
            _ => {
                eprintln!("[gm-server] {a} wants a small integer argument");
                std::process::exit(2);
            }
        };
    }
    let fleet = match (shard_id, fleet_size) {
        (None, None) => None,
        (Some(id), Some(size)) if id < size => Some((id, size)),
        (Some(id), Some(size)) => {
            eprintln!("[gm-server] --shard-id {id} must be < --fleet-size {size}");
            std::process::exit(2);
        }
        _ => {
            eprintln!("[gm-server] --shard-id and --fleet-size must be given together");
            std::process::exit(2);
        }
    };

    if let Ok(s) = std::env::var("GM_OBS") {
        match ObsMode::parse(&s) {
            Some(mode) => gm_obs::set_mode(mode),
            None => {
                eprintln!("[gm-server] unknown GM_OBS {s:?} (want off|counters|phases)");
                std::process::exit(2);
            }
        }
    }

    // gm-net must not depend on gm-bench, so the trace knobs are parsed
    // here directly (same names, same defaults as `gm_bench::config`).
    if let Ok(s) = std::env::var("GM_TRACE_CAP") {
        match s.trim().parse::<usize>() {
            Ok(cap) => trace::set_capacity(cap),
            Err(_) => {
                eprintln!("[gm-server] invalid GM_TRACE_CAP {s:?} (want a record count)");
                std::process::exit(2);
            }
        }
    }
    if let Ok(s) = std::env::var("GM_TRACE") {
        match trace::TraceMode::parse(&s) {
            Some(mode) => trace::set_mode(mode),
            None => {
                eprintln!("[gm-server] unknown GM_TRACE {s:?} (want off|tail|all)");
                std::process::exit(2);
            }
        }
    }

    let stats_interval: u64 = match std::env::var("GM_STATS_INTERVAL_MS") {
        Err(_) => 0,
        Ok(s) => match s.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("[gm-server] invalid GM_STATS_INTERVAL_MS {s:?} (want milliseconds)");
                std::process::exit(2);
            }
        },
    };

    let kind = match args.first() {
        None => EngineKind::LinkedV2,
        Some(name) => match EngineKind::parse(name) {
            Some(kind) => kind,
            None => {
                let known: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
                eprintln!("[gm-server] unknown engine {name:?} (known: {known:?})");
                std::process::exit(2);
            }
        },
    };

    let mode = match std::env::var("GM_SNAPSHOT_MODE") {
        Err(_) => None,
        Ok(s) if s.trim() == "off" || s.trim().is_empty() => None,
        Ok(s) => match SnapshotMode::parse(&s) {
            Some(mode) => Some(mode),
            None => {
                eprintln!("[gm-server] unknown GM_SNAPSHOT_MODE {s:?} (want off|cow|native)");
                std::process::exit(2);
            }
        },
    };

    let shards: usize = match std::env::var("GM_SHARDS") {
        Err(_) => 1,
        Ok(s) => match s.trim().parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("[gm-server] invalid GM_SHARDS {s:?} (want a positive integer)");
                std::process::exit(2);
            }
        },
    };

    let addr = std::env::var("GM_SERVER_ADDR").unwrap_or_else(|_| "127.0.0.1:7687".to_string());
    let bound = match (mode, shards) {
        (None, 1) => Server::bind(&addr, Box::new(move || kind.make())),
        (None, n) => Server::bind_sharded(
            &addr,
            Box::new(move || Box::new(kind.make_sharded(n)) as Box<dyn SharedGraph>),
        ),
        (Some(mode), 1) => {
            Server::bind_snapshot(&addr, Box::new(move || kind.make_snapshot_source(mode)))
        }
        (Some(mode), n) => Server::bind_snapshot(
            &addr,
            Box::new(move || {
                Box::new(kind.make_sharded_source(n, mode))
                    as Box<dyn graphmark::mvcc::SnapshotSource>
            }),
        ),
    };
    let server = match bound {
        Ok(server) => match fleet {
            Some((id, size)) => server.with_shard_identity(id, size),
            None => server,
        },
        Err(e) => {
            eprintln!("[gm-server] {e}");
            std::process::exit(1);
        }
    };
    // Report the *actual* source kind: `native` falls back to the generic
    // cow cell for engines without a native path, and the banner must not
    // claim a freeze path the operator is not measuring.
    let isolation = match (mode, shards) {
        (None, 1) => "locked".to_string(),
        (None, _) => "sharded-locked".to_string(),
        (Some(mode), 1) => format!("snapshot-{}", kind.make_snapshot_source(mode).kind()),
        (Some(mode), n) => {
            use graphmark::mvcc::SnapshotSource as _;
            format!("snapshot-{}", kind.make_sharded_source(n, mode).kind())
        }
    };
    let mut hosted = if shards == 1 {
        kind.name().to_string()
    } else {
        format!("{}/s{shards}", kind.name())
    };
    if let Some((id, size)) = fleet {
        hosted.push_str(&format!(" [shard {id}/{size}]"));
    }
    match server.local_addr() {
        Ok(bound) => eprintln!(
            "[gm-server] hosting {hosted} ({}) on {bound} — protocol v{}, {isolation} reads, \
             obs {}, trace {}",
            kind.emulates(),
            gm_net::PROTO_VERSION,
            gm_obs::mode().name(),
            trace::mode().name()
        ),
        Err(e) => eprintln!("[gm-server] hosting {hosted} ({e})"),
    }

    if stats_interval > 0 {
        if gm_obs::counters_on() {
            let interval = Duration::from_millis(stats_interval);
            std::thread::spawn(move || {
                let mut prev = gm_obs::global().snapshot();
                let mut prev_at = Instant::now();
                loop {
                    std::thread::sleep(interval);
                    let cur = gm_obs::global().snapshot();
                    let dt = prev_at.elapsed().as_secs_f64().max(1e-9);
                    eprintln!("[gm-server] {}", stats_line(&prev, &cur, dt));
                    prev = cur;
                    prev_at = Instant::now();
                }
            });
        } else {
            eprintln!("[gm-server] GM_STATS_INTERVAL_MS set but GM_OBS=off: no stats to log");
        }
    }

    server.run();

    // Graceful shutdown (stop flag tripped): dump the flight recorder if
    // asked, then leave a final accounting of what the registry saw.
    if let Ok(base) = std::env::var("GM_TRACE_DUMP") {
        let base = base.trim();
        if !base.is_empty() {
            match trace::dump_to(base, &trace::global_ring().snapshot()) {
                Ok(()) => eprintln!("[gm-server] traces dumped to {base}.txt and {base}.json"),
                Err(e) => eprintln!("[gm-server] GM_TRACE_DUMP to {base} failed: {e}"),
            }
        }
    }
    let snap = gm_obs::global().snapshot();
    if !snap.is_empty() {
        eprintln!(
            "[gm-server] final: {} ops served{}",
            snap.counter("net.ops"),
            gc_summary(&snap)
        );
    }
}
