//! `gm-server` — host a graphmark engine behind a TCP socket.
//!
//! ```sh
//! # host the default engine on the default address
//! cargo run --release -p gm-net --bin gm-server
//!
//! # pick engine and address (engine names as in `GM_ENGINES`)
//! GM_SERVER_ADDR=127.0.0.1:7687 cargo run --release -p gm-net --bin gm-server -- 'linked(v2)'
//! ```
//!
//! The server hosts **one** engine instance. Clients drive it with the
//! gm-net protocol: `RemoteEngine::connect` for trait-level access, or
//! `run_remote` / the `fig9_network` bench binary for whole workloads
//! (which reset, load and prepare the engine themselves). The process runs
//! until killed.

use graphmark::registry::EngineKind;

use gm_net::Server;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: gm-server [engine-name]");
        eprintln!("  engine-name: one of:");
        for kind in EngineKind::ALL {
            eprintln!("    {:<15} ({})", kind.name(), kind.emulates());
        }
        eprintln!("  env: GM_SERVER_ADDR (default 127.0.0.1:7687)");
        std::process::exit(0);
    }

    let kind = match args.first() {
        None => EngineKind::LinkedV2,
        Some(name) => match EngineKind::parse(name) {
            Some(kind) => kind,
            None => {
                let known: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
                eprintln!("[gm-server] unknown engine {name:?} (known: {known:?})");
                std::process::exit(2);
            }
        },
    };

    let addr = std::env::var("GM_SERVER_ADDR").unwrap_or_else(|_| "127.0.0.1:7687".to_string());
    let server = match Server::bind(&addr, Box::new(move || kind.make())) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("[gm-server] {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!(
            "[gm-server] hosting {} ({}) on {bound} — protocol v{}",
            kind.name(),
            kind.emulates(),
            gm_net::PROTO_VERSION
        ),
        Err(e) => eprintln!("[gm-server] hosting {} ({e})", kind.name()),
    }
    server.run();
}
