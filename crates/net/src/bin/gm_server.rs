//! `gm-server` — host a graphmark engine behind a TCP socket.
//!
//! ```sh
//! # host the default engine on the default address
//! cargo run --release -p gm-net --bin gm-server
//!
//! # pick engine and address (engine names as in `GM_ENGINES`)
//! GM_SERVER_ADDR=127.0.0.1:7687 cargo run --release -p gm-net --bin gm-server -- 'linked(v2)'
//!
//! # serve reads from pinned MVCC snapshots instead of the shared lock
//! GM_SNAPSHOT_MODE=cow cargo run --release -p gm-net --bin gm-server -- 'columnar(v10)'
//! ```
//!
//! The server hosts **one** engine instance. Clients drive it with the
//! gm-net protocol: `RemoteEngine::connect` for trait-level access, or
//! `run_remote` / the `fig9_network` bench binary for whole workloads
//! (which reset, load and prepare the engine themselves). The process runs
//! until killed.
//!
//! With `GM_SNAPSHOT_MODE=cow` (generic copy-on-write) or `native` (the
//! columnar engine's segment-sharing freeze path, `cow` fallback
//! elsewhere), every read request executes against a pinned epoch — remote
//! scans never block remote writers — and `ExecOp` responses carry the
//! serving epoch. Unset or `off` keeps the original shared-`RwLock`
//! hosting.
//!
//! With `GM_SHARDS=N` (N > 1) the server hosts a hash-partitioned
//! `gm-shard` composite of N engines instead of a single instance — one
//! server, many shards. In locked mode the composite's per-partition locks
//! are the only synchronization on the op path (concurrent remote writers
//! on different shards do not serialize); in snapshot mode each shard gets
//! its own MVCC cell and reads pin composite epochs.

use graphmark::mvcc::SnapshotMode;
use graphmark::registry::EngineKind;

use gm_model::SharedGraph;
use gm_net::Server;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: gm-server [engine-name]");
        eprintln!("  engine-name: one of:");
        for kind in EngineKind::ALL {
            eprintln!("    {:<15} ({})", kind.name(), kind.emulates());
        }
        eprintln!("  env: GM_SERVER_ADDR (default 127.0.0.1:7687)");
        eprintln!("       GM_SNAPSHOT_MODE (off|cow|native; default off = shared lock)");
        eprintln!("       GM_SHARDS (default 1; >1 hosts a gm-shard composite)");
        std::process::exit(0);
    }

    let kind = match args.first() {
        None => EngineKind::LinkedV2,
        Some(name) => match EngineKind::parse(name) {
            Some(kind) => kind,
            None => {
                let known: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
                eprintln!("[gm-server] unknown engine {name:?} (known: {known:?})");
                std::process::exit(2);
            }
        },
    };

    let mode = match std::env::var("GM_SNAPSHOT_MODE") {
        Err(_) => None,
        Ok(s) if s.trim() == "off" || s.trim().is_empty() => None,
        Ok(s) => match SnapshotMode::parse(&s) {
            Some(mode) => Some(mode),
            None => {
                eprintln!("[gm-server] unknown GM_SNAPSHOT_MODE {s:?} (want off|cow|native)");
                std::process::exit(2);
            }
        },
    };

    let shards: usize = match std::env::var("GM_SHARDS") {
        Err(_) => 1,
        Ok(s) => match s.trim().parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("[gm-server] invalid GM_SHARDS {s:?} (want a positive integer)");
                std::process::exit(2);
            }
        },
    };

    let addr = std::env::var("GM_SERVER_ADDR").unwrap_or_else(|_| "127.0.0.1:7687".to_string());
    let bound = match (mode, shards) {
        (None, 1) => Server::bind(&addr, Box::new(move || kind.make())),
        (None, n) => Server::bind_sharded(
            &addr,
            Box::new(move || Box::new(kind.make_sharded(n)) as Box<dyn SharedGraph>),
        ),
        (Some(mode), 1) => {
            Server::bind_snapshot(&addr, Box::new(move || kind.make_snapshot_source(mode)))
        }
        (Some(mode), n) => Server::bind_snapshot(
            &addr,
            Box::new(move || {
                Box::new(kind.make_sharded_source(n, mode))
                    as Box<dyn graphmark::mvcc::SnapshotSource>
            }),
        ),
    };
    let server = match bound {
        Ok(server) => server,
        Err(e) => {
            eprintln!("[gm-server] {e}");
            std::process::exit(1);
        }
    };
    // Report the *actual* source kind: `native` falls back to the generic
    // cow cell for engines without a native path, and the banner must not
    // claim a freeze path the operator is not measuring.
    let isolation = match (mode, shards) {
        (None, 1) => "locked".to_string(),
        (None, _) => "sharded-locked".to_string(),
        (Some(mode), 1) => format!("snapshot-{}", kind.make_snapshot_source(mode).kind()),
        (Some(mode), n) => {
            use graphmark::mvcc::SnapshotSource as _;
            format!("snapshot-{}", kind.make_sharded_source(n, mode).kind())
        }
    };
    let hosted = if shards == 1 {
        kind.name().to_string()
    } else {
        format!("{}/s{shards}", kind.name())
    };
    match server.local_addr() {
        Ok(bound) => eprintln!(
            "[gm-server] hosting {hosted} ({}) on {bound} — protocol v{}, {isolation} reads",
            kind.emulates(),
            gm_net::PROTO_VERSION
        ),
        Err(e) => eprintln!("[gm-server] hosting {hosted} ({e})"),
    }
    server.run();
}
