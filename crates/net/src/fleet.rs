//! The fleet coordinator: a sharded composite whose shards are **separate
//! server processes**.
//!
//! [`Fleet`] drives N `gm-server` processes (each announcing a shard
//! identity in its `HelloAck`) exactly the way `gm-shard`'s `ShardedGraph`
//! drives N in-process engines: vertices are hash-placed by
//! `route::shard_of_canonical`, every edge lives on its source's shard with
//! cut destinations ghosted, single-shard ops route to one socket, and
//! whole-graph scans / `in()` gathers scatter-gather across sockets with
//! the same ghost-corrected merge ([`Parts`]) the in-process composite
//! uses. The routing [`Meta`] lives client-side under the coordinator's
//! meta lock; the servers only ever see shard-local ids.
//!
//! ## Batched, pipelined dispatch
//!
//! A per-worker [`FleetCell`] queues single-shard writes client-side and
//! ships them as one `ExecBatch` frame — either when the queue reaches the
//! batch cap (`GM_FLEET_BATCH`, default 16) or lazily, the moment a read
//! touches that shard (flush-on-touch). Reads therefore always observe the
//! session's own earlier writes, while a write-heavy mix pays **fewer wire
//! round trips than it executes ops** — the frame counter shared by every
//! fleet connection proves it.
//!
//! Two deferrals make that possible, both invisible to the workload:
//!
//! * `add_vertex` returns a placeholder id (the driver's `apply_write`
//!   discards it) so the round trip can be batched;
//! * `add_edge` returns a **deferred edge id** — a tagged placeholder the
//!   flush later binds to the server-assigned composite id. The only ops
//!   that feed edge ids back in (`RemoveOwnEdge`, edge property writes)
//!   resolve the tag first, flushing the owning cell if needed.
//!
//! ## Replay equality
//!
//! A sequential fleet run replays the in-process `ShardedGraph` run
//! op-for-op: the partition, placement counter, ghost discipline, and
//! deferred resolution-map purges all mirror `gm-shard`, and the
//! flush-before-any-observation rule keeps each shard's mutation order
//! identical to the sequential op order — so servers assign the same local
//! ids and every read returns the same cardinality. The fig10 `@fleet`
//! smoke gates on exactly this.

use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use gm_core::catalog;
use gm_core::params::{ResolvedParams, Workload};
use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, GraphDb, GraphSnapshot, LoadOptions, LoadStats,
    SpaceReport, VertexData,
};
use gm_model::fxmap::FxHashMap;
use gm_model::lockorder::{self, LockRank, Ranked};
use gm_model::{lockwait, Dataset, Eid, GdbError, GdbResult, Props, QueryCtx, Value, Vid};
use gm_obs::{Counter, Phase};
use gm_shard::route::{
    decode_eid, decode_vid, encode_eid, encode_vid, partition, Meta, Partitioned, GHOST_LABEL,
};
use gm_shard::Parts;
use gm_workload::{
    apply_write, run_backend, run_backend_sequential, Backend, Op, OpResult, RunReport, Session,
    WorkloadConfig, WORKLOAD_SLOTS,
};

use crate::client::{Connection, RemoteEngine};
use crate::proto::{Request, Response};

/// Isolation label reported by fleet runs.
pub const FLEET: &str = "fleet";

/// Default client-side write-batch cap (override with `GM_FLEET_BATCH`).
const DEFAULT_BATCH_CAP: usize = 16;

/// Requests per `ExecBatch` frame on the setup path (bulk meta resolution).
const SETUP_CHUNK: usize = 8192;

/// Purge-queue depth at which a deferred resolution-map purge drains
/// eagerly (mirrors `gm-shard`'s threshold).
const PURGE_DRAIN_THRESHOLD: usize = 1024;

/// High bit marking a deferred (not yet server-assigned) edge id. Real
/// composite edge ids are `local * N + shard`; reaching bit 63 would take
/// ~2^60 edges per shard, far beyond anything the harness can hold.
const DEFERRED_BIT: u64 = 1 << 63;
/// Shard index field of a deferred edge id (15 bits at 48).
const DEFERRED_SHARD_SHIFT: u32 = 48;
const DEFERRED_SHARD_MASK: u64 = (1 << 15) - 1;
/// Tag field of a deferred edge id (low 48 bits).
const DEFERRED_TAG_MASK: u64 = (1 << 48) - 1;

fn deferred_eid(shard: usize, tag: u64) -> Eid {
    Eid(DEFERRED_BIT
        | ((shard as u64 & DEFERRED_SHARD_MASK) << DEFERRED_SHARD_SHIFT)
        | (tag & DEFERRED_TAG_MASK))
}

fn split_deferred(e: Eid) -> Option<(usize, u64)> {
    if e.0 & DEFERRED_BIT == 0 {
        return None;
    }
    Some((
        ((e.0 >> DEFERRED_SHARD_SHIFT) & DEFERRED_SHARD_MASK) as usize,
        e.0 & DEFERRED_TAG_MASK,
    ))
}

fn mismatch(expected: &str, got: &Response) -> GdbError {
    GdbError::Corrupt(format!(
        "fleet protocol mismatch: expected {expected} response, got {}",
        got.kind()
    ))
}

fn poisoned(what: &str) -> GdbError {
    GdbError::Poisoned(format!("fleet {what} poisoned"))
}

/// Per-shard fleet counters, registered only under `GM_OBS=counters`+.
struct FleetMetrics {
    /// `fleet.shard.ops.{i}`: ops routed to each shard (writes queued plus
    /// read primitives touching the shard).
    shard_ops: Vec<Counter>,
    /// `fleet.batched_ops`: ops shipped inside `ExecBatch` frames.
    batched_ops: Counter,
    /// `fleet.routing_errors`: identity mismatches, transport failures, and
    /// batch entries the servers rejected.
    routing_errors: Counter,
    /// `fleet.ghost_creations`: cross-process ghost vertices materialized.
    ghost_creations: Counter,
}

impl FleetMetrics {
    fn new(shards: usize) -> Option<FleetMetrics> {
        if !gm_obs::counters_on() {
            return None;
        }
        let g = gm_obs::global();
        Some(FleetMetrics {
            shard_ops: (0..shards)
                .map(|s| g.counter(&format!("fleet.shard.ops.{s}")))
                .collect(),
            batched_ops: g.counter("fleet.batched_ops"),
            routing_errors: g.counter("fleet.routing_errors"),
            ghost_creations: g.counter("fleet.ghost_creations"),
        })
    }

    fn note_op(&self, s: usize) {
        if let Some(c) = self.shard_ops.get(s) {
            c.inc();
        }
    }
}

/// A fleet of shard servers behind one composite-graph facade.
///
/// Shared state mirrors `ShardedGraph` field-for-field: the routing meta
/// behind a rank-tracked `RwLock`, the round-robin placement counter, and
/// the deferred purge queue. The per-connection state (write queues,
/// deferred-id bindings) lives in per-worker [`FleetCell`]s instead, so
/// sessions never contend on a socket.
pub struct Fleet {
    name: String,
    addrs: Vec<String>,
    shards: usize,
    /// One control connection per shard: setup (load, meta resolution),
    /// parameter resolution, and epoch probes.
    control: Vec<RemoteEngine>,
    meta: RwLock<Meta>,
    /// Round-robin placement counter for dynamically added vertices
    /// (same discipline as `ShardedGraph::spread`).
    spread: AtomicU64,
    /// Deferred-edge-id tag allocator (unique across sessions).
    tag_seq: AtomicU64,
    /// Composite edge ids removed but not yet purged from the canonical
    /// resolution maps (drained under the meta writer lock, exactly like
    /// `ShardedGraph::pending_purges`).
    pending_purges: Mutex<Vec<Eid>>,
    /// Frames sent across **every** fleet connection (control and worker):
    /// the wire-round-trip evidence for the batched-dispatch gate.
    round_trips: Arc<AtomicU64>,
    routing_errors: AtomicU64,
    /// Ops that crossed the wire inside `ExecBatch` frames.
    batched_ops: AtomicU64,
    batch_cap: usize,
    metrics: Option<FleetMetrics>,
}

impl Fleet {
    /// Dial every shard server and verify its announced identity matches
    /// its position: `addrs[i]` must report shard `i` of `addrs.len()`.
    pub fn connect(addrs: Vec<String>) -> GdbResult<Fleet> {
        if addrs.is_empty() {
            return Err(GdbError::Invalid(
                "fleet: need at least one server address".into(),
            ));
        }
        let shards = addrs.len();
        let batch_cap = std::env::var("GM_FLEET_BATCH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|c| *c >= 1)
            .unwrap_or(DEFAULT_BATCH_CAP);
        let mut fleet = Fleet {
            name: String::new(),
            addrs,
            shards,
            control: Vec::new(),
            meta: RwLock::new(Meta::new(shards)),
            spread: AtomicU64::new(0),
            tag_seq: AtomicU64::new(0),
            pending_purges: Mutex::new(Vec::new()),
            round_trips: Arc::new(AtomicU64::new(0)),
            routing_errors: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            batch_cap,
            metrics: FleetMetrics::new(shards),
        };
        let control: Vec<RemoteEngine> = (0..shards)
            .map(|s| fleet.dial(s).map(RemoteEngine::from_connection))
            .collect::<GdbResult<_>>()?;
        let inner = control.first().map(|c| c.name()).unwrap_or_default();
        fleet.name = format!("{inner}/f{shards}");
        fleet.control = control;
        Ok(fleet)
    }

    /// Composite display name (`"{engine}/f{N}"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shard servers.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Frames sent across every fleet connection so far. Snapshot before
    /// and after a run: the delta is the run's wire round trips, which
    /// batched dispatch keeps **below** the op count on write-heavy mixes.
    pub fn round_trips(&self) -> u64 {
        // gm-check: relaxed(monotone event count, no ordering relied upon)
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Routing errors observed: identity mismatches, transport failures,
    /// and server-rejected batch entries. A healthy run reports zero.
    pub fn routing_errors(&self) -> u64 {
        // gm-check: relaxed(monotone event count, no ordering relied upon)
        self.routing_errors.load(Ordering::Relaxed)
    }

    /// Ops that crossed the wire inside `ExecBatch` frames.
    pub fn batched_ops(&self) -> u64 {
        // gm-check: relaxed(monotone event count, no ordering relied upon)
        self.batched_ops.load(Ordering::Relaxed)
    }

    /// Fleet-wide serving epoch: the **minimum** over the shards' epochs —
    /// the newest graph version every shard has published. Monotone because
    /// each shard's epochs are (same argument as `ShardedView`); locked
    /// hosting reports 0 everywhere.
    pub fn epoch(&self) -> GdbResult<u64> {
        if self.control.is_empty() {
            return Ok(0);
        }
        let mut min = u64::MAX;
        for eng in &self.control {
            let e = eng
                .connection()
                .lock()
                .map_err(|_| poisoned("control connection mutex"))?
                .epoch()?;
            min = min.min(e);
        }
        Ok(min)
    }

    /// Reset every shard, scatter the partitioned dataset (one pipelined
    /// load batch per server, all in flight at once), build the routing
    /// meta via batched resolution probes, and resolve the workload
    /// parameters against the composite — the fleet analogue of
    /// `prepare_sharded`, entirely outside the measured region.
    pub fn setup(&self, data: &Dataset, cfg: &WorkloadConfig) -> GdbResult<ResolvedParams> {
        let parts = partition(data, self.shards)?;
        self.load_partitioned(&parts)?;
        let meta = self.build_meta_batched(&parts)?;
        {
            // gm-lock: meta
            let mut guard = self.meta_write()?;
            *guard = meta;
        }
        // A fresh load is a fresh composite: restart the placement counter
        // and forget stale deferred state, so repeated setups replay
        // identically to a newly constructed `ShardedGraph`.
        // gm-check: relaxed(setup path, single-threaded; counters restart from zero)
        self.spread.store(0, Ordering::Relaxed);
        // gm-check: relaxed(setup path, single-threaded; counters restart from zero)
        self.tag_seq.store(0, Ordering::Relaxed);
        self.purge_lock()?.clear();
        let view = self.control_view();
        let workload = Workload::choose(data, cfg.seed, WORKLOAD_SLOTS);
        workload.resolve(&view)
    }

    /// Open one fresh identity-verified connection per shard — a worker
    /// session's private sockets (its write queues must not interleave
    /// with another session's).
    pub(crate) fn open_cells(&self) -> GdbResult<Vec<FleetCell<'_>>> {
        (0..self.shards)
            .map(|s| {
                Ok(FleetCell {
                    fleet: self,
                    shard: s,
                    engine: RemoteEngine::from_connection(self.dial(s)?),
                    state: Mutex::new(CellState::default()),
                })
            })
            .collect()
    }

    fn dial(&self, s: usize) -> GdbResult<Connection> {
        let addr = self
            .addrs
            .get(s)
            .ok_or_else(|| GdbError::Invalid(format!("fleet: no address for shard {s}")))?;
        let mut conn = Connection::connect(addr)?;
        let expect = (s as u32, self.shards as u32);
        match conn.shard_identity() {
            Some(id) if id == expect => {}
            got => {
                self.note_routing_error();
                return Err(GdbError::Invalid(format!(
                    "fleet: server at {addr} reports shard identity {got:?}, expected \
                     {expect:?} — check --shard-id/--fleet-size and the address order"
                )));
            }
        }
        conn.count_frames_into(Arc::clone(&self.round_trips));
        Ok(conn)
    }

    /// Scatter the sub-datasets: lock every control connection, write every
    /// shard's `[Reset, BulkLoad, Sync]` batch, then collect the replies —
    /// N loads proceed server-side concurrently on one client thread.
    fn load_partitioned(&self, parts: &Partitioned) -> GdbResult<()> {
        let mut conns: Vec<MutexGuard<'_, Connection>> = Vec::with_capacity(self.shards);
        for eng in &self.control {
            conns.push(
                eng.connection()
                    .lock()
                    .map_err(|_| poisoned("control connection mutex"))?,
            );
        }
        for (conn, sub) in conns.iter_mut().zip(&parts.subs) {
            conn.send(&Request::ExecBatch(vec![
                Request::Reset,
                Request::BulkLoad {
                    opts: LoadOptions::default(),
                    data: sub.clone(),
                },
                Request::Sync,
            ]))?;
        }
        for conn in conns.iter_mut() {
            match conn.recv()? {
                Response::BatchDone(rsps) => {
                    for rsp in rsps {
                        if let Response::Err(e) = rsp {
                            self.note_routing_error();
                            return Err(e);
                        }
                    }
                }
                Response::Err(e) => return Err(e),
                other => return Err(mismatch("BatchDone", &other)),
            }
        }
        Ok(())
    }

    /// `route::build_meta` over the wire: the same bookkeeping resolution,
    /// but each shard's probes ship as chunked `ExecBatch` frames instead
    /// of one round trip per id.
    fn build_meta_batched(&self, parts: &Partitioned) -> GdbResult<Meta> {
        let shards = self.shards;
        let corrupt = |what: String| GdbError::Corrupt(format!("fleet load: {what}"));
        let mut meta = Meta::new(shards);
        fn shard_bucket(
            probes: &mut [Vec<(u64, u64)>],
            s: usize,
        ) -> GdbResult<&mut Vec<(u64, u64)>> {
            probes.get_mut(s).ok_or_else(|| {
                GdbError::Corrupt(format!("fleet load: partition names unknown shard {s}"))
            })
        }
        // Vertices: (global canonical, shard-local canonical), per shard.
        let mut v_probes: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
        for (canonical, (s, local_canonical)) in parts.vertex_loc.iter().enumerate() {
            shard_bucket(&mut v_probes, *s)?.push((canonical as u64, *local_canonical));
        }
        for (s, probes) in v_probes.into_iter().enumerate() {
            let reqs = probes
                .iter()
                .map(|(_, lc)| Request::ResolveVertex(*lc))
                .collect();
            let locals = self.resolve_on(s, reqs)?;
            for ((global, local_canonical), local) in probes.into_iter().zip(locals) {
                let local = local.ok_or_else(|| {
                    corrupt(format!("shard {s} lost loaded vertex {local_canonical}"))
                })?;
                let composite = encode_vid(Vid(local), s, shards).0;
                meta.vertex_resolve.insert(global, composite);
                meta.vertex_canon.insert(composite, global);
            }
        }
        // Ghosts: (shadowed global canonical, shard-local canonical).
        let mut g_probes: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
        for (s, shadowed, local_canonical) in &parts.ghosts {
            shard_bucket(&mut g_probes, *s)?.push((*shadowed, *local_canonical));
        }
        for (s, probes) in g_probes.into_iter().enumerate() {
            let reqs = probes
                .iter()
                .map(|(_, lc)| Request::ResolveVertex(*lc))
                .collect();
            let locals = self.resolve_on(s, reqs)?;
            for ((shadowed, local_canonical), local) in probes.into_iter().zip(locals) {
                let local = Vid(local.ok_or_else(|| {
                    corrupt(format!("shard {s} lost ghost vertex {local_canonical}"))
                })?);
                let composite = *meta
                    .vertex_resolve
                    .get(&shadowed)
                    .ok_or_else(|| corrupt(format!("ghost shadows unknown vertex {shadowed}")))?;
                meta.ghosts
                    .get_mut(s)
                    .ok_or_else(|| corrupt(format!("no ghost map for shard {s}")))?
                    .insert(composite, local);
                meta.rev
                    .get_mut(s)
                    .ok_or_else(|| corrupt(format!("no reverse map for shard {s}")))?
                    .insert(local.0, composite);
            }
        }
        // Edges: (global canonical, shard-local canonical).
        let mut e_probes: Vec<Vec<(u64, u64)>> = vec![Vec::new(); shards];
        for (canonical, (s, local_canonical)) in parts.edge_loc.iter().enumerate() {
            shard_bucket(&mut e_probes, *s)?.push((canonical as u64, *local_canonical));
        }
        for (s, probes) in e_probes.into_iter().enumerate() {
            let reqs = probes
                .iter()
                .map(|(_, lc)| Request::ResolveEdge(*lc))
                .collect();
            let locals = self.resolve_on(s, reqs)?;
            for ((global, local_canonical), local) in probes.into_iter().zip(locals) {
                let local = local.ok_or_else(|| {
                    corrupt(format!("shard {s} lost loaded edge {local_canonical}"))
                })?;
                let composite = encode_eid(Eid(local), s, shards).0;
                meta.edge_resolve.insert(global, composite);
                meta.edge_canon.insert(composite, global);
            }
        }
        Ok(meta)
    }

    /// Ship resolution probes to shard `s` in `SETUP_CHUNK`-sized batches;
    /// answers come back in request order.
    fn resolve_on(&self, s: usize, reqs: Vec<Request>) -> GdbResult<Vec<Option<u64>>> {
        let eng = self
            .control
            .get(s)
            .ok_or_else(|| GdbError::Invalid(format!("fleet: no control connection {s}")))?;
        let mut conn = eng
            .connection()
            .lock()
            .map_err(|_| poisoned("control connection mutex"))?;
        let mut out = Vec::with_capacity(reqs.len());
        let mut iter = reqs.into_iter();
        loop {
            let chunk: Vec<Request> = iter.by_ref().take(SETUP_CHUNK).collect();
            if chunk.is_empty() {
                break;
            }
            for rsp in conn.call_batch(chunk)? {
                match rsp {
                    Response::OptU64(v) => out.push(v),
                    Response::Err(e) => return Err(e),
                    other => return Err(mismatch("OptU64", &other)),
                }
            }
        }
        Ok(out)
    }

    /// The composite read view over the control connections (setup-path
    /// parameter resolution; no write queues involved).
    fn control_view(&self) -> FleetView<'_> {
        FleetView {
            fleet: self,
            cells: self
                .control
                .iter()
                .map(|c| c as &dyn GraphSnapshot)
                .collect(),
        }
    }

    // ----- lock plumbing (mirrors ShardedGraph) ---------------------------

    fn meta_read(&self) -> GdbResult<Ranked<RwLockReadGuard<'_, Meta>>> {
        // gm-lock: meta
        let t = lockorder::acquire(LockRank::Meta, "gm-net/fleet.rs meta read");
        lockwait::timed(|| self.meta.read())
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("meta read lock"))
    }

    fn meta_write(&self) -> GdbResult<Ranked<RwLockWriteGuard<'_, Meta>>> {
        // gm-lock: meta
        let t = lockorder::acquire(LockRank::Meta, "gm-net/fleet.rs meta write");
        lockwait::timed(|| self.meta.write())
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("meta write lock"))
    }

    fn purge_lock(&self) -> GdbResult<Ranked<MutexGuard<'_, Vec<Eid>>>> {
        // gm-lock: leaf
        let t = lockorder::acquire(LockRank::Leaf, "gm-net/fleet.rs purge queue");
        self.pending_purges
            .lock()
            .map(|g| Ranked::new(g, t))
            .map_err(|_| poisoned("purge queue"))
    }

    /// Defer a removed edge's resolution-map purge (mirrors
    /// `ShardedGraph::sh_remove_edge`'s queue + depth cap).
    fn defer_purge(&self, e: Eid) -> GdbResult<()> {
        let depth = {
            // gm-lock: leaf
            let mut q = self.purge_lock()?;
            q.push(e);
            q.len()
        };
        if depth >= PURGE_DRAIN_THRESHOLD {
            self.drain_purges()?;
        }
        Ok(())
    }

    /// Apply deferred purges, taking the meta writer lock only when the
    /// queue is non-empty.
    fn drain_purges(&self) -> GdbResult<()> {
        {
            // gm-lock: leaf transient
            let q = self.purge_lock()?;
            if q.is_empty() {
                return Ok(());
            }
        }
        // gm-lock: meta
        let mut meta = self.meta_write()?;
        self.drain_purges_into(&mut meta)
    }

    /// Apply deferred purges into an already-held meta writer guard.
    fn drain_purges_into(&self, meta: &mut Meta) -> GdbResult<()> {
        // gm-lock: leaf
        let mut q = self.purge_lock()?;
        for e in q.drain(..) {
            meta.purge_edge(e);
        }
        Ok(())
    }

    fn note_routing_error(&self) {
        // gm-check: relaxed(pure event count, no ordering relied upon)
        self.routing_errors.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.routing_errors.inc();
        }
    }

    /// Materialize a ghost for composite vertex `dst` on shard `s` —
    /// the cross-process mirror of `sh_add_edge`'s slow path. Validates
    /// the remote endpoint first (owner-shard read, finished before the
    /// meta writer lock), re-checks under the writer lock (another session
    /// may have won the race), and flushes the source cell before the
    /// direct `AddVertex` so the server assigns local ids in op order.
    fn create_ghost(
        &self,
        cells: &[FleetCell<'_>],
        s: usize,
        dst: Vid,
        local_dst_owner: Vid,
        dst_shard: usize,
    ) -> GdbResult<Vid> {
        {
            let owner = cell_of(cells, dst_shard)?;
            if owner.vertex(local_dst_owner)?.is_none() {
                return Err(GdbError::VertexNotFound(dst.0));
            }
        }
        // gm-lock: meta
        let mut meta = self.meta_write()?;
        // Opportunistic purge drain, as in the in-process composite: this
        // is the only write path taking the meta writer lock mid-run.
        self.drain_purges_into(&mut meta)?;
        if let Some(g) = meta.ghosts.get(s).and_then(|m| m.get(&dst.0)).copied() {
            return Ok(g); // raced another session: reuse its ghost
        }
        let cell = cell_of(cells, s)?;
        cell.flush()?;
        let ghost = match cell.call(&Request::AddVertex {
            label: GHOST_LABEL.to_string(),
            props: Vec::new(),
        })? {
            Response::U64(v) => Vid(v),
            other => return Err(mismatch("U64 (ghost AddVertex)", &other)),
        };
        meta.ghosts
            .get_mut(s)
            .ok_or_else(|| GdbError::Corrupt(format!("fleet: no ghost map for shard {s}")))?
            .insert(dst.0, ghost);
        meta.rev
            .get_mut(s)
            .ok_or_else(|| GdbError::Corrupt(format!("fleet: no reverse map for shard {s}")))?
            .insert(ghost.0, dst.0);
        if let Some(m) = &self.metrics {
            m.ghost_creations.inc();
        }
        Ok(ghost)
    }
}

fn cell_of<'c, 'a>(cells: &'c [FleetCell<'a>], s: usize) -> GdbResult<&'c FleetCell<'a>> {
    cells
        .get(s)
        .ok_or_else(|| GdbError::Corrupt(format!("fleet: op routed to unknown shard {s}")))
}

/// Per-session client-side state of one shard connection.
#[derive(Default)]
struct CellState {
    /// Queued single-shard writes, in op order.
    queue: Vec<Request>,
    /// Positions in `queue` holding a deferred-id `AddEdge`, with the tag
    /// each position answers.
    tags: Vec<(usize, u64)>,
    /// Deferred tag → server-assigned composite edge id (bound at flush,
    /// consumed by the first op that feeds the id back in).
    resolved: FxHashMap<u64, Eid>,
}

/// One worker session's endpoint for one shard: a private connection plus
/// the client-side write queue. Implements [`GraphSnapshot`] so it can
/// stand in [`Parts`]' shard slot — every read primitive **flushes the
/// queue first** (flush-on-touch), so a session always observes its own
/// earlier writes, while untouched shards keep batching.
///
/// The state sits behind a `Mutex` only because `GraphSnapshot` requires
/// `Sync`; a cell is never actually shared across threads, so the lock is
/// uncontended.
pub(crate) struct FleetCell<'a> {
    fleet: &'a Fleet,
    shard: usize,
    engine: RemoteEngine,
    state: Mutex<CellState>,
}

impl FleetCell<'_> {
    fn state(&self) -> GdbResult<MutexGuard<'_, CellState>> {
        self.state.lock().map_err(|_| poisoned("cell state mutex"))
    }

    fn conn(&self) -> GdbResult<MutexGuard<'_, Connection>> {
        self.engine
            .connection()
            .lock()
            .map_err(|_| poisoned("cell connection mutex"))
    }

    /// One direct round trip (caller has flushed if ordering matters).
    fn call(&self, req: &Request) -> GdbResult<Response> {
        if let Some(m) = &self.fleet.metrics {
            m.note_op(self.shard);
        }
        match self.conn()?.call(req) {
            Ok(rsp) => Ok(rsp),
            Err(e) => {
                self.fleet.note_routing_error();
                Err(e)
            }
        }
    }

    /// Queue a single-shard write; ships the queue when it reaches the
    /// batch cap.
    fn queue_write(&self, req: Request, tag: Option<u64>) -> GdbResult<()> {
        let depth = {
            let mut st = self.state()?;
            if let Some(t) = tag {
                let at = st.queue.len();
                st.tags.push((at, t));
            }
            st.queue.push(req);
            st.queue.len()
        };
        if let Some(m) = &self.fleet.metrics {
            m.note_op(self.shard);
        }
        if depth >= self.fleet.batch_cap {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship the queued writes as one `ExecBatch` frame and bind deferred
    /// edge ids from the responses. A server-rejected entry surfaces as
    /// this call's error — a queued write's op already reported success,
    /// so the failure lands on the op that forced the flush (and in the
    /// `fleet.routing_errors` counter, which healthy runs keep at zero).
    pub(crate) fn flush(&self) -> GdbResult<()> {
        let (reqs, tags) = {
            let mut st = self.state()?;
            if st.queue.is_empty() {
                return Ok(());
            }
            (mem::take(&mut st.queue), mem::take(&mut st.tags))
        };
        let count = reqs.len() as u64;
        let rsps = match self.conn()?.call_batch(reqs) {
            Ok(r) => r,
            Err(e) => {
                self.fleet.note_routing_error();
                return Err(e);
            }
        };
        // gm-check: relaxed(pure event count, no ordering relied upon)
        self.fleet.batched_ops.fetch_add(count, Ordering::Relaxed);
        if let Some(m) = &self.fleet.metrics {
            m.batched_ops.add(count);
        }
        let tag_at: FxHashMap<usize, u64> = tags.into_iter().collect();
        let mut st = self.state()?;
        for (at, rsp) in rsps.into_iter().enumerate() {
            match (tag_at.get(&at), rsp) {
                (_, Response::Err(e)) => {
                    self.fleet.note_routing_error();
                    return Err(e);
                }
                (Some(&tag), Response::U64(local)) => {
                    st.resolved
                        .insert(tag, encode_eid(Eid(local), self.shard, self.fleet.shards));
                }
                (Some(_), other) => {
                    self.fleet.note_routing_error();
                    return Err(mismatch("U64 (deferred AddEdge)", &other));
                }
                (None, _) => {}
            }
        }
        Ok(())
    }

    /// Bind a deferred edge id to its server-assigned composite id,
    /// flushing this cell if the tag is still in flight. Consuming the
    /// binding keeps the map from growing over a long session.
    fn take_resolved(&self, tag: u64) -> GdbResult<Eid> {
        if let Some(e) = self.state()?.resolved.remove(&tag) {
            return Ok(e);
        }
        self.flush()?;
        self.state()?.resolved.remove(&tag).ok_or_else(|| {
            GdbError::Corrupt(format!(
                "fleet: deferred edge tag {tag} on shard {} never materialized",
                self.shard
            ))
        })
    }

    /// Flush-on-touch prelude for every read primitive.
    fn touch(&self) -> GdbResult<()> {
        if let Some(m) = &self.fleet.metrics {
            m.note_op(self.shard);
        }
        self.flush()
    }
}

impl GraphSnapshot for FleetCell<'_> {
    // gm-check: allow-default(epoch: fleet cells answer shard-local reads under locked hosting; the fleet-wide epoch is Fleet::epoch)

    fn name(&self) -> String {
        self.engine.name()
    }

    fn features(&self) -> EngineFeatures {
        let _ = self.touch();
        self.engine.features()
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        self.touch().ok()?;
        self.engine.resolve_vertex(canonical)
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.touch().ok()?;
        self.engine.resolve_edge(canonical)
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.touch()?;
        self.engine.vertex_count(ctx)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.touch()?;
        self.engine.edge_count(ctx)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.touch()?;
        self.engine.edge_label_set(ctx)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.touch()?;
        self.engine.vertices_with_property(name, value, ctx)
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.touch()?;
        self.engine.edges_with_property(name, value, ctx)
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.touch()?;
        self.engine.edges_with_label(label, ctx)
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        self.touch()?;
        self.engine.vertex(v)
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        self.touch()?;
        self.engine.edge(e)
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.touch()?;
        self.engine.neighbors(v, dir, label, ctx)
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.touch()?;
        self.engine.vertex_edges(v, dir, label, ctx)
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.touch()?;
        self.engine.vertex_degree(v, dir, ctx)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.touch()?;
        self.engine.vertex_edge_labels(v, dir, ctx)
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.touch()?;
        self.engine.degree_scan(dir, k, ctx)
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.touch()?;
        self.engine.distinct_neighbor_scan(dir, ctx)
    }

    fn scan_vertices<'b>(
        &'b self,
        ctx: &'b QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'b>> {
        self.touch()?;
        self.engine.scan_vertices(ctx)
    }

    fn scan_edges<'b>(
        &'b self,
        ctx: &'b QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'b>> {
        self.touch()?;
        self.engine.scan_edges(ctx)
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.touch()?;
        self.engine.vertex_property(v, name)
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.touch()?;
        self.engine.edge_property(e, name)
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        self.touch()?;
        self.engine.edge_endpoints(e)
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        self.touch()?;
        self.engine.edge_label(e)
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        self.touch()?;
        self.engine.vertex_label(v)
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        if self.touch().is_err() {
            return false;
        }
        self.engine.has_vertex_index(prop)
    }

    fn space(&self) -> SpaceReport {
        if self.touch().is_err() {
            return SpaceReport::default();
        }
        self.engine.space()
    }
}

/// The composite read view a session's ops run against: [`Parts`] over the
/// session's cells with the fleet meta read-locked per primitive — the same
/// per-primitive isolation the locked in-process composite provides.
pub(crate) struct FleetView<'a> {
    fleet: &'a Fleet,
    cells: Vec<&'a dyn GraphSnapshot>,
}

impl FleetView<'_> {
    fn with_parts<R>(&self, f: impl FnOnce(&Parts<'_>) -> R) -> GdbResult<R> {
        // gm-lock: meta
        let meta = self.fleet.meta_read()?;
        let refs: Vec<Option<&dyn GraphSnapshot>> = self.cells.iter().map(|c| Some(*c)).collect();
        Ok(f(&Parts {
            name: &self.fleet.name,
            shards: &refs,
            meta: &meta,
        }))
    }
}

impl GraphSnapshot for FleetView<'_> {
    // gm-check: allow-default(epoch: locked fleet hosting is unversioned — reads observe whatever writes have landed; Fleet::epoch reports the fleet-wide minimum for monotonicity gates)

    fn name(&self) -> String {
        self.fleet.name.clone()
    }

    fn features(&self) -> EngineFeatures {
        self.with_parts(|p| p.features()).unwrap_or(EngineFeatures {
            name: self.fleet.name.clone(),
            system_type: "Fleet composite".into(),
            storage: "unavailable (poisoned meta lock)".into(),
            edge_traversal: "cross-process scatter-gather".into(),
            optimized_adapter: false,
            async_writes: false,
            attribute_indexes: false,
        })
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        // Deferred removal purges apply first, so a deleted element stops
        // resolving exactly as it does in-process.
        self.fleet.drain_purges().ok()?;
        self.with_parts(|p| p.resolve_vertex(canonical)).ok()?
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        self.fleet.drain_purges().ok()?;
        self.with_parts(|p| p.resolve_edge(canonical)).ok()?
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_parts(|p| p.vertex_count(ctx))?
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_parts(|p| p.edge_count(ctx))?
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.with_parts(|p| p.edge_label_set(ctx))?
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.vertices_with_property(name, value, ctx))?
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        self.with_parts(|p| p.edges_with_property(name, value, ctx))?
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        self.with_parts(|p| p.edges_with_label(label, ctx))?
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        self.with_parts(|p| p.vertex(v))?
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        self.with_parts(|p| p.edge(e))?
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.neighbors(v, dir, label, ctx))?
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        self.with_parts(|p| p.vertex_edges(v, dir, label, ctx))?
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        self.with_parts(|p| p.vertex_degree(v, dir, ctx))?
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        self.with_parts(|p| p.vertex_edge_labels(v, dir, ctx))?
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.degree_scan(dir, k, ctx))?
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        self.with_parts(|p| p.distinct_neighbor_scan(dir, ctx))?
    }

    fn scan_vertices<'b>(
        &'b self,
        ctx: &'b QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'b>> {
        let items = self.with_parts(|p| p.scan_vertices(ctx))??;
        Ok(Box::new(items.into_iter()))
    }

    fn scan_edges<'b>(
        &'b self,
        ctx: &'b QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'b>> {
        let items = self.with_parts(|p| p.scan_edges(ctx))??;
        Ok(Box::new(items.into_iter()))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        self.with_parts(|p| p.vertex_property(v, name))?
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        self.with_parts(|p| p.edge_property(e, name))?
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        self.with_parts(|p| p.edge_endpoints(e))?
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        self.with_parts(|p| p.edge_label(e))?
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        self.with_parts(|p| p.vertex_label(v))?
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        self.with_parts(|p| p.has_vertex_index(prop))
            .unwrap_or(false)
    }

    fn space(&self) -> SpaceReport {
        self.with_parts(|p| p.space()).unwrap_or_default()
    }
}

fn fleet_view<'a>(fleet: &'a Fleet, cells: &'a [FleetCell<'a>]) -> FleetView<'a> {
    FleetView {
        fleet,
        cells: cells.iter().map(|c| c as &dyn GraphSnapshot).collect(),
    }
}

/// The mutation handle a fleet session's writes run through — the
/// cross-process mirror of `gm-shard`'s `SharedWriter`, with queueing:
/// single-shard writes enqueue on their cell (shipped by cap or
/// flush-on-touch), cut edges go through the fleet's ghost discipline.
struct FleetWriter<'a> {
    fleet: &'a Fleet,
    cells: &'a [FleetCell<'a>],
    view: FleetView<'a>,
}

impl FleetWriter<'_> {
    /// Bind a possibly-deferred edge id to its real composite id.
    fn resolve_eid(&self, e: Eid) -> GdbResult<Eid> {
        match split_deferred(e) {
            None => Ok(e),
            Some((s, tag)) => cell_of(self.cells, s)?.take_resolved(tag),
        }
    }
}

impl GraphSnapshot for FleetWriter<'_> {
    // Reads through the writer handle go through the full composite view —
    // complete by construction, including the bulk-scan overrides.
    gm_model::forward_graph_snapshot!(target = |s| &s.view);
}

impl GraphDb for FleetWriter<'_> {
    fn bulk_load(&mut self, _data: &Dataset, _opts: &LoadOptions) -> GdbResult<LoadStats> {
        Err(GdbError::Invalid(
            "fleet sessions load via Fleet::setup, not through a writer".into(),
        ))
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        let n = self.fleet.shards;
        // gm-check: relaxed(round-robin placement counter: any interleaving is a valid placement)
        let s = (self.fleet.spread.fetch_add(1, Ordering::Relaxed) % n as u64) as usize;
        cell_of(self.cells, s)?.queue_write(
            Request::AddVertex {
                label: label.to_string(),
                props: props.clone(),
            },
            None,
        )?;
        // The driver's apply_write discards the id of a workload AddVertex,
        // so the batched round trip never needs to answer. The placeholder
        // is deliberately out of the composite id space.
        Ok(Vid(DEFERRED_BIT))
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        let n = self.fleet.shards;
        let (local_src, s) = decode_vid(src, n);
        let (local_dst_owner, dst_shard) = decode_vid(dst, n);
        let local_dst = if dst_shard == s {
            local_dst_owner
        } else {
            // Cut edge: ghost fast path first, creation on miss — the same
            // discipline (and lock order) as `sh_add_edge`.
            // gm-lock: meta transient
            let known = self
                .fleet
                .meta_read()?
                .ghosts
                .get(s)
                .and_then(|m| m.get(&dst.0))
                .copied();
            match known {
                Some(ghost) => ghost,
                None => self
                    .fleet
                    .create_ghost(self.cells, s, dst, local_dst_owner, dst_shard)?,
            }
        };
        // gm-check: relaxed(tag allocator: uniqueness is all that matters)
        let tag = self.fleet.tag_seq.fetch_add(1, Ordering::Relaxed);
        cell_of(self.cells, s)?.queue_write(
            Request::AddEdge {
                src: local_src.0,
                dst: local_dst.0,
                label: label.to_string(),
                props: props.clone(),
            },
            Some(tag),
        )?;
        Ok(deferred_eid(s, tag))
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        let (local, owner) = decode_vid(v, self.fleet.shards);
        cell_of(self.cells, owner)?.queue_write(
            Request::SetVertexProp {
                v: local.0,
                name: name.to_string(),
                value,
            },
            None,
        )
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        let e = self.resolve_eid(e)?;
        let (local, s) = decode_eid(e, self.fleet.shards);
        cell_of(self.cells, s)?.queue_write(
            Request::SetEdgeProp {
                e: local.0,
                name: name.to_string(),
                value,
            },
            None,
        )
    }

    fn remove_vertex(&mut self, _v: Vid) -> GdbResult<()> {
        // In-process this takes every shard's write guard at once; across
        // processes that would need a fleet-wide stop-the-world. No
        // workload mix issues it, so it stays unimplemented rather than
        // subtly non-atomic.
        Err(GdbError::Unsupported(
            "fleet writer: remove_vertex requires a cross-process stop-the-world".into(),
        ))
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        let e = self.resolve_eid(e)?;
        let (local, s) = decode_eid(e, self.fleet.shards);
        cell_of(self.cells, s)?.queue_write(Request::RemoveEdge(local.0), None)?;
        // Same deferral as in-process: the resolution-map purge rides the
        // queue until a meta writer (ghost creation) or the depth cap
        // drains it.
        self.fleet.defer_purge(e)
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        let (local, owner) = decode_vid(v, self.fleet.shards);
        let cell = cell_of(self.cells, owner)?;
        cell.flush()?; // the previous value answers: FIFO before reading
        match cell.call(&Request::RemoveVertexProp {
            v: local.0,
            name: name.to_string(),
        })? {
            Response::OptValue(v) => Ok(v),
            other => Err(mismatch("OptValue", &other)),
        }
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        let e = self.resolve_eid(e)?;
        let (local, s) = decode_eid(e, self.fleet.shards);
        let cell = cell_of(self.cells, s)?;
        cell.flush()?;
        match cell.call(&Request::RemoveEdgeProp {
            e: local.0,
            name: name.to_string(),
        })? {
            Response::OptValue(v) => Ok(v),
            other => Err(mismatch("OptValue", &other)),
        }
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        // Homogeneous shards, same as in-process: all or none support it.
        for cell in self.cells {
            cell.flush()?;
            match cell.call(&Request::CreateVertexIndex {
                prop: prop.to_string(),
            })? {
                Response::Unit => {}
                other => return Err(mismatch("Unit", &other)),
            }
        }
        Ok(())
    }

    fn sync(&mut self) -> GdbResult<()> {
        for cell in self.cells {
            cell.flush()?;
            match cell.call(&Request::Sync)? {
                Response::Unit => {}
                other => return Err(mismatch("Unit", &other)),
            }
        }
        Ok(())
    }
}

/// Workload backend over a connected [`Fleet`]: each worker session dials
/// its own set of per-shard connections.
pub struct FleetBackend<'a> {
    fleet: &'a Fleet,
    params: &'a ResolvedParams,
    op_timeout: Duration,
}

impl<'a> FleetBackend<'a> {
    /// Wrap a connected, loaded, parameter-resolved fleet.
    pub fn new(fleet: &'a Fleet, params: &'a ResolvedParams, op_timeout: Duration) -> Self {
        FleetBackend {
            fleet,
            params,
            op_timeout,
        }
    }
}

impl Backend for FleetBackend<'_> {
    fn engine(&self) -> String {
        self.fleet.name.clone()
    }

    fn isolation(&self) -> String {
        FLEET.into()
    }

    fn open_session(&self, _worker: usize) -> GdbResult<Box<dyn Session + '_>> {
        Ok(Box::new(FleetSession {
            fleet: self.fleet,
            params: self.params,
            op_timeout: self.op_timeout,
            cells: self.fleet.open_cells()?,
            owned_edges: Vec::new(),
        }))
    }
}

struct FleetSession<'a> {
    fleet: &'a Fleet,
    params: &'a ResolvedParams,
    op_timeout: Duration,
    cells: Vec<FleetCell<'a>>,
    owned_edges: Vec<Eid>,
}

impl Session for FleetSession<'_> {
    fn execute(&mut self, op: Op, worker: usize, op_index: u64) -> GdbResult<OpResult> {
        // Meta-lock acquisitions on this path report through the
        // thread-local accumulator; this worker owns its thread.
        lockwait::reset();
        let timing = gm_obs::phases_on();
        let t0 = timing.then(Instant::now);
        let card = match op {
            Op::Read(inst) => {
                let ctx = QueryCtx::with_timeout(self.op_timeout);
                let view = fleet_view(self.fleet, &self.cells);
                catalog::execute_read(&inst, &view, self.params, &ctx)?
            }
            Op::Write(wop) => {
                let mut writer = FleetWriter {
                    fleet: self.fleet,
                    cells: &self.cells,
                    view: fleet_view(self.fleet, &self.cells),
                };
                apply_write(
                    wop,
                    &mut writer,
                    self.params,
                    worker,
                    op_index,
                    &mut self.owned_edges,
                )?
            }
        };
        let mut out = OpResult::plain(card).with_lock_wait(lockwait::take());
        if let Some(t) = t0 {
            // Everything outside client-side lock waiting is wire work
            // (socket round trips plus frame codec) — the number the
            // in-process composite pays zero of.
            let wall = t.elapsed().as_nanos() as u64;
            let lock = out.lock_wait_nanos();
            out.phases.set(Phase::WireIo, wall.saturating_sub(lock));
        }
        Ok(out)
    }

    fn finish(&mut self) -> GdbResult<()> {
        // Every queued mutation lands inside the measured run.
        for cell in &self.cells {
            cell.flush()?;
        }
        Ok(())
    }
}

/// Load `data` into the fleet and drive the configured workload
/// concurrently over batched, pipelined per-worker connections — the
/// cross-process analogue of `run_sharded`.
pub fn run_fleet(fleet: &Fleet, data: &Dataset, cfg: &WorkloadConfig) -> GdbResult<RunReport> {
    let params = fleet.setup(data, cfg)?;
    let backend = FleetBackend::new(fleet, &params, cfg.op_timeout);
    run_backend(&backend, &data.name, cfg)
}

/// Sequential (single-threaded, closed-loop) replay of [`run_fleet`]'s op
/// sequences — the reference that must match the in-process
/// `run_sharded_sequential` trace op-for-op.
pub fn run_fleet_sequential(
    fleet: &Fleet,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    let params = fleet.setup(data, cfg)?;
    let backend = FleetBackend::new(fleet, &params, cfg.op_timeout);
    run_backend_sequential(&backend, &data.name, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_ids_round_trip() {
        for s in [0usize, 1, 3, 15] {
            for tag in [0u64, 1, 77, DEFERRED_TAG_MASK] {
                let e = deferred_eid(s, tag);
                assert_eq!(split_deferred(e), Some((s, tag)));
            }
        }
    }

    #[test]
    fn real_composite_ids_are_not_deferred() {
        for raw in [0u64, 1, 42, 1 << 40] {
            assert_eq!(split_deferred(Eid(raw)), None);
        }
        assert!(split_deferred(Eid(DEFERRED_BIT)).is_some());
    }
}
