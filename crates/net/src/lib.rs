//! # gm-net — socket server front-end and remote-engine client
//!
//! The paper evaluates every system in its real client/server deployment:
//! queries cross a driver/wire boundary before touching the store, so
//! dispatch and serialization cost — a dominant term for sub-millisecond
//! microbenchmark ops — is part of every measurement. This crate adds that
//! boundary to graphmark:
//!
//! * [`wire`] — length-prefixed frames and a total (panic-free,
//!   allocation-guarded) byte codec, reusing the storage layer's `Value`
//!   encoding;
//! * [`proto`] — the versioned request/response message set: one request
//!   per [`GraphDb`](gm_model::GraphDb) primitive plus `ExecOp` frames that
//!   ship a whole driver op ([`QueryId`](gm_core::catalog::QueryId) + swept
//!   params) for server-side execution, and responses carrying result
//!   payloads or losslessly round-tripped
//!   [`GdbError`](gm_model::GdbError)s;
//! * [`server`] — a std-only (tokio-free) TCP server hosting any engine
//!   behind the workload driver's shared `RwLock`, thread-per-connection
//!   with naturally pipelined request handling; the `gm-server` binary
//!   hosts any registry engine from the command line;
//! * [`client`] — [`client::RemoteEngine`] implements `GraphDb` over the
//!   wire (drops into `catalog::execute` and the sequential `Runner`
//!   unchanged), and [`client::RemoteBackend`] plugs the same socket into
//!   the concurrent workload driver: one connection per worker, closed-loop
//!   / open-loop / bounded-overload pacing all unchanged
//!   ([`client::run_remote`]).
//!
//! Determinism contract: a read-only workload driven through
//! [`client::run_remote`] over loopback produces per-op results identical
//! to the in-process sequential replay — enforced for every engine by
//! `tests/loopback.rs`.

//!
//! * [`fleet`] — [`fleet::Fleet`] coordinates N shard servers as one
//!   composite graph: hash-routed single-shard ops, ghost-corrected
//!   scatter-gather reads, and client-side write batching over pipelined
//!   per-worker connections ([`fleet::run_fleet`]).

pub mod client;
pub mod fleet;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{run_remote, run_remote_sequential, Connection, RemoteBackend, RemoteEngine};
pub use fleet::{run_fleet, run_fleet_sequential, Fleet, FleetBackend, FLEET};
pub use proto::{Request, Response, MAGIC, PROTO_VERSION};
pub use server::{EngineFactory, Server, ServerHandle, SharedFactory};
