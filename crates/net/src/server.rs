//! The std-only TCP engine server.
//!
//! One [`Server`] hosts one engine behind the same `RwLock` contract the
//! in-process driver uses — concurrent connections execute reads under the
//! shared lock while writes serialize under the exclusive one — with a
//! thread-per-connection accept loop. Each connection is a plain
//! read→execute→respond loop, so **pipelined** clients (several requests in
//! flight on one connection) are handled naturally: responses come back in
//! request order.
//!
//! The server is deliberately tokio-free: the paper's systems all expose a
//! blocking socket server per client connection, and a thread-per-connection
//! std server reproduces that deployment shape with no runtime dependency.
//!
//! State machine per connection: [`Request::Hello`] first (magic + version
//! checked, [`Response::HelloAck`] returned), then any mix of primitive
//! `GraphDb` calls and workload frames. `Reset` → `BulkLoad` → `Prepare` →
//! `ExecOp…` is the canonical benchmarking sequence (see
//! [`crate::client::run_remote`]).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard};
use std::thread;
use std::time::{Duration, Instant};

use gm_core::catalog;
use gm_core::params::{ResolvedParams, Workload};
use gm_model::lockorder::{self, LockRank, Ranked};
use gm_model::{
    lockwait, Dataset, Eid, GdbError, GdbResult, GraphDb, GraphSnapshot, QueryCtx, SharedGraph, Vid,
};
use gm_mvcc::{SnapshotSource, SourceFactory, WriteTxn};
use gm_obs::{phase, trace, Counter, Histo, Phase};
use gm_workload::{apply_write, Op};

use crate::proto::{Request, Response, MAGIC, PROTO_VERSION};
use crate::wire;

/// Factory producing fresh, empty engines — what `Reset` swaps in.
pub type EngineFactory = Box<dyn Fn() -> Box<dyn GraphDb> + Send + Sync>;

/// Factory producing fresh, empty internally-synchronized graphs
/// ([`SharedGraph`], e.g. `gm-shard`'s per-partition-locked composite).
pub type SharedFactory = Box<dyn Fn() -> Box<dyn SharedGraph> + Send + Sync>;

/// The two hosting modes a server can run in.
///
/// * `Locked` — the original contract: one engine behind an `RwLock`, reads
///   under the shared lock (a long remote scan blocks every remote writer).
/// * `Snapshot` — a `gm-mvcc` [`SnapshotSource`]: every read request pins an
///   immutable epoch and executes against it, so remote scans never block
///   remote writers, and `ExecOp` responses carry the serving epoch.
/// * `Shared` — an internally-synchronized [`SharedGraph`] (`gm-shard`'s
///   per-partition-locked composite): reads *and* writes take only the
///   outer lock's **shared** side (the exclusive side exists solely for
///   `Reset`'s engine swap), so concurrent remote writers landing on
///   different shards do not serialize in the server — the composite's own
///   per-shard locks are the only synchronization on the op path.
enum HostedEngine {
    Locked {
        factory: EngineFactory,
        engine: RwLock<Box<dyn GraphDb>>,
    },
    Snapshot {
        factory: SourceFactory,
        source: RwLock<Box<dyn SnapshotSource>>,
    },
    Shared {
        factory: SharedFactory,
        graph: RwLock<Box<dyn SharedGraph>>,
    },
}

/// A read execution view: the shared-lock guard, a pinned epoch, or a
/// swap-guard over an internally-synchronized graph.
enum ReadView<'a> {
    Guard(Ranked<RwLockReadGuard<'a, Box<dyn GraphDb>>>),
    Snap(Box<dyn GraphSnapshot>),
    Shared(Ranked<RwLockReadGuard<'a, Box<dyn SharedGraph>>>),
}

impl ReadView<'_> {
    /// The read-only engine surface to execute against.
    fn snap(&self) -> &dyn GraphSnapshot {
        match self {
            ReadView::Guard(guard) => {
                let db: &dyn GraphDb = &***guard;
                db
            }
            ReadView::Snap(snap) => snap.as_ref(),
            ReadView::Shared(guard) => {
                let g: &dyn SharedGraph = &***guard;
                g
            }
        }
    }

    /// Serving epoch: `Some` only for pinned snapshot views.
    fn epoch(&self) -> Option<u64> {
        match self {
            ReadView::Guard(_) | ReadView::Shared(_) => None,
            ReadView::Snap(snap) => Some(snap.epoch()),
        }
    }
}

/// Everything the connection handlers share.
struct Hosted {
    engine: HostedEngine,
    /// Dataset retained from the last `BulkLoad`, for `Prepare`.
    data: Mutex<Option<Dataset>>,
    /// Workload parameters resolved by `Prepare`, snapshotted per op.
    params: RwLock<Option<Arc<ResolvedParams>>>,
    /// Bumped by every `Reset`. Connections stamp their `owned_edges` pool
    /// with the generation it was filled under and discard it when the
    /// engine has since been replaced — a stale `Eid` from a discarded
    /// engine must never delete an edge of the freshly loaded one.
    generation: AtomicU64,
    /// Fleet identity `(shard_id, fleet_size)` echoed in every `HelloAck`
    /// so a fleet client can verify it dialed the shard it routed to.
    shard: Option<(u32, u32)>,
}

impl Hosted {
    fn poisoned(side: &str) -> GdbError {
        GdbError::Poisoned(format!(
            "server: engine {side} lock poisoned by a panicking writer"
        ))
    }

    fn engine_name(&self) -> GdbResult<String> {
        Ok(self.read_view()?.snap().name())
    }

    /// A read view of the hosted engine: the shared-lock guard in locked
    /// mode, a freshly pinned (strict, read-your-writes) epoch in snapshot
    /// mode. Used by the primitive `GraphDb` frames, where a client issuing
    /// `add_vertex` then `vertex_count` on one connection must see its own
    /// write.
    fn read_view(&self) -> GdbResult<ReadView<'_>> {
        match &self.engine {
            HostedEngine::Locked { engine, .. } => {
                // gm-lock: driver
                let t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs engine read");
                Ok(ReadView::Guard(Ranked::new(
                    lockwait::timed(|| engine.read()).map_err(|_| Self::poisoned("read"))?,
                    t,
                )))
            }
            HostedEngine::Snapshot { source, .. } => {
                // gm-lock: driver transient
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs source read pin");
                Ok(ReadView::Snap(
                    lockwait::timed(|| source.read())
                        .map_err(|_| Self::poisoned("source read"))?
                        .snapshot()?,
                ))
            }
            HostedEngine::Shared { graph, .. } => {
                // gm-lock: driver
                let t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs shared read");
                Ok(ReadView::Shared(Ranked::new(
                    lockwait::timed(|| graph.read()).map_err(|_| Self::poisoned("shared read"))?,
                    t,
                )))
            }
        }
    }

    /// Like [`Hosted::read_view`], but in snapshot mode the pin tolerates
    /// bounded staleness (`gm-workload`'s pin cadence), so the `ExecOp` hot
    /// path never serializes behind per-request epoch publishes.
    fn read_view_recent(&self) -> GdbResult<ReadView<'_>> {
        match &self.engine {
            HostedEngine::Locked { .. } | HostedEngine::Shared { .. } => self.read_view(),
            HostedEngine::Snapshot { source, .. } => {
                // gm-lock: driver transient
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs source recent pin");
                Ok(ReadView::Snap(
                    lockwait::timed(|| source.read())
                        .map_err(|_| Self::poisoned("source read"))?
                        .snapshot_recent(gm_workload::SNAPSHOT_PIN_STALENESS)?,
                ))
            }
        }
    }

    /// Run one mutation against the hosted engine (exclusive lock in locked
    /// mode, the source's write path in snapshot mode).
    fn with_engine_write<R>(
        &self,
        f: impl FnOnce(&mut dyn GraphDb) -> GdbResult<R>,
    ) -> GdbResult<R> {
        match &self.engine {
            HostedEngine::Locked { engine, .. } => {
                // gm-lock: driver
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs engine write");
                let mut db =
                    lockwait::timed(|| engine.write()).map_err(|_| Self::poisoned("write"))?;
                f(db.as_mut())
            }
            HostedEngine::Snapshot { source, .. } => {
                // gm-lock: driver
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs source write");
                let source =
                    lockwait::timed(|| source.read()).map_err(|_| Self::poisoned("source read"))?;
                let mut once = Some(f);
                let mut out: Option<R> = None;
                source.with_write(&mut |db| {
                    let f = once.take().expect("write closure runs once");
                    out = Some(f(db)?);
                    Ok(0)
                })?;
                Ok(out.expect("write closure ran"))
            }
            // The graph synchronizes internally (per-shard locks): writes
            // take only the *shared* side of the swap lock, so two remote
            // writers landing on different shards run in parallel.
            HostedEngine::Shared { graph, .. } => {
                // gm-lock: driver
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs shared write");
                let graph =
                    lockwait::timed(|| graph.read()).map_err(|_| Self::poisoned("shared read"))?;
                let mut once = Some(f);
                let mut out: Option<R> = None;
                graph.with_write(&mut |db| {
                    let f = once.take().expect("write closure runs once");
                    out = Some(f(db)?);
                    Ok(0)
                })?;
                Ok(out.expect("write closure ran"))
            }
        }
    }

    /// Replace the hosted engine with a fresh one from its factory.
    fn reset_engine(&self) -> GdbResult<()> {
        match &self.engine {
            HostedEngine::Locked { factory, engine } => {
                // gm-lock: driver
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs engine reset");
                let mut db = engine.write().map_err(|_| Self::poisoned("write"))?;
                *db = factory();
            }
            HostedEngine::Snapshot { factory, source } => {
                // gm-lock: driver
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs source reset");
                let mut src = source.write().map_err(|_| Self::poisoned("source write"))?;
                *src = factory();
            }
            HostedEngine::Shared { factory, graph } => {
                // gm-lock: driver
                let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs shared reset");
                let mut g = graph.write().map_err(|_| Self::poisoned("shared write"))?;
                *g = factory();
            }
        }
        Ok(())
    }
}

/// A bound, not-yet-running engine server.
pub struct Server {
    listener: TcpListener,
    hosted: Arc<Hosted>,
    stop: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (use `"127.0.0.1:0"` at bind time to get an
    /// OS-assigned loopback port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Connections
    /// already open keep working until their clients hang up; they hold only
    /// an `Arc` to the hosted engine.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:7687"` or `"127.0.0.1:0"`), hosting
    /// engines produced by `factory` behind the shared `RwLock` (reads block
    /// writes and vice versa). One engine is created immediately so the
    /// server is usable before any `Reset`.
    pub fn bind(addr: &str, factory: EngineFactory) -> GdbResult<Server> {
        let engine = factory();
        Self::bind_hosted(
            addr,
            HostedEngine::Locked {
                factory,
                engine: RwLock::new(engine),
            },
        )
    }

    /// Bind to `addr` hosting a `gm-mvcc` snapshot source: read requests pin
    /// an immutable epoch (remote scans never block remote writers) and
    /// `ExecOp` responses carry the serving epoch.
    pub fn bind_snapshot(addr: &str, factory: SourceFactory) -> GdbResult<Server> {
        let source = factory();
        Self::bind_hosted(
            addr,
            HostedEngine::Snapshot {
                factory,
                source: RwLock::new(source),
            },
        )
    }

    /// Bind to `addr` hosting an internally-synchronized [`SharedGraph`]
    /// (e.g. `gm-shard`'s per-partition-locked composite): both reads and
    /// writes take only the shared side of the outer swap lock, so the
    /// hosted graph's own locks are the only synchronization on the op
    /// path — one server, many shards.
    pub fn bind_sharded(addr: &str, factory: SharedFactory) -> GdbResult<Server> {
        let graph = factory();
        Self::bind_hosted(
            addr,
            HostedEngine::Shared {
                factory,
                graph: RwLock::new(graph),
            },
        )
    }

    fn bind_hosted(addr: &str, engine: HostedEngine) -> GdbResult<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| GdbError::Io(format!("binding {addr}: {e}")))?;
        Ok(Server {
            listener,
            hosted: Arc::new(Hosted {
                engine,
                data: Mutex::new(None),
                params: RwLock::new(None),
                generation: AtomicU64::new(0),
                shard: None,
            }),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Declare this server one shard of a fleet: `HelloAck` then carries
    /// `(shard_id, fleet_size)` so a fleet client can verify its routing
    /// table against the process it actually dialed. Call before
    /// [`Server::run`]/[`Server::spawn`] — identity is fixed once serving.
    pub fn with_shard_identity(mut self, shard_id: u32, fleet_size: u32) -> Server {
        if let Some(hosted) = Arc::get_mut(&mut self.hosted) {
            hosted.shard = Some((shard_id, fleet_size));
        }
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> GdbResult<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| GdbError::Io(e.to_string()))
    }

    /// Run the accept loop on the current thread until shutdown (the
    /// `gm-server` binary's main loop).
    pub fn run(self) {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let hosted = Arc::clone(&self.hosted);
                    thread::spawn(move || handle_conn(stream, hosted));
                }
                Err(e) => eprintln!("[gm-server] accept failed: {e}"),
            }
        }
    }

    /// Run the accept loop on a background thread; returns a handle with
    /// the bound address and a shutdown switch.
    pub fn spawn(self) -> GdbResult<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let join = thread::spawn(move || self.run());
        Ok(ServerHandle { addr, stop, join })
    }
}

/// Server-side op metrics (`net.ops` counter, `net.op_nanos` latency
/// histogram), resolved once against the global registry. `None` under
/// `GM_OBS=off` so the hot path pays nothing.
struct NetMetrics {
    ops: Counter,
    op_nanos: Histo,
}

/// The server's tail gate: one latency population per process (every op
/// the server executes), feeding the global flight recorder.
static SERVER_GATE: trace::TailGate = trace::TailGate::new();

fn net_metrics() -> Option<&'static NetMetrics> {
    static METRICS: OnceLock<Option<NetMetrics>> = OnceLock::new();
    METRICS
        .get_or_init(|| {
            gm_obs::counters_on().then(|| {
                let g = gm_obs::global();
                NetMetrics {
                    ops: g.counter("net.ops"),
                    op_nanos: g.histogram("net.op_nanos"),
                }
            })
        })
        .as_ref()
}

/// Deadline context from a wire timeout (0 = unbounded).
fn ctx_for(timeout_micros: u64) -> QueryCtx {
    if timeout_micros == 0 {
        QueryCtx::unbounded()
    } else {
        QueryCtx::with_timeout(Duration::from_micros(timeout_micros))
    }
}

fn handle_conn(stream: TcpStream, hosted: Arc<Hosted>) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[gm-server] cannot clone stream: {e}");
            return;
        }
    };
    let mut writer = stream;

    // Handshake first: anything else (or a magic/version mismatch) gets one
    // error frame and the connection is closed — never misparse an
    // incompatible peer.
    match read_request(&mut reader) {
        Ok(Request::Hello { magic, version }) if magic == MAGIC && version == PROTO_VERSION => {
            let rsp = match hosted.engine_name() {
                Ok(engine) => Response::HelloAck {
                    version: PROTO_VERSION,
                    engine,
                    shard: hosted.shard,
                },
                Err(e) => Response::Err(e),
            };
            if write_response(&mut writer, &rsp).is_err() {
                return;
            }
        }
        Ok(Request::Hello { magic, version }) => {
            let why = format!(
                "handshake rejected: magic {magic:#010x} version {version} \
                 (server speaks magic {MAGIC:#010x} version {PROTO_VERSION})"
            );
            let _ = write_response(&mut writer, &Response::Err(GdbError::Invalid(why)));
            return;
        }
        Ok(other) => {
            let _ = write_response(
                &mut writer,
                &Response::Err(GdbError::Invalid(format!(
                    "first frame must be Hello, got {other:?}"
                ))),
            );
            return;
        }
        Err(_) => return, // disconnected or garbage before handshake
    }

    // Deletions in the driver's write mix target edges *this worker*
    // created; the pool lives with the connection, mirroring the per-worker
    // pool of the in-process driver. It is stamped with the engine
    // generation it was filled under so a `Reset` from *any* connection
    // invalidates it.
    let mut owned_edges = OwnedEdges {
        pool: Vec::new(),
        generation: hosted.generation.load(Ordering::SeqCst),
    };
    // At most one open write transaction per connection (v7); dropped with
    // the connection, which discards an uncommitted write set.
    let mut txn: Option<ConnTxn> = None;

    loop {
        let req = match wire::read_frame(&mut reader) {
            Ok(payload) => match Request::decode(&payload) {
                Ok(req) => req,
                Err(e) => {
                    // A frame we cannot parse means the stream is no longer
                    // trustworthy: answer with the decode error and drop the
                    // connection rather than guessing at alignment.
                    let _ = write_response(&mut writer, &Response::Err(e));
                    return;
                }
            },
            Err(_) => return, // client hung up
        };
        let rsp = handle_request(&hosted, req, &mut owned_edges, &mut txn);
        if write_response(&mut writer, &rsp).is_err() {
            return;
        }
    }
}

fn read_request(reader: &mut TcpStream) -> GdbResult<Request> {
    Request::decode(&wire::read_frame(reader)?)
}

fn write_response(writer: &mut TcpStream, rsp: &Response) -> GdbResult<()> {
    let payload = match rsp.encode() {
        Ok(payload) => payload,
        // The response itself cannot be framed (FrameTooLarge): answer with
        // the protocol error instead so the stream stays aligned.
        Err(e) => Response::Err(e).encode()?,
    };
    wire::write_frame(writer, &payload)
}

/// A connection's pool of self-created edges, valid only for the engine
/// generation it was filled under.
struct OwnedEdges {
    pool: Vec<Eid>,
    generation: u64,
}

impl OwnedEdges {
    /// The pool for the current engine generation — emptied first if the
    /// engine was replaced since the pool was filled.
    fn current(&mut self, hosted: &Hosted) -> &mut Vec<Eid> {
        let generation = hosted.generation.load(Ordering::SeqCst);
        if generation != self.generation {
            self.pool.clear();
            self.generation = generation;
        }
        &mut self.pool
    }
}

/// A connection's open write transaction, stamped with the engine
/// generation it began under — a `Reset` from any connection invalidates
/// it (committing a write set buffered against a discarded engine would
/// replay stale ids into the fresh one).
struct ConnTxn {
    txn: WriteTxn,
    generation: u64,
}

fn handle_request(
    hosted: &Hosted,
    req: Request,
    owned_edges: &mut OwnedEdges,
    txn: &mut Option<ConnTxn>,
) -> Response {
    match execute_request(hosted, req, owned_edges, txn) {
        Ok(rsp) => rsp,
        Err(e) => Response::Err(e),
    }
}

/// Open an epoch-pinned write transaction on this connection (v7). Only
/// snapshot hosting has the MVCC machinery for it.
fn txn_begin(hosted: &Hosted, txn: &mut Option<ConnTxn>) -> GdbResult<Response> {
    if txn.is_some() {
        return Err(GdbError::Invalid(
            "TxnBegin with a transaction already open on this connection".into(),
        ));
    }
    match &hosted.engine {
        HostedEngine::Snapshot { source, .. } => {
            // gm-lock: driver transient
            let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs txn begin");
            let source =
                lockwait::timed(|| source.read()).map_err(|_| Hosted::poisoned("source read"))?;
            let opened = WriteTxn::begin(&**source)?;
            let epoch = opened.base_epoch();
            *txn = Some(ConnTxn {
                txn: opened,
                generation: hosted.generation.load(Ordering::SeqCst),
            });
            Ok(Response::TxnBegun { epoch })
        }
        _ => Err(GdbError::Unsupported(
            "write transactions require snapshot hosting".into(),
        )),
    }
}

/// Validate and publish the connection's open transaction (v7). The write
/// set is consumed either way — a conflicting transaction cannot be
/// retried, only restarted against a fresh epoch.
fn txn_commit(hosted: &Hosted, txn: &mut Option<ConnTxn>) -> GdbResult<Response> {
    let state = txn.take().ok_or_else(|| {
        GdbError::Invalid("TxnCommit without an open transaction on this connection".into())
    })?;
    if state.generation != hosted.generation.load(Ordering::SeqCst) {
        return Err(GdbError::TxnConflict(
            "the hosted engine was reset after this transaction began".into(),
        ));
    }
    match &hosted.engine {
        HostedEngine::Snapshot { source, .. } => {
            // gm-lock: driver transient
            let _t = lockorder::acquire(LockRank::Driver, "gm-net/server.rs txn commit");
            let source =
                lockwait::timed(|| source.read()).map_err(|_| Hosted::poisoned("source read"))?;
            let ops = state.txn.commit(&**source)?;
            Ok(Response::TxnCommitted {
                ops,
                epoch: source.current_epoch(),
            })
        }
        _ => Err(GdbError::Unsupported(
            "write transactions require snapshot hosting".into(),
        )),
    }
}

fn txn_abort(txn: &mut Option<ConnTxn>) -> GdbResult<Response> {
    let state = txn.take().ok_or_else(|| {
        GdbError::Invalid("TxnAbort without an open transaction on this connection".into())
    })?;
    Ok(Response::TxnAborted {
        ops: state.txn.abort(),
    })
}

/// Execute one primitive frame against the connection's open transaction:
/// writes buffer into its write set, reads answer from its epoch-pinned
/// read-your-writes overlay. Frames that would bypass the transaction
/// (workload execution, dataset/engine lifecycle, index builds) are
/// rejected until it commits or aborts.
fn execute_txn_request(txn: &mut WriteTxn, req: Request) -> GdbResult<Response> {
    Ok(match req {
        Request::Hello { .. } => {
            return Err(GdbError::Invalid("Hello after handshake".into()));
        }
        Request::Reset
        | Request::BulkLoad { .. }
        | Request::Prepare { .. }
        | Request::ExecOp { .. }
        | Request::CreateVertexIndex { .. } => {
            return Err(GdbError::Invalid(
                "request not allowed inside an open transaction; commit or abort first".into(),
            ));
        }
        Request::TxnBegin | Request::TxnCommit | Request::TxnAbort | Request::ExecBatch(_) => {
            return Err(GdbError::Invalid(
                "transaction control frame routed into the buffered path".into(),
            ));
        }
        // Server-global introspection is transaction-agnostic.
        Request::GetStats => Response::Stats(gm_obs::global().snapshot()),
        Request::GetTraces => Response::Traces(if trace::enabled() {
            trace::global_ring().snapshot()
        } else {
            Vec::new()
        }),
        // Writes buffer into the transaction (ids for entities created here
        // are placeholders, valid inside this transaction until commit).
        Request::AddVertex { label, props } => Response::U64(txn.add_vertex(&label, &props)?.0),
        Request::AddEdge {
            src,
            dst,
            label,
            props,
        } => Response::U64(txn.add_edge(Vid(src), Vid(dst), &label, &props)?.0),
        Request::SetVertexProp { v, name, value } => {
            txn.set_vertex_property(Vid(v), &name, value)?;
            Response::Unit
        }
        Request::SetEdgeProp { e, name, value } => {
            txn.set_edge_property(Eid(e), &name, value)?;
            Response::Unit
        }
        Request::RemoveVertex(v) => {
            txn.remove_vertex(Vid(v))?;
            Response::Unit
        }
        Request::RemoveEdge(e) => {
            txn.remove_edge(Eid(e))?;
            Response::Unit
        }
        Request::RemoveVertexProp { v, name } => {
            Response::OptValue(txn.remove_vertex_property(Vid(v), &name)?)
        }
        Request::RemoveEdgeProp { e, name } => {
            Response::OptValue(txn.remove_edge_property(Eid(e), &name)?)
        }
        Request::Sync => {
            txn.sync()?;
            Response::Unit
        }
        // Reads answer from the read-your-writes overlay over the pinned
        // base epoch.
        Request::Features => Response::Features(txn.features()),
        Request::ResolveVertex(c) => Response::OptU64(txn.resolve_vertex(c).map(|v| v.0)),
        Request::ResolveEdge(c) => Response::OptU64(txn.resolve_edge(c).map(|e| e.0)),
        Request::VertexCount { t } => Response::U64(txn.vertex_count(&ctx_for(t))?),
        Request::EdgeCount { t } => Response::U64(txn.edge_count(&ctx_for(t))?),
        Request::EdgeLabelSet { t } => Response::StrList(txn.edge_label_set(&ctx_for(t))?),
        Request::VerticesWithProperty { name, value, t } => Response::U64List(
            txn.vertices_with_property(&name, &value, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::EdgesWithProperty { name, value, t } => Response::U64List(
            txn.edges_with_property(&name, &value, &ctx_for(t))?
                .into_iter()
                .map(|e| e.0)
                .collect(),
        ),
        Request::EdgesWithLabel { label, t } => Response::U64List(
            txn.edges_with_label(&label, &ctx_for(t))?
                .into_iter()
                .map(|e| e.0)
                .collect(),
        ),
        Request::GetVertex(v) => Response::OptVertex(txn.vertex(Vid(v))?),
        Request::GetEdge(e) => Response::OptEdge(txn.edge(Eid(e))?),
        Request::Neighbors { v, dir, label, t } => Response::U64List(
            txn.neighbors(Vid(v), dir, label.as_deref(), &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::VertexEdges { v, dir, label, t } => {
            Response::EdgeRefs(txn.vertex_edges(Vid(v), dir, label.as_deref(), &ctx_for(t))?)
        }
        Request::VertexDegree { v, dir, t } => {
            Response::U64(txn.vertex_degree(Vid(v), dir, &ctx_for(t))?)
        }
        Request::VertexEdgeLabels { v, dir, t } => {
            Response::StrList(txn.vertex_edge_labels(Vid(v), dir, &ctx_for(t))?)
        }
        Request::ScanVertices { t } => {
            let ctx = ctx_for(t);
            let mut out = Vec::new();
            for v in txn.scan_vertices(&ctx)? {
                out.push(v?.0);
            }
            Response::U64List(out)
        }
        Request::ScanEdges { t } => {
            let ctx = ctx_for(t);
            let mut out = Vec::new();
            for e in txn.scan_edges(&ctx)? {
                out.push(e?.0);
            }
            Response::U64List(out)
        }
        Request::VertexProperty { v, name } => {
            Response::OptValue(txn.vertex_property(Vid(v), &name)?)
        }
        Request::EdgeProperty { e, name } => Response::OptValue(txn.edge_property(Eid(e), &name)?),
        Request::EdgeEndpoints(e) => {
            Response::OptPair(txn.edge_endpoints(Eid(e))?.map(|(s, d)| (s.0, d.0)))
        }
        Request::EdgeLabel(e) => Response::OptStr(txn.edge_label(Eid(e))?),
        Request::VertexLabel(v) => Response::OptStr(txn.vertex_label(Vid(v))?),
        Request::DegreeScan { dir, k, t } => Response::U64List(
            txn.degree_scan(dir, k, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::DistinctNeighborScan { dir, t } => Response::U64List(
            txn.distinct_neighbor_scan(dir, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::HasVertexIndex { prop } => Response::Bool(txn.has_vertex_index(&prop)),
        Request::Space => Response::Space(txn.space()),
        Request::Epoch => Response::U64(txn.base_epoch()),
    })
}

fn execute_request(
    hosted: &Hosted,
    req: Request,
    owned_edges: &mut OwnedEdges,
    txn: &mut Option<ConnTxn>,
) -> GdbResult<Response> {
    // Transaction control frames first, then the buffered path while a
    // transaction is open — everything except `ExecBatch`, whose entries
    // recurse through `handle_request` and land here individually.
    match &req {
        Request::TxnBegin => return txn_begin(hosted, txn),
        Request::TxnCommit => return txn_commit(hosted, txn),
        Request::TxnAbort => return txn_abort(txn),
        _ => {}
    }
    if !matches!(req, Request::ExecBatch(_)) {
        if let Some(state) = txn.as_mut() {
            return execute_txn_request(&mut state.txn, req);
        }
    }
    // Locked mode: `read()` is the shared-lock guard. Snapshot mode: every
    // `read()` pins a fresh immutable epoch, so a long scan here cannot
    // block a concurrent writer on another connection.
    let read = || hosted.read_view();
    Ok(match req {
        Request::Hello { .. } => {
            return Err(GdbError::Invalid("Hello after handshake".into()));
        }
        Request::TxnBegin | Request::TxnCommit | Request::TxnAbort => {
            return Err(GdbError::Invalid(
                "transaction control frame re-entered the primitive path".into(),
            ));
        }
        Request::Reset => {
            hosted.reset_engine()?;
            *hosted
                .data
                .lock()
                .map_err(|_| Hosted::poisoned("dataset"))? = None;
            *hosted
                .params
                .write()
                .map_err(|_| Hosted::poisoned("params"))? = None;
            hosted.generation.fetch_add(1, Ordering::SeqCst);
            Response::Unit
        }
        Request::BulkLoad { opts, data } => {
            let stats = hosted.with_engine_write(|db| db.bulk_load(&data, &opts))?;
            *hosted
                .data
                .lock()
                .map_err(|_| Hosted::poisoned("dataset"))? = Some(data);
            Response::Load(stats)
        }
        Request::Prepare { seed, slots } => {
            let data = hosted
                .data
                .lock()
                .map_err(|_| Hosted::poisoned("dataset"))?
                .clone()
                .ok_or_else(|| {
                    GdbError::Invalid("Prepare before BulkLoad: no dataset retained".into())
                })?;
            let workload = Workload::choose(&data, seed, slots as usize);
            let params = workload.resolve(read()?.snap())?;
            *hosted
                .params
                .write()
                .map_err(|_| Hosted::poisoned("params"))? = Some(Arc::new(params));
            Response::Unit
        }
        Request::ExecOp {
            worker,
            op_index,
            trace_id,
            timeout_micros,
            strict,
            op,
        } => {
            let params = hosted
                .params
                .read()
                .map_err(|_| Hosted::poisoned("params"))?
                .clone()
                .ok_or_else(|| {
                    GdbError::Invalid("ExecOp before Prepare: no workload parameters".into())
                })?;
            // Adopt the *client's* trace id: the server-side record lands
            // under the same name the client prints, so one id stitches
            // both halves of a remote op. Off-path: with `GM_TRACE=off` or
            // an untraced op (id 0), `t_trace` stays `None` and no clock
            // is read for tracing.
            trace::begin_op(trace_id);
            let op_code = op.trace_code();
            let t_trace = (trace_id != 0 && trace::enabled()).then(Instant::now);
            match op {
                Op::Read(inst) if inst.id.is_mutation() => {
                    return Err(GdbError::Invalid(format!(
                        "ExecOp read frame carries mutating query Q{}",
                        inst.id.number()
                    )));
                }
                Op::Read(inst) => {
                    // The connection thread owns this op end to end, so the
                    // thread-local phase accumulators attribute every
                    // engine-lock acquisition and span below to exactly
                    // this op.
                    phase::reset_op();
                    let t0 = net_metrics().map(|m| {
                        m.ops.inc();
                        Instant::now()
                    });
                    let ctx = ctx_for(timeout_micros);
                    // Strict pins (sequential replays) must read their own
                    // earlier writes; concurrent drivers take the
                    // group-committed fast path.
                    let view = {
                        let _pin = phase::span(Phase::SnapshotPin);
                        if strict {
                            hosted.read_view()?
                        } else {
                            hosted.read_view_recent()?
                        }
                    };
                    let card = {
                        let _exec = phase::span(Phase::EngineExec);
                        catalog::execute_read(&inst, view.snap(), &params, &ctx)?
                    };
                    let phases = phase::take_all();
                    if let (Some(m), Some(t0)) = (net_metrics(), t0) {
                        m.op_nanos.record(t0.elapsed().as_nanos() as u64);
                    }
                    if let Some(t) = t_trace {
                        trace::record_op(
                            &SERVER_GATE,
                            trace_id,
                            worker,
                            op_index,
                            op_code,
                            trace::TraceOrigin::Server,
                            t.elapsed().as_nanos() as u64,
                            phases,
                        );
                    }
                    Response::ExecDone {
                        card,
                        lock_wait: phases.get(Phase::LockWait),
                        exec_nanos: phases.get(Phase::EngineExec),
                        pin_nanos: phases.get(Phase::SnapshotPin),
                        clone_nanos: phases.get(Phase::ClonePublish),
                        epoch: view.epoch(),
                    }
                }
                Op::Write(wop) => {
                    phase::reset_op();
                    let t0 = net_metrics().map(|m| {
                        m.ops.inc();
                        Instant::now()
                    });
                    // The generation check of `current()` must happen while
                    // holding the engine write path: a `Reset` interleaving
                    // between the check and the write would otherwise apply
                    // a pre-reset edge pool to the fresh engine (and stale
                    // eids alias live edges once ids restart at 0).
                    let card = {
                        let _exec = phase::span(Phase::EngineExec);
                        hosted.with_engine_write(|db| {
                            apply_write(
                                wop,
                                db,
                                &params,
                                worker as usize,
                                op_index,
                                owned_edges.current(hosted),
                            )
                        })?
                    };
                    let phases = phase::take_all();
                    if let (Some(m), Some(t0)) = (net_metrics(), t0) {
                        m.op_nanos.record(t0.elapsed().as_nanos() as u64);
                    }
                    if let Some(t) = t_trace {
                        trace::record_op(
                            &SERVER_GATE,
                            trace_id,
                            worker,
                            op_index,
                            op_code,
                            trace::TraceOrigin::Server,
                            t.elapsed().as_nanos() as u64,
                            phases,
                        );
                    }
                    Response::ExecDone {
                        card,
                        lock_wait: phases.get(Phase::LockWait),
                        exec_nanos: phases.get(Phase::EngineExec),
                        pin_nanos: phases.get(Phase::SnapshotPin),
                        clone_nanos: phases.get(Phase::ClonePublish),
                        epoch: None,
                    }
                }
            }
        }
        Request::GetStats => Response::Stats(gm_obs::global().snapshot()),
        Request::GetTraces => Response::Traces(if trace::enabled() {
            trace::global_ring().snapshot()
        } else {
            Vec::new()
        }),
        Request::Features => Response::Features(read()?.snap().features()),
        Request::ResolveVertex(c) => {
            Response::OptU64(read()?.snap().resolve_vertex(c).map(|v| v.0))
        }
        Request::ResolveEdge(c) => Response::OptU64(read()?.snap().resolve_edge(c).map(|e| e.0)),
        Request::AddVertex { label, props } => Response::U64(
            hosted
                .with_engine_write(|db| db.add_vertex(&label, &props))?
                .0,
        ),
        Request::AddEdge {
            src,
            dst,
            label,
            props,
        } => Response::U64(
            hosted
                .with_engine_write(|db| db.add_edge(Vid(src), Vid(dst), &label, &props))?
                .0,
        ),
        Request::SetVertexProp { v, name, value } => {
            hosted.with_engine_write(|db| db.set_vertex_property(Vid(v), &name, value))?;
            Response::Unit
        }
        Request::SetEdgeProp { e, name, value } => {
            hosted.with_engine_write(|db| db.set_edge_property(Eid(e), &name, value))?;
            Response::Unit
        }
        Request::VertexCount { t } => Response::U64(read()?.snap().vertex_count(&ctx_for(t))?),
        Request::EdgeCount { t } => Response::U64(read()?.snap().edge_count(&ctx_for(t))?),
        Request::EdgeLabelSet { t } => {
            Response::StrList(read()?.snap().edge_label_set(&ctx_for(t))?)
        }
        Request::VerticesWithProperty { name, value, t } => Response::U64List(
            read()?
                .snap()
                .vertices_with_property(&name, &value, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::EdgesWithProperty { name, value, t } => Response::U64List(
            read()?
                .snap()
                .edges_with_property(&name, &value, &ctx_for(t))?
                .into_iter()
                .map(|e| e.0)
                .collect(),
        ),
        Request::EdgesWithLabel { label, t } => Response::U64List(
            read()?
                .snap()
                .edges_with_label(&label, &ctx_for(t))?
                .into_iter()
                .map(|e| e.0)
                .collect(),
        ),
        Request::GetVertex(v) => Response::OptVertex(read()?.snap().vertex(Vid(v))?),
        Request::GetEdge(e) => Response::OptEdge(read()?.snap().edge(Eid(e))?),
        Request::RemoveVertex(v) => {
            hosted.with_engine_write(|db| db.remove_vertex(Vid(v)))?;
            Response::Unit
        }
        Request::RemoveEdge(e) => {
            hosted.with_engine_write(|db| db.remove_edge(Eid(e)))?;
            Response::Unit
        }
        Request::RemoveVertexProp { v, name } => Response::OptValue(
            hosted.with_engine_write(|db| db.remove_vertex_property(Vid(v), &name))?,
        ),
        Request::RemoveEdgeProp { e, name } => Response::OptValue(
            hosted.with_engine_write(|db| db.remove_edge_property(Eid(e), &name))?,
        ),
        Request::Neighbors { v, dir, label, t } => Response::U64List(
            read()?
                .snap()
                .neighbors(Vid(v), dir, label.as_deref(), &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::VertexEdges { v, dir, label, t } => Response::EdgeRefs(
            read()?
                .snap()
                .vertex_edges(Vid(v), dir, label.as_deref(), &ctx_for(t))?,
        ),
        Request::VertexDegree { v, dir, t } => {
            Response::U64(read()?.snap().vertex_degree(Vid(v), dir, &ctx_for(t))?)
        }
        Request::VertexEdgeLabels { v, dir, t } => Response::StrList(
            read()?
                .snap()
                .vertex_edge_labels(Vid(v), dir, &ctx_for(t))?,
        ),
        Request::ScanVertices { t } => {
            let ctx = ctx_for(t);
            let view = read()?;
            let mut out = Vec::new();
            for v in view.snap().scan_vertices(&ctx)? {
                out.push(v?.0);
            }
            Response::U64List(out)
        }
        Request::ScanEdges { t } => {
            let ctx = ctx_for(t);
            let view = read()?;
            let mut out = Vec::new();
            for e in view.snap().scan_edges(&ctx)? {
                out.push(e?.0);
            }
            Response::U64List(out)
        }
        Request::VertexProperty { v, name } => {
            Response::OptValue(read()?.snap().vertex_property(Vid(v), &name)?)
        }
        Request::EdgeProperty { e, name } => {
            Response::OptValue(read()?.snap().edge_property(Eid(e), &name)?)
        }
        Request::EdgeEndpoints(e) => Response::OptPair(
            read()?
                .snap()
                .edge_endpoints(Eid(e))?
                .map(|(s, d)| (s.0, d.0)),
        ),
        Request::EdgeLabel(e) => Response::OptStr(read()?.snap().edge_label(Eid(e))?),
        Request::VertexLabel(v) => Response::OptStr(read()?.snap().vertex_label(Vid(v))?),
        Request::DegreeScan { dir, k, t } => Response::U64List(
            read()?
                .snap()
                .degree_scan(dir, k, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::DistinctNeighborScan { dir, t } => Response::U64List(
            read()?
                .snap()
                .distinct_neighbor_scan(dir, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::CreateVertexIndex { prop } => {
            hosted.with_engine_write(|db| db.create_vertex_index(&prop))?;
            Response::Unit
        }
        Request::HasVertexIndex { prop } => Response::Bool(read()?.snap().has_vertex_index(&prop)),
        Request::Space => Response::Space(read()?.snap().space()),
        Request::Sync => {
            hosted.with_engine_write(|db| db.sync())?;
            Response::Unit
        }
        // One frame, many ops (v6): executed strictly in order, one
        // response per entry. A failing entry becomes a `Response::Err`
        // *inside* the batch — the envelope itself always succeeds, so one
        // bad op cannot desync a pipelined stream. The wire decoder rejects
        // nested batches, so the recursion below is one level deep.
        Request::ExecBatch(reqs) => {
            let mut rsps = Vec::with_capacity(reqs.len());
            for sub in reqs {
                rsps.push(handle_request(hosted, sub, owned_edges, txn));
            }
            Response::BatchDone(rsps)
        }
        // Epoch probe (v6): what a read would pin right now. Locked and
        // shared hosting have no epochs — report 0, which min-reduces
        // harmlessly fleet-side.
        Request::Epoch => Response::U64(read()?.epoch().unwrap_or(0)),
    })
}
