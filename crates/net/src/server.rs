//! The std-only TCP engine server.
//!
//! One [`Server`] hosts one engine behind the same `RwLock` contract the
//! in-process driver uses — concurrent connections execute reads under the
//! shared lock while writes serialize under the exclusive one — with a
//! thread-per-connection accept loop. Each connection is a plain
//! read→execute→respond loop, so **pipelined** clients (several requests in
//! flight on one connection) are handled naturally: responses come back in
//! request order.
//!
//! The server is deliberately tokio-free: the paper's systems all expose a
//! blocking socket server per client connection, and a thread-per-connection
//! std server reproduces that deployment shape with no runtime dependency.
//!
//! State machine per connection: [`Request::Hello`] first (magic + version
//! checked, [`Response::HelloAck`] returned), then any mix of primitive
//! `GraphDb` calls and workload frames. `Reset` → `BulkLoad` → `Prepare` →
//! `ExecOp…` is the canonical benchmarking sequence (see
//! [`crate::client::run_remote`]).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::Duration;

use gm_core::catalog;
use gm_core::params::{ResolvedParams, Workload};
use gm_model::{Dataset, Eid, GdbError, GdbResult, GraphDb, QueryCtx, Vid};
use gm_workload::{apply_write, Op};

use crate::proto::{Request, Response, MAGIC, PROTO_VERSION};
use crate::wire;

/// Factory producing fresh, empty engines — what `Reset` swaps in.
pub type EngineFactory = Box<dyn Fn() -> Box<dyn GraphDb> + Send + Sync>;

/// Everything the connection handlers share.
struct Hosted {
    factory: EngineFactory,
    engine: RwLock<Box<dyn GraphDb>>,
    /// Dataset retained from the last `BulkLoad`, for `Prepare`.
    data: Mutex<Option<Dataset>>,
    /// Workload parameters resolved by `Prepare`, snapshotted per op.
    params: RwLock<Option<Arc<ResolvedParams>>>,
    /// Bumped by every `Reset`. Connections stamp their `owned_edges` pool
    /// with the generation it was filled under and discard it when the
    /// engine has since been replaced — a stale `Eid` from a discarded
    /// engine must never delete an edge of the freshly loaded one.
    generation: AtomicU64,
}

impl Hosted {
    fn poisoned(side: &str) -> GdbError {
        GdbError::Poisoned(format!(
            "server: engine {side} lock poisoned by a panicking writer"
        ))
    }

    fn engine_name(&self) -> GdbResult<String> {
        Ok(self
            .engine
            .read()
            .map_err(|_| Self::poisoned("read"))?
            .name())
    }
}

/// A bound, not-yet-running engine server.
pub struct Server {
    listener: TcpListener,
    hosted: Arc<Hosted>,
    stop: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (use `"127.0.0.1:0"` at bind time to get an
    /// OS-assigned loopback port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Connections
    /// already open keep working until their clients hang up; they hold only
    /// an `Arc` to the hosted engine.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:7687"` or `"127.0.0.1:0"`), hosting
    /// engines produced by `factory`. One engine is created immediately so
    /// the server is usable before any `Reset`.
    pub fn bind(addr: &str, factory: EngineFactory) -> GdbResult<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| GdbError::Io(format!("binding {addr}: {e}")))?;
        let engine = factory();
        Ok(Server {
            listener,
            hosted: Arc::new(Hosted {
                factory,
                engine: RwLock::new(engine),
                data: Mutex::new(None),
                params: RwLock::new(None),
                generation: AtomicU64::new(0),
            }),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> GdbResult<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| GdbError::Io(e.to_string()))
    }

    /// Run the accept loop on the current thread until shutdown (the
    /// `gm-server` binary's main loop).
    pub fn run(self) {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let hosted = Arc::clone(&self.hosted);
                    thread::spawn(move || handle_conn(stream, hosted));
                }
                Err(e) => eprintln!("[gm-server] accept failed: {e}"),
            }
        }
    }

    /// Run the accept loop on a background thread; returns a handle with
    /// the bound address and a shutdown switch.
    pub fn spawn(self) -> GdbResult<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let join = thread::spawn(move || self.run());
        Ok(ServerHandle { addr, stop, join })
    }
}

/// Deadline context from a wire timeout (0 = unbounded).
fn ctx_for(timeout_micros: u64) -> QueryCtx {
    if timeout_micros == 0 {
        QueryCtx::unbounded()
    } else {
        QueryCtx::with_timeout(Duration::from_micros(timeout_micros))
    }
}

fn handle_conn(stream: TcpStream, hosted: Arc<Hosted>) {
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[gm-server] cannot clone stream: {e}");
            return;
        }
    };
    let mut writer = stream;

    // Handshake first: anything else (or a magic/version mismatch) gets one
    // error frame and the connection is closed — never misparse an
    // incompatible peer.
    match read_request(&mut reader) {
        Ok(Request::Hello { magic, version }) if magic == MAGIC && version == PROTO_VERSION => {
            let rsp = match hosted.engine_name() {
                Ok(engine) => Response::HelloAck {
                    version: PROTO_VERSION,
                    engine,
                },
                Err(e) => Response::Err(e),
            };
            if write_response(&mut writer, &rsp).is_err() {
                return;
            }
        }
        Ok(Request::Hello { magic, version }) => {
            let why = format!(
                "handshake rejected: magic {magic:#010x} version {version} \
                 (server speaks magic {MAGIC:#010x} version {PROTO_VERSION})"
            );
            let _ = write_response(&mut writer, &Response::Err(GdbError::Invalid(why)));
            return;
        }
        Ok(other) => {
            let _ = write_response(
                &mut writer,
                &Response::Err(GdbError::Invalid(format!(
                    "first frame must be Hello, got {other:?}"
                ))),
            );
            return;
        }
        Err(_) => return, // disconnected or garbage before handshake
    }

    // Deletions in the driver's write mix target edges *this worker*
    // created; the pool lives with the connection, mirroring the per-worker
    // pool of the in-process driver. It is stamped with the engine
    // generation it was filled under so a `Reset` from *any* connection
    // invalidates it.
    let mut owned_edges = OwnedEdges {
        pool: Vec::new(),
        generation: hosted.generation.load(Ordering::SeqCst),
    };

    loop {
        let req = match wire::read_frame(&mut reader) {
            Ok(payload) => match Request::decode(&payload) {
                Ok(req) => req,
                Err(e) => {
                    // A frame we cannot parse means the stream is no longer
                    // trustworthy: answer with the decode error and drop the
                    // connection rather than guessing at alignment.
                    let _ = write_response(&mut writer, &Response::Err(e));
                    return;
                }
            },
            Err(_) => return, // client hung up
        };
        let rsp = handle_request(&hosted, req, &mut owned_edges);
        if write_response(&mut writer, &rsp).is_err() {
            return;
        }
    }
}

fn read_request(reader: &mut TcpStream) -> GdbResult<Request> {
    Request::decode(&wire::read_frame(reader)?)
}

fn write_response(writer: &mut TcpStream, rsp: &Response) -> GdbResult<()> {
    wire::write_frame(writer, &rsp.encode())
}

/// A connection's pool of self-created edges, valid only for the engine
/// generation it was filled under.
struct OwnedEdges {
    pool: Vec<Eid>,
    generation: u64,
}

impl OwnedEdges {
    /// The pool for the current engine generation — emptied first if the
    /// engine was replaced since the pool was filled.
    fn current(&mut self, hosted: &Hosted) -> &mut Vec<Eid> {
        let generation = hosted.generation.load(Ordering::SeqCst);
        if generation != self.generation {
            self.pool.clear();
            self.generation = generation;
        }
        &mut self.pool
    }
}

fn handle_request(hosted: &Hosted, req: Request, owned_edges: &mut OwnedEdges) -> Response {
    match execute_request(hosted, req, owned_edges) {
        Ok(rsp) => rsp,
        Err(e) => Response::Err(e),
    }
}

fn execute_request(
    hosted: &Hosted,
    req: Request,
    owned_edges: &mut OwnedEdges,
) -> GdbResult<Response> {
    let read = || hosted.engine.read().map_err(|_| Hosted::poisoned("read"));
    let write = || hosted.engine.write().map_err(|_| Hosted::poisoned("write"));
    Ok(match req {
        Request::Hello { .. } => {
            return Err(GdbError::Invalid("Hello after handshake".into()));
        }
        Request::Reset => {
            {
                let mut db = write()?;
                *db = (hosted.factory)();
            }
            *hosted
                .data
                .lock()
                .map_err(|_| Hosted::poisoned("dataset"))? = None;
            *hosted
                .params
                .write()
                .map_err(|_| Hosted::poisoned("params"))? = None;
            hosted.generation.fetch_add(1, Ordering::SeqCst);
            Response::Unit
        }
        Request::BulkLoad { opts, data } => {
            let stats = write()?.bulk_load(&data, &opts)?;
            *hosted
                .data
                .lock()
                .map_err(|_| Hosted::poisoned("dataset"))? = Some(data);
            Response::Load(stats)
        }
        Request::Prepare { seed, slots } => {
            let data = hosted
                .data
                .lock()
                .map_err(|_| Hosted::poisoned("dataset"))?
                .clone()
                .ok_or_else(|| {
                    GdbError::Invalid("Prepare before BulkLoad: no dataset retained".into())
                })?;
            let workload = Workload::choose(&data, seed, slots as usize);
            let params = workload.resolve(read()?.as_ref())?;
            *hosted
                .params
                .write()
                .map_err(|_| Hosted::poisoned("params"))? = Some(Arc::new(params));
            Response::Unit
        }
        Request::ExecOp {
            worker,
            op_index,
            timeout_micros,
            op,
        } => {
            let params = hosted
                .params
                .read()
                .map_err(|_| Hosted::poisoned("params"))?
                .clone()
                .ok_or_else(|| {
                    GdbError::Invalid("ExecOp before Prepare: no workload parameters".into())
                })?;
            let card = match op {
                Op::Read(inst) if inst.id.is_mutation() => {
                    return Err(GdbError::Invalid(format!(
                        "ExecOp read frame carries mutating query Q{}",
                        inst.id.number()
                    )));
                }
                Op::Read(inst) => {
                    let ctx = ctx_for(timeout_micros);
                    let db = read()?;
                    catalog::execute_read(&inst, db.as_ref(), &params, &ctx)?
                }
                Op::Write(wop) => {
                    let mut db = write()?;
                    apply_write(
                        wop,
                        db.as_mut(),
                        &params,
                        worker as usize,
                        op_index,
                        owned_edges.current(hosted),
                    )?
                }
            };
            Response::U64(card)
        }
        Request::Features => Response::Features(read()?.features()),
        Request::ResolveVertex(c) => Response::OptU64(read()?.resolve_vertex(c).map(|v| v.0)),
        Request::ResolveEdge(c) => Response::OptU64(read()?.resolve_edge(c).map(|e| e.0)),
        Request::AddVertex { label, props } => {
            Response::U64(write()?.add_vertex(&label, &props)?.0)
        }
        Request::AddEdge {
            src,
            dst,
            label,
            props,
        } => Response::U64(write()?.add_edge(Vid(src), Vid(dst), &label, &props)?.0),
        Request::SetVertexProp { v, name, value } => {
            write()?.set_vertex_property(Vid(v), &name, value)?;
            Response::Unit
        }
        Request::SetEdgeProp { e, name, value } => {
            write()?.set_edge_property(Eid(e), &name, value)?;
            Response::Unit
        }
        Request::VertexCount { t } => Response::U64(read()?.vertex_count(&ctx_for(t))?),
        Request::EdgeCount { t } => Response::U64(read()?.edge_count(&ctx_for(t))?),
        Request::EdgeLabelSet { t } => Response::StrList(read()?.edge_label_set(&ctx_for(t))?),
        Request::VerticesWithProperty { name, value, t } => Response::U64List(
            read()?
                .vertices_with_property(&name, &value, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::EdgesWithProperty { name, value, t } => Response::U64List(
            read()?
                .edges_with_property(&name, &value, &ctx_for(t))?
                .into_iter()
                .map(|e| e.0)
                .collect(),
        ),
        Request::EdgesWithLabel { label, t } => Response::U64List(
            read()?
                .edges_with_label(&label, &ctx_for(t))?
                .into_iter()
                .map(|e| e.0)
                .collect(),
        ),
        Request::GetVertex(v) => Response::OptVertex(read()?.vertex(Vid(v))?),
        Request::GetEdge(e) => Response::OptEdge(read()?.edge(Eid(e))?),
        Request::RemoveVertex(v) => {
            write()?.remove_vertex(Vid(v))?;
            Response::Unit
        }
        Request::RemoveEdge(e) => {
            write()?.remove_edge(Eid(e))?;
            Response::Unit
        }
        Request::RemoveVertexProp { v, name } => {
            Response::OptValue(write()?.remove_vertex_property(Vid(v), &name)?)
        }
        Request::RemoveEdgeProp { e, name } => {
            Response::OptValue(write()?.remove_edge_property(Eid(e), &name)?)
        }
        Request::Neighbors { v, dir, label, t } => Response::U64List(
            read()?
                .neighbors(Vid(v), dir, label.as_deref(), &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::VertexEdges { v, dir, label, t } => {
            Response::EdgeRefs(read()?.vertex_edges(Vid(v), dir, label.as_deref(), &ctx_for(t))?)
        }
        Request::VertexDegree { v, dir, t } => {
            Response::U64(read()?.vertex_degree(Vid(v), dir, &ctx_for(t))?)
        }
        Request::VertexEdgeLabels { v, dir, t } => {
            Response::StrList(read()?.vertex_edge_labels(Vid(v), dir, &ctx_for(t))?)
        }
        Request::ScanVertices { t } => {
            let ctx = ctx_for(t);
            let db = read()?;
            let mut out = Vec::new();
            for v in db.scan_vertices(&ctx)? {
                out.push(v?.0);
            }
            Response::U64List(out)
        }
        Request::ScanEdges { t } => {
            let ctx = ctx_for(t);
            let db = read()?;
            let mut out = Vec::new();
            for e in db.scan_edges(&ctx)? {
                out.push(e?.0);
            }
            Response::U64List(out)
        }
        Request::VertexProperty { v, name } => {
            Response::OptValue(read()?.vertex_property(Vid(v), &name)?)
        }
        Request::EdgeProperty { e, name } => {
            Response::OptValue(read()?.edge_property(Eid(e), &name)?)
        }
        Request::EdgeEndpoints(e) => {
            Response::OptPair(read()?.edge_endpoints(Eid(e))?.map(|(s, d)| (s.0, d.0)))
        }
        Request::EdgeLabel(e) => Response::OptStr(read()?.edge_label(Eid(e))?),
        Request::VertexLabel(v) => Response::OptStr(read()?.vertex_label(Vid(v))?),
        Request::DegreeScan { dir, k, t } => Response::U64List(
            read()?
                .degree_scan(dir, k, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::DistinctNeighborScan { dir, t } => Response::U64List(
            read()?
                .distinct_neighbor_scan(dir, &ctx_for(t))?
                .into_iter()
                .map(|v| v.0)
                .collect(),
        ),
        Request::CreateVertexIndex { prop } => {
            write()?.create_vertex_index(&prop)?;
            Response::Unit
        }
        Request::HasVertexIndex { prop } => Response::Bool(read()?.has_vertex_index(&prop)),
        Request::Space => Response::Space(read()?.space()),
        Request::Sync => {
            write()?.sync()?;
            Response::Unit
        }
    })
}
