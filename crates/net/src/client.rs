//! The remote-engine client.
//!
//! [`Connection`] is one framed socket with the handshake done.
//! [`RemoteEngine`] wraps a connection and implements
//! [`GraphDb`](gm_model::GraphDb), so it drops transparently into
//! `catalog::execute`, the sequential `Runner`, and anything else written
//! against the trait — every primitive call is one request/response round
//! trip, which is precisely the dispatch + serialization cost the paper's
//! client/server deployments pay and the in-process harness hides.
//!
//! For the workload driver, [`RemoteBackend`] opens **one connection per
//! worker** (like N benchmark clients against one server) and ships whole
//! driver ops as single [`Request::ExecOp`] frames, executed server-side
//! against parameters prepared by [`run_remote`] — one round trip per op,
//! the way real drivers execute Gremlin server-side.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gm_obs::{trace, Phase, PhaseNanos, RegistrySnapshot, TraceRecord};

use gm_model::api::{
    Direction, EdgeData, EdgeRef, EngineFeatures, LoadOptions, LoadStats, SpaceReport, VertexData,
};
use gm_model::{
    Dataset, Eid, GdbError, GdbResult, GraphDb, GraphSnapshot, Props, QueryCtx, Value, Vid,
};
use gm_workload::{
    run_backend, run_backend_sequential, Backend, Op, OpResult, RunReport, Session, WorkloadConfig,
    WORKLOAD_SLOTS,
};

use crate::proto::{Request, Response, MAGIC, PROTO_VERSION};
use crate::wire;

/// One framed, handshaken connection to a gm-net server.
pub struct Connection {
    stream: TcpStream,
    engine: String,
    /// Fleet identity from the handshake (`None` for standalone servers).
    shard: Option<(u32, u32)>,
    /// Optional shared frame counter: every frame [`Connection::send`]
    /// writes bumps it, which is how the fleet coordinator proves its
    /// batched dispatch issues fewer wire exchanges than ops.
    frames: Option<Arc<AtomicU64>>,
}

impl Connection {
    /// Dial `addr` and perform the version handshake.
    pub fn connect(addr: &str) -> GdbResult<Connection> {
        let stream =
            TcpStream::connect(addr).map_err(|e| GdbError::Io(format!("dialing {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut conn = Connection {
            stream,
            engine: String::new(),
            shard: None,
            frames: None,
        };
        conn.send(&Request::Hello {
            magic: MAGIC,
            version: PROTO_VERSION,
        })?;
        match conn.recv()? {
            Response::HelloAck {
                version,
                engine,
                shard,
            } if version == PROTO_VERSION => {
                conn.engine = engine;
                conn.shard = shard;
                Ok(conn)
            }
            Response::HelloAck { version, .. } => Err(GdbError::Invalid(format!(
                "server speaks protocol version {version}, client speaks {PROTO_VERSION}"
            ))),
            Response::Err(e) => Err(e),
            other => Err(protocol_mismatch("HelloAck", &other)),
        }
    }

    /// The hosted engine's display name (from the handshake).
    pub fn engine_name(&self) -> &str {
        &self.engine
    }

    /// The server's fleet identity `(shard_id, fleet_size)` from the
    /// handshake, `None` for standalone servers.
    pub fn shard_identity(&self) -> Option<(u32, u32)> {
        self.shard
    }

    /// Count every frame this connection sends into `ctr` (shared with the
    /// other connections of a fleet, typically).
    pub fn count_frames_into(&mut self, ctr: Arc<AtomicU64>) {
        self.frames = Some(ctr);
    }

    /// Send one request without waiting for its response (pipelining).
    pub fn send(&mut self, req: &Request) -> GdbResult<()> {
        if let Some(ctr) = &self.frames {
            // gm-check: relaxed(pure event count, no ordering relied upon)
            ctr.fetch_add(1, Ordering::Relaxed);
        }
        wire::write_frame(&mut self.stream, &req.encode()?)
    }

    /// Receive the next response in order.
    pub fn recv(&mut self) -> GdbResult<Response> {
        Response::decode(&wire::read_frame(&mut self.stream)?)
    }

    /// One round trip. A [`Response::Err`] payload is surfaced as the
    /// original [`GdbError`] — remote errors keep their variant.
    pub fn call(&mut self, req: &Request) -> GdbResult<Response> {
        self.send(req)?;
        match self.recv()? {
            Response::Err(e) => Err(e),
            rsp => Ok(rsp),
        }
    }

    /// Execute many requests in one frame and one round trip (v6). The
    /// envelope always succeeds at the wire level; per-entry failures come
    /// back as [`Response::Err`] entries, in request order.
    pub fn call_batch(&mut self, reqs: Vec<Request>) -> GdbResult<Vec<Response>> {
        let n = reqs.len();
        self.send(&Request::ExecBatch(reqs))?;
        match self.recv()? {
            Response::BatchDone(rsps) if rsps.len() == n => Ok(rsps),
            Response::BatchDone(rsps) => Err(GdbError::Corrupt(format!(
                "batch of {n} answered with {} responses",
                rsps.len()
            ))),
            Response::Err(e) => Err(e),
            other => Err(protocol_mismatch("BatchDone", &other)),
        }
    }

    /// Probe the server's serving epoch (v6): the epoch a read would pin
    /// right now, `0` under locked hosting.
    pub fn epoch(&mut self) -> GdbResult<u64> {
        match self.call(&Request::Epoch)? {
            Response::U64(e) => Ok(e),
            other => Err(protocol_mismatch("U64", &other)),
        }
    }

    /// Fetch a point-in-time snapshot of the server's metrics registry
    /// (counters, gauges, histograms). Empty when the server runs
    /// `GM_OBS=off`.
    pub fn get_stats(&mut self) -> GdbResult<RegistrySnapshot> {
        match self.call(&Request::GetStats)? {
            Response::Stats(s) => Ok(s),
            other => Err(protocol_mismatch("Stats", &other)),
        }
    }

    /// Fetch a copy of the server's trace flight recorder (oldest record
    /// first). Empty when the server runs `GM_TRACE=off`.
    pub fn get_traces(&mut self) -> GdbResult<Vec<TraceRecord>> {
        match self.call(&Request::GetTraces)? {
            Response::Traces(rs) => Ok(rs),
            other => Err(protocol_mismatch("Traces", &other)),
        }
    }

    /// Open an epoch-pinned write transaction on this connection (v7);
    /// returns the pinned read epoch. Subsequent write primitives buffer
    /// server-side and reads answer from the transaction's read-your-writes
    /// overlay until [`Connection::txn_commit`] / [`Connection::txn_abort`].
    /// Requires snapshot hosting.
    pub fn txn_begin(&mut self) -> GdbResult<u64> {
        match self.call(&Request::TxnBegin)? {
            Response::TxnBegun { epoch } => Ok(epoch),
            other => Err(protocol_mismatch("TxnBegun", &other)),
        }
    }

    /// Validate and atomically publish the connection's open transaction;
    /// returns `(replayed ops, serving epoch)`. A first-committer-wins
    /// loss surfaces as [`GdbError::TxnConflict`] with the write set
    /// discarded — restart the transaction against a fresh epoch to retry.
    pub fn txn_commit(&mut self) -> GdbResult<(u64, u64)> {
        match self.call(&Request::TxnCommit)? {
            Response::TxnCommitted { ops, epoch } => Ok((ops, epoch)),
            other => Err(protocol_mismatch("TxnCommitted", &other)),
        }
    }

    /// Discard the connection's open transaction; returns the number of
    /// buffered ops thrown away.
    pub fn txn_abort(&mut self) -> GdbResult<u64> {
        match self.call(&Request::TxnAbort)? {
            Response::TxnAborted { ops } => Ok(ops),
            other => Err(protocol_mismatch("TxnAborted", &other)),
        }
    }
}

fn protocol_mismatch(expected: &str, got: &Response) -> GdbError {
    GdbError::Corrupt(format!(
        "protocol mismatch: expected {expected} response, got {}",
        got.kind()
    ))
}

/// Wire deadline for a read call: the context's *remaining* budget in
/// microseconds (0 = unbounded). An already-expired context becomes the
/// smallest non-zero budget, so the server observes the timeout immediately.
fn t_of(ctx: &QueryCtx) -> u64 {
    match ctx.remaining() {
        None => 0,
        Some(d) => (d.as_micros().min(u64::MAX as u128) as u64).max(1),
    }
}

/// A network-attached engine: implements [`GraphDb`] by forwarding every
/// primitive over one connection.
///
/// Reads take `&self`, so the connection lives behind a `Mutex` — calls on
/// one `RemoteEngine` serialize, exactly like one Gremlin client session.
/// Concurrent benchmark clients each get their own `RemoteEngine` (or
/// [`RemoteBackend`] session) instead of sharing one.
///
/// Infallible trait methods degrade gracefully on transport failure:
/// `features()`/`space()` return empty placeholders and `has_vertex_index`
/// returns `false`, since the trait gives them no error channel.
pub struct RemoteEngine {
    conn: Mutex<Connection>,
    name: String,
}

impl RemoteEngine {
    /// Dial a server.
    pub fn connect(addr: &str) -> GdbResult<RemoteEngine> {
        Ok(Self::from_connection(Connection::connect(addr)?))
    }

    /// Wrap an already-handshaken connection (the fleet coordinator dials
    /// and verifies identities itself, then hands the sockets here).
    pub fn from_connection(conn: Connection) -> RemoteEngine {
        let name = conn.engine_name().to_string();
        RemoteEngine {
            conn: Mutex::new(conn),
            name,
        }
    }

    /// The underlying connection (crate-internal: the fleet's batch flush
    /// and epoch probes need the raw framed socket).
    pub(crate) fn connection(&self) -> &Mutex<Connection> {
        &self.conn
    }

    /// Swap the server's engine for a fresh one (and forget any retained
    /// dataset / prepared workload). The benchmark analogue of dropping and
    /// recreating a database.
    pub fn reset(&self) -> GdbResult<()> {
        expect_unit(self.call(&Request::Reset)?)
    }

    /// Resolve workload parameters server-side (required before
    /// [`RemoteEngine::exec_op`]). `seed`/`slots` must match the driver's.
    pub fn prepare(&self, seed: u64, slots: u32) -> GdbResult<()> {
        expect_unit(self.call(&Request::Prepare { seed, slots })?)
    }

    /// Execute one whole driver op server-side in a single round trip. The
    /// returned [`OpResult`] carries the serving epoch when the server hosts
    /// a snapshot source.
    pub fn exec_op(
        &self,
        op: Op,
        worker: usize,
        op_index: u64,
        timeout: Duration,
    ) -> GdbResult<OpResult> {
        expect_exec_done(self.call(&Request::ExecOp {
            worker: worker as u32,
            op_index,
            trace_id: trace::current(),
            timeout_micros: timeout.as_micros().min(u64::MAX as u128) as u64,
            // Trait-level callers are sequential clients: read-your-writes.
            strict: true,
            op,
        })?)
    }

    /// Fetch the server's live metrics registry snapshot (see
    /// [`Connection::get_stats`]).
    pub fn stats(&self) -> GdbResult<RegistrySnapshot> {
        self.conn
            .lock()
            .map_err(|_| GdbError::Poisoned("remote connection mutex poisoned".into()))?
            .get_stats()
    }

    fn call(&self, req: &Request) -> GdbResult<Response> {
        self.conn
            .lock()
            .map_err(|_| GdbError::Poisoned("remote connection mutex poisoned".into()))?
            .call(req)
    }
}

fn expect_unit(rsp: Response) -> GdbResult<()> {
    match rsp {
        Response::Unit => Ok(()),
        other => Err(protocol_mismatch("Unit", &other)),
    }
}

fn expect_u64(rsp: Response) -> GdbResult<u64> {
    match rsp {
        Response::U64(v) => Ok(v),
        other => Err(protocol_mismatch("U64", &other)),
    }
}

/// Build an [`OpResult`] from an `ExecDone` frame: the server-measured
/// phases (lock wait, engine exec, snapshot pin, clone/publish) land in
/// their own slots; the wire phases stay zero until the caller fills them
/// from its own clock.
fn expect_exec_done(rsp: Response) -> GdbResult<OpResult> {
    match rsp {
        Response::ExecDone {
            card,
            lock_wait,
            exec_nanos,
            pin_nanos,
            clone_nanos,
            epoch,
        } => {
            let mut phases = PhaseNanos::zero();
            phases.set(Phase::LockWait, lock_wait);
            phases.set(Phase::EngineExec, exec_nanos);
            phases.set(Phase::SnapshotPin, pin_nanos);
            phases.set(Phase::ClonePublish, clone_nanos);
            Ok(OpResult {
                cardinality: card,
                epoch,
                phases,
            })
        }
        other => Err(protocol_mismatch("ExecDone", &other)),
    }
}

fn expect_opt_u64(rsp: Response) -> GdbResult<Option<u64>> {
    match rsp {
        Response::OptU64(v) => Ok(v),
        other => Err(protocol_mismatch("OptU64", &other)),
    }
}

fn expect_u64_list(rsp: Response) -> GdbResult<Vec<u64>> {
    match rsp {
        Response::U64List(v) => Ok(v),
        other => Err(protocol_mismatch("U64List", &other)),
    }
}

fn expect_str_list(rsp: Response) -> GdbResult<Vec<String>> {
    match rsp {
        Response::StrList(v) => Ok(v),
        other => Err(protocol_mismatch("StrList", &other)),
    }
}

fn expect_opt_value(rsp: Response) -> GdbResult<Option<Value>> {
    match rsp {
        Response::OptValue(v) => Ok(v),
        other => Err(protocol_mismatch("OptValue", &other)),
    }
}

impl GraphSnapshot for RemoteEngine {
    // gm-check: allow-default(epoch: epochs ride on ExecOp responses; trait-level remote reads are unversioned)
    fn name(&self) -> String {
        self.name.clone()
    }

    fn features(&self) -> EngineFeatures {
        match self.call(&Request::Features) {
            Ok(Response::Features(f)) => f,
            _ => EngineFeatures {
                name: self.name.clone(),
                system_type: "Remote".into(),
                storage: "network-attached (features unavailable)".into(),
                edge_traversal: "remote".into(),
                optimized_adapter: false,
                async_writes: false,
                attribute_indexes: false,
            },
        }
    }

    fn resolve_vertex(&self, canonical: u64) -> Option<Vid> {
        expect_opt_u64(self.call(&Request::ResolveVertex(canonical)).ok()?)
            .ok()?
            .map(Vid)
    }

    fn resolve_edge(&self, canonical: u64) -> Option<Eid> {
        expect_opt_u64(self.call(&Request::ResolveEdge(canonical)).ok()?)
            .ok()?
            .map(Eid)
    }

    fn vertex_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        expect_u64(self.call(&Request::VertexCount { t: t_of(ctx) })?)
    }

    fn edge_count(&self, ctx: &QueryCtx) -> GdbResult<u64> {
        expect_u64(self.call(&Request::EdgeCount { t: t_of(ctx) })?)
    }

    fn edge_label_set(&self, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        expect_str_list(self.call(&Request::EdgeLabelSet { t: t_of(ctx) })?)
    }

    fn vertices_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(expect_u64_list(self.call(&Request::VerticesWithProperty {
            name: name.to_string(),
            value: value.clone(),
            t: t_of(ctx),
        })?)?
        .into_iter()
        .map(Vid)
        .collect())
    }

    fn edges_with_property(
        &self,
        name: &str,
        value: &Value,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Eid>> {
        Ok(expect_u64_list(self.call(&Request::EdgesWithProperty {
            name: name.to_string(),
            value: value.clone(),
            t: t_of(ctx),
        })?)?
        .into_iter()
        .map(Eid)
        .collect())
    }

    fn edges_with_label(&self, label: &str, ctx: &QueryCtx) -> GdbResult<Vec<Eid>> {
        Ok(expect_u64_list(self.call(&Request::EdgesWithLabel {
            label: label.to_string(),
            t: t_of(ctx),
        })?)?
        .into_iter()
        .map(Eid)
        .collect())
    }

    fn vertex(&self, v: Vid) -> GdbResult<Option<VertexData>> {
        match self.call(&Request::GetVertex(v.0))? {
            Response::OptVertex(v) => Ok(v),
            other => Err(protocol_mismatch("OptVertex", &other)),
        }
    }

    fn edge(&self, e: Eid) -> GdbResult<Option<EdgeData>> {
        match self.call(&Request::GetEdge(e.0))? {
            Response::OptEdge(e) => Ok(e),
            other => Err(protocol_mismatch("OptEdge", &other)),
        }
    }

    fn neighbors(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<Vid>> {
        Ok(expect_u64_list(self.call(&Request::Neighbors {
            v: v.0,
            dir,
            label: label.map(str::to_string),
            t: t_of(ctx),
        })?)?
        .into_iter()
        .map(Vid)
        .collect())
    }

    fn vertex_edges(
        &self,
        v: Vid,
        dir: Direction,
        label: Option<&str>,
        ctx: &QueryCtx,
    ) -> GdbResult<Vec<EdgeRef>> {
        match self.call(&Request::VertexEdges {
            v: v.0,
            dir,
            label: label.map(str::to_string),
            t: t_of(ctx),
        })? {
            Response::EdgeRefs(refs) => Ok(refs),
            other => Err(protocol_mismatch("EdgeRefs", &other)),
        }
    }

    fn vertex_degree(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<u64> {
        expect_u64(self.call(&Request::VertexDegree {
            v: v.0,
            dir,
            t: t_of(ctx),
        })?)
    }

    fn vertex_edge_labels(&self, v: Vid, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<String>> {
        expect_str_list(self.call(&Request::VertexEdgeLabels {
            v: v.0,
            dir,
            t: t_of(ctx),
        })?)
    }

    fn scan_vertices<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Vid>> + 'a>> {
        // The server materializes the scan (honoring the forwarded deadline)
        // and ships the ids in one response; the client then iterates the
        // buffered ids. A mid-scan server timeout surfaces as Err here.
        let ids = expect_u64_list(self.call(&Request::ScanVertices { t: t_of(ctx) })?)?;
        Ok(Box::new(ids.into_iter().map(|v| Ok(Vid(v)))))
    }

    fn scan_edges<'a>(
        &'a self,
        ctx: &'a QueryCtx,
    ) -> GdbResult<Box<dyn Iterator<Item = GdbResult<Eid>> + 'a>> {
        let ids = expect_u64_list(self.call(&Request::ScanEdges { t: t_of(ctx) })?)?;
        Ok(Box::new(ids.into_iter().map(|e| Ok(Eid(e)))))
    }

    fn vertex_property(&self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        expect_opt_value(self.call(&Request::VertexProperty {
            v: v.0,
            name: name.to_string(),
        })?)
    }

    fn edge_property(&self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        expect_opt_value(self.call(&Request::EdgeProperty {
            e: e.0,
            name: name.to_string(),
        })?)
    }

    fn edge_endpoints(&self, e: Eid) -> GdbResult<Option<(Vid, Vid)>> {
        match self.call(&Request::EdgeEndpoints(e.0))? {
            Response::OptPair(p) => Ok(p.map(|(s, d)| (Vid(s), Vid(d)))),
            other => Err(protocol_mismatch("OptPair", &other)),
        }
    }

    fn edge_label(&self, e: Eid) -> GdbResult<Option<String>> {
        match self.call(&Request::EdgeLabel(e.0))? {
            Response::OptStr(s) => Ok(s),
            other => Err(protocol_mismatch("OptStr", &other)),
        }
    }

    fn vertex_label(&self, v: Vid) -> GdbResult<Option<String>> {
        match self.call(&Request::VertexLabel(v.0))? {
            Response::OptStr(s) => Ok(s),
            other => Err(protocol_mismatch("OptStr", &other)),
        }
    }

    fn degree_scan(&self, dir: Direction, k: u64, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        // One frame instead of the default per-vertex decomposition: the
        // *hosted* engine's own strategy answers, so per-engine physical
        // differences survive the wire.
        Ok(expect_u64_list(self.call(&Request::DegreeScan {
            dir,
            k,
            t: t_of(ctx),
        })?)?
        .into_iter()
        .map(Vid)
        .collect())
    }

    fn distinct_neighbor_scan(&self, dir: Direction, ctx: &QueryCtx) -> GdbResult<Vec<Vid>> {
        Ok(
            expect_u64_list(self.call(&Request::DistinctNeighborScan { dir, t: t_of(ctx) })?)?
                .into_iter()
                .map(Vid)
                .collect(),
        )
    }

    fn has_vertex_index(&self, prop: &str) -> bool {
        matches!(
            self.call(&Request::HasVertexIndex {
                prop: prop.to_string(),
            }),
            Ok(Response::Bool(true))
        )
    }

    fn space(&self) -> SpaceReport {
        match self.call(&Request::Space) {
            Ok(Response::Space(report)) => report,
            _ => SpaceReport::default(),
        }
    }
}

impl GraphDb for RemoteEngine {
    fn bulk_load(&mut self, data: &Dataset, opts: &LoadOptions) -> GdbResult<LoadStats> {
        match self.call(&Request::BulkLoad {
            opts: opts.clone(),
            data: data.clone(),
        })? {
            Response::Load(stats) => Ok(stats),
            other => Err(protocol_mismatch("Load", &other)),
        }
    }

    fn add_vertex(&mut self, label: &str, props: &Props) -> GdbResult<Vid> {
        expect_u64(self.call(&Request::AddVertex {
            label: label.to_string(),
            props: props.clone(),
        })?)
        .map(Vid)
    }

    fn add_edge(&mut self, src: Vid, dst: Vid, label: &str, props: &Props) -> GdbResult<Eid> {
        expect_u64(self.call(&Request::AddEdge {
            src: src.0,
            dst: dst.0,
            label: label.to_string(),
            props: props.clone(),
        })?)
        .map(Eid)
    }

    fn set_vertex_property(&mut self, v: Vid, name: &str, value: Value) -> GdbResult<()> {
        expect_unit(self.call(&Request::SetVertexProp {
            v: v.0,
            name: name.to_string(),
            value,
        })?)
    }

    fn set_edge_property(&mut self, e: Eid, name: &str, value: Value) -> GdbResult<()> {
        expect_unit(self.call(&Request::SetEdgeProp {
            e: e.0,
            name: name.to_string(),
            value,
        })?)
    }

    fn remove_vertex(&mut self, v: Vid) -> GdbResult<()> {
        expect_unit(self.call(&Request::RemoveVertex(v.0))?)
    }

    fn remove_edge(&mut self, e: Eid) -> GdbResult<()> {
        expect_unit(self.call(&Request::RemoveEdge(e.0))?)
    }

    fn remove_vertex_property(&mut self, v: Vid, name: &str) -> GdbResult<Option<Value>> {
        expect_opt_value(self.call(&Request::RemoveVertexProp {
            v: v.0,
            name: name.to_string(),
        })?)
    }

    fn remove_edge_property(&mut self, e: Eid, name: &str) -> GdbResult<Option<Value>> {
        expect_opt_value(self.call(&Request::RemoveEdgeProp {
            e: e.0,
            name: name.to_string(),
        })?)
    }

    fn create_vertex_index(&mut self, prop: &str) -> GdbResult<()> {
        expect_unit(self.call(&Request::CreateVertexIndex {
            prop: prop.to_string(),
        })?)
    }

    fn sync(&mut self) -> GdbResult<()> {
        expect_unit(self.call(&Request::Sync)?)
    }
}

// ----- workload backend ----------------------------------------------------

/// The network transport for the workload driver: each worker dials its own
/// connection (N independent benchmark clients), and every driver op is one
/// `ExecOp` frame executed server-side.
///
/// Construct via [`run_remote`] (which also resets/loads/prepares the
/// server), or directly when the server is already set up.
pub struct RemoteBackend {
    addr: String,
    engine: String,
    op_timeout: Duration,
    /// Request strict (read-your-writes) pins from a snapshot-hosted
    /// server. Sequential replays need this for deterministic traces;
    /// concurrent runs leave it off for the scalable pin fast path.
    strict_reads: bool,
}

impl RemoteBackend {
    /// Point at a server that is already loaded and prepared.
    pub fn new(addr: impl Into<String>, engine: impl Into<String>, op_timeout: Duration) -> Self {
        RemoteBackend {
            addr: addr.into(),
            engine: engine.into(),
            op_timeout,
            strict_reads: false,
        }
    }

    /// Request strict pins for every read (see [`RemoteBackend::new`]).
    pub fn with_strict_reads(mut self) -> Self {
        self.strict_reads = true;
        self
    }
}

impl Backend for RemoteBackend {
    fn engine(&self) -> String {
        self.engine.clone()
    }

    fn isolation(&self) -> String {
        // The server decides locked vs snapshot hosting; the client only
        // knows the ops crossed a wire. Epoch-tagged responses (and the
        // epoch-skew counter) reveal the rest.
        "remote".into()
    }

    fn open_session(&self, _worker: usize) -> GdbResult<Box<dyn Session + '_>> {
        Ok(Box::new(RemoteSession {
            conn: Connection::connect(&self.addr)?,
            op_timeout: self.op_timeout,
            strict_reads: self.strict_reads,
        }))
    }
}

struct RemoteSession {
    conn: Connection,
    op_timeout: Duration,
    strict_reads: bool,
}

impl Session for RemoteSession {
    fn execute(&mut self, op: Op, worker: usize, op_index: u64) -> GdbResult<OpResult> {
        let req = Request::ExecOp {
            worker: worker as u32,
            op_index,
            // The driver stamped this op's id into the thread-local before
            // calling execute; forwarding it lets the server record its
            // phase tree under the same id (0 = untraced, server skips).
            trace_id: trace::current(),
            timeout_micros: self.op_timeout.as_micros().min(u64::MAX as u128) as u64,
            strict: self.strict_reads,
            op,
        };
        // Under `GM_OBS=phases`, split the round trip client-side: frame
        // encode/decode is `wire_encode`; the socket round trip minus the
        // server's own reported time is `wire_io`. Otherwise skip every
        // clock read — the fast path stays as it was.
        let timing = gm_obs::phases_on();
        let t_enc = timing.then(Instant::now);
        let payload = req.encode()?;
        let enc = t_enc.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let t_io = timing.then(Instant::now);
        wire::write_frame(&mut self.conn.stream, &payload)?;
        let frame = wire::read_frame(&mut self.conn.stream)?;
        let io = t_io.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let t_dec = timing.then(Instant::now);
        let rsp = match Response::decode(&frame)? {
            Response::Err(e) => return Err(e),
            rsp => rsp,
        };
        let dec = t_dec.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut out = expect_exec_done(rsp)?;
        if timing {
            // Server-attributed time (lock wait + exec + pin + clone) rode
            // inside the socket round trip; only the remainder is the wire.
            let server = out.phases.total();
            out.phases.set(Phase::WireEncode, enc.saturating_add(dec));
            out.phases.set(Phase::WireIo, io.saturating_sub(server));
        }
        Ok(out)
    }
}

/// Set up `addr`'s server for a fresh run (reset, ship + bulk-load `data`,
/// sync, prepare workload parameters from `cfg.seed`), then drive the
/// configured workload over the wire with `cfg.threads` client connections.
///
/// The resulting [`RunReport`] is shaped exactly like an in-process one, so
/// it flows through `ScalingRow`/`render_scaling`/CSV unchanged — with
/// dispatch and serialization cost now *inside* every latency sample.
pub fn run_remote(addr: &str, data: &Dataset, cfg: &WorkloadConfig) -> GdbResult<RunReport> {
    let backend = setup_remote(addr, data, cfg)?;
    run_backend(&backend, &data.name, cfg)
}

/// Like [`run_remote`], but replays the per-worker sequences serially over
/// one connection at a time (closed loop) — the network-attached sequential
/// reference.
pub fn run_remote_sequential(
    addr: &str,
    data: &Dataset,
    cfg: &WorkloadConfig,
) -> GdbResult<RunReport> {
    // Strict pins so a snapshot-hosted server serves each worker its own
    // earlier writes — the sequential trace must be deterministic.
    let backend = setup_remote(addr, data, cfg)?.with_strict_reads();
    run_backend_sequential(&backend, &data.name, cfg)
}

fn setup_remote(addr: &str, data: &Dataset, cfg: &WorkloadConfig) -> GdbResult<RemoteBackend> {
    let mut ctl = RemoteEngine::connect(addr)?;
    ctl.reset()?;
    ctl.bulk_load(data, &LoadOptions::default())?;
    ctl.sync()?;
    ctl.prepare(cfg.seed, WORKLOAD_SLOTS as u32)?;
    Ok(RemoteBackend::new(addr, ctl.name(), cfg.op_timeout))
}
