//! Length-prefixed framing and the byte-level codec.
//!
//! Every message on a gm-net socket is one **frame**: a 4-byte big-endian
//! payload length followed by the payload. Inside a payload, fields use the
//! fixed little-endian / length-prefixed encodings below; [`Value`]s reuse
//! the tag-prefixed codec the storage engines already serialize records with
//! (`gm_storage::valcodec`), so the wire format and the on-disk format can
//! never drift apart.
//!
//! Decoding is **total**: truncated or corrupt input is rejected with
//! [`GdbError::Corrupt`] — never a panic, never an over-allocation (element
//! counts are validated against the bytes actually present before any
//! buffer is reserved). The property tests in `tests/prop_wire.rs` fuzz
//! exactly this contract.

use std::io::{Read, Write};

use gm_model::{GdbError, GdbResult, Props, Value};
use gm_storage::valcodec;

/// Hard cap on one frame's payload. Large enough for a bulk-loaded dataset
/// at bench scales, small enough that a corrupt length prefix cannot make
/// the peer allocate unbounded memory.
pub const MAX_FRAME: usize = 256 << 20;

/// The protocol error for a payload, string, or list whose length cannot be
/// represented in its u32 wire prefix. Truncating with `as u32` instead
/// would silently desync the stream: the peer would read a frame boundary
/// in the middle of the payload.
pub fn frame_too_large(what: &str, len: usize) -> GdbError {
    GdbError::Invalid(format!(
        "FrameTooLarge: {what} of {len} bytes does not fit a u32 length prefix"
    ))
}

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> GdbResult<()> {
    if payload.len() > MAX_FRAME {
        return Err(GdbError::Invalid(format!(
            "frame payload of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
            payload.len()
        )));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| frame_too_large("frame payload", payload.len()))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. A clean EOF before the first length byte is
/// reported as `Io("connection closed")`; a length beyond [`MAX_FRAME`] is a
/// protocol violation ([`GdbError::Corrupt`]).
pub fn read_frame(r: &mut impl Read) -> GdbResult<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)
        .map_err(|e| GdbError::Io(format!("reading frame length: {e}")))?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(GdbError::Corrupt(format!(
            "frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| GdbError::Io(format!("reading frame payload: {e}")))?;
    Ok(payload)
}

// ----- encoders ------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u16` (LE).
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` (LE).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (LE).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `bool` (one byte, 0/1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append a length-prefixed UTF-8 string. Fails with a `FrameTooLarge`
/// protocol error (instead of truncating the prefix) when the string cannot
/// fit its u32 length.
pub fn put_str(out: &mut Vec<u8>, s: &str) -> GdbResult<()> {
    let len = u32::try_from(s.len()).map_err(|_| frame_too_large("string", s.len()))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Append an optional string (presence byte + string).
pub fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) -> GdbResult<()> {
    match s {
        None => put_bool(out, false),
        Some(s) => {
            put_bool(out, true);
            put_str(out, s)?;
        }
    }
    Ok(())
}

/// Append a [`Value`] in the storage codec's tag-prefixed format.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    valcodec::encode_value(out, v);
}

/// Append a property list (count + name/value pairs).
pub fn put_props(out: &mut Vec<u8>, props: &Props) -> GdbResult<()> {
    let count = u32::try_from(props.len()).map_err(|_| frame_too_large("props", props.len()))?;
    put_u32(out, count);
    for (name, value) in props {
        put_str(out, name)?;
        put_value(out, value);
    }
    Ok(())
}

// ----- decoder -------------------------------------------------------------

/// Bounds-checked cursor over a frame payload. Every accessor fails with
/// [`GdbError::Corrupt`] instead of panicking when the input is truncated
/// or malformed.
pub struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(what: &str) -> GdbError {
        GdbError::Corrupt(format!("wire: truncated {what}"))
    }

    fn take(&mut self, n: usize, what: &str) -> GdbResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::truncated(what))?;
        // gm-check: allow-panic(slice range is the checked_add-validated [pos, end] window)
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    /// [`Cur::take`] with a compile-time length, for the fixed-width scalar
    /// decoders: the array conversion is checked by construction instead of
    /// leaning on `try_into().unwrap()` at every call site.
    fn take_n<const N: usize>(&mut self, what: &str) -> GdbResult<[u8; N]> {
        let bytes = self.take(N, what)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> GdbResult<u8> {
        let [b] = self.take_n::<1>("u8")?;
        Ok(b)
    }

    /// Read a `u16` (LE).
    pub fn u16(&mut self) -> GdbResult<u16> {
        Ok(u16::from_le_bytes(self.take_n("u16")?))
    }

    /// Read a `u32` (LE).
    pub fn u32(&mut self) -> GdbResult<u32> {
        Ok(u32::from_le_bytes(self.take_n("u32")?))
    }

    /// Read a `u64` (LE).
    pub fn u64(&mut self) -> GdbResult<u64> {
        Ok(u64::from_le_bytes(self.take_n("u64")?))
    }

    /// Read a `bool`; any byte other than 0/1 is corrupt.
    pub fn bool_(&mut self) -> GdbResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(GdbError::Corrupt(format!("wire: invalid bool byte {b}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> GdbResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| GdbError::Corrupt("wire: string is not UTF-8".into()))
    }

    /// Read an optional string.
    pub fn opt_str(&mut self) -> GdbResult<Option<String>> {
        if self.bool_()? {
            Ok(Some(self.str_()?))
        } else {
            Ok(None)
        }
    }

    /// Read `n` raw bytes (length-prefixed sub-frames, e.g. `ExecBatch`
    /// entries).
    pub fn bytes(&mut self, n: usize, what: &str) -> GdbResult<&'a [u8]> {
        self.take(n, what)
    }

    /// Read a [`Value`].
    pub fn value(&mut self) -> GdbResult<Value> {
        let mut pos = self.pos;
        let v = valcodec::decode_value(self.buf, &mut pos)
            .ok_or_else(|| GdbError::Corrupt("wire: malformed value".into()))?;
        self.pos = pos;
        Ok(v)
    }

    /// Read a property list.
    pub fn props(&mut self) -> GdbResult<Props> {
        let count = self.list_len("props")?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let name = self.str_()?;
            let value = self.value()?;
            out.push((name, value));
        }
        Ok(out)
    }

    /// Read a list length and validate it against the bytes actually left:
    /// every element of every wire list encodes to at least one byte, so a
    /// count beyond `remaining()` can only come from corrupt input — reject
    /// it *before* any allocation is sized from it.
    pub fn list_len(&mut self, what: &str) -> GdbResult<usize> {
        let count = self.u32()? as usize;
        if count > self.remaining() {
            return Err(GdbError::Corrupt(format!(
                "wire: {what} count {count} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Assert the payload is fully consumed (frames carry no trailing junk).
    pub fn finish(self) -> GdbResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(GdbError::Corrupt(format!(
                "wire: {} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ----- GdbError round-trip -------------------------------------------------

/// Encode a [`GdbError`] (tag + payload). Every variant round-trips
/// losslessly so a remote failure surfaces client-side as the *same* error,
/// not a generic I/O failure.
pub fn put_error(out: &mut Vec<u8>, e: &GdbError) -> GdbResult<()> {
    match e {
        GdbError::Timeout => put_u8(out, 0),
        GdbError::VertexNotFound(id) => {
            put_u8(out, 1);
            put_u64(out, *id);
        }
        GdbError::EdgeNotFound(id) => {
            put_u8(out, 2);
            put_u64(out, *id);
        }
        GdbError::Unsupported(s) => {
            put_u8(out, 3);
            put_str(out, s)?;
        }
        GdbError::Corrupt(s) => {
            put_u8(out, 4);
            put_str(out, s)?;
        }
        GdbError::Invalid(s) => {
            put_u8(out, 5);
            put_str(out, s)?;
        }
        GdbError::ResourceExhausted(s) => {
            put_u8(out, 6);
            put_str(out, s)?;
        }
        GdbError::Io(s) => {
            put_u8(out, 7);
            put_str(out, s)?;
        }
        GdbError::Poisoned(s) => {
            put_u8(out, 8);
            put_str(out, s)?;
        }
        GdbError::TxnConflict(s) => {
            put_u8(out, 9);
            put_str(out, s)?;
        }
    }
    Ok(())
}

/// Decode a [`GdbError`].
pub fn get_error(cur: &mut Cur<'_>) -> GdbResult<GdbError> {
    Ok(match cur.u8()? {
        0 => GdbError::Timeout,
        1 => GdbError::VertexNotFound(cur.u64()?),
        2 => GdbError::EdgeNotFound(cur.u64()?),
        3 => GdbError::Unsupported(cur.str_()?),
        4 => GdbError::Corrupt(cur.str_()?),
        5 => GdbError::Invalid(cur.str_()?),
        6 => GdbError::ResourceExhausted(cur.str_()?),
        7 => GdbError::Io(cur.str_()?),
        8 => GdbError::Poisoned(cur.str_()?),
        9 => GdbError::TxnConflict(cur.str_()?),
        t => return Err(GdbError::Corrupt(format!("wire: unknown GdbError tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut sink = Vec::new();
        write_frame(&mut sink, b"hello").unwrap();
        write_frame(&mut sink, b"").unwrap();
        let mut rd = Cursor::new(sink);
        assert_eq!(read_frame(&mut rd).unwrap(), b"hello");
        assert_eq!(read_frame(&mut rd).unwrap(), b"");
        assert!(matches!(read_frame(&mut rd), Err(GdbError::Io(_))));
    }

    #[test]
    fn oversize_frame_length_rejected() {
        let mut bytes = (u32::MAX).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let mut rd = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut rd), Err(GdbError::Corrupt(_))));
    }

    #[test]
    fn truncated_payload_is_io_not_panic() {
        // Length says 100, only 3 bytes follow.
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut rd = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut rd), Err(GdbError::Io(_))));
    }

    #[test]
    fn scalar_round_trips() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 512);
        put_u32(&mut out, 70_000);
        put_u64(&mut out, u64::MAX - 3);
        put_bool(&mut out, true);
        put_str(&mut out, "héllo ☃").unwrap();
        put_opt_str(&mut out, None).unwrap();
        put_opt_str(&mut out, Some("x")).unwrap();
        let mut cur = Cur::new(&out);
        assert_eq!(cur.u8().unwrap(), 7);
        assert_eq!(cur.u16().unwrap(), 512);
        assert_eq!(cur.u32().unwrap(), 70_000);
        assert_eq!(cur.u64().unwrap(), u64::MAX - 3);
        assert!(cur.bool_().unwrap());
        assert_eq!(cur.str_().unwrap(), "héllo ☃");
        assert_eq!(cur.opt_str().unwrap(), None);
        assert_eq!(cur.opt_str().unwrap(), Some("x".into()));
        cur.finish().unwrap();
    }

    #[test]
    fn value_and_props_round_trip() {
        let props: Props = vec![
            ("s".into(), Value::Str("abc".into())),
            ("i".into(), Value::Int(-42)),
            ("f".into(), Value::Float(2.5)),
            ("b".into(), Value::Bool(false)),
            ("n".into(), Value::Null),
        ];
        let mut out = Vec::new();
        put_props(&mut out, &props).unwrap();
        let mut cur = Cur::new(&out);
        let back = cur.props().unwrap();
        cur.finish().unwrap();
        // Compare variant-exactly (Value's PartialEq treats Int(2) ==
        // Float(2.0); the codec must be stricter than that).
        assert_eq!(back.len(), props.len());
        for ((an, av), (bn, bv)) in back.iter().zip(props.iter()) {
            assert_eq!(an, bn);
            assert_eq!(av.type_tag(), bv.type_tag());
            assert_eq!(av, bv);
        }
    }

    /// Satellite requirement: every `GdbError` variant must round-trip to
    /// the same variant — a remote error never collapses into a generic
    /// I/O error.
    #[test]
    fn every_error_variant_round_trips() {
        let all = vec![
            GdbError::Timeout,
            GdbError::VertexNotFound(17),
            GdbError::EdgeNotFound(u64::MAX),
            GdbError::Unsupported("no vertex indexes".into()),
            GdbError::Corrupt("bad page".into()),
            GdbError::Invalid("empty label".into()),
            GdbError::ResourceExhausted("bitmap cap".into()),
            GdbError::Io("disk gone".into()),
            GdbError::Poisoned("worker 3 panicked".into()),
            GdbError::TxnConflict("vertex v7 written since epoch 4".into()),
        ];
        for e in &all {
            let mut out = Vec::new();
            put_error(&mut out, e).unwrap();
            let mut cur = Cur::new(&out);
            let back = get_error(&mut cur).unwrap();
            cur.finish().unwrap();
            assert_eq!(&back, e, "variant must survive the wire");
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(e),
                "same variant, not just equal payloads"
            );
        }
    }

    /// Satellite requirement: a string whose length cannot fit the u32
    /// prefix fails with the `FrameTooLarge` protocol error instead of
    /// silently truncating the prefix and desyncing the stream. (Allocating
    /// a real >4 GiB string is not viable in a unit test; the checked
    /// conversion is exercised through the helper the encoders share.)
    #[test]
    fn oversize_length_is_frame_too_large() {
        let e = frame_too_large("string", u32::MAX as usize + 1);
        match e {
            GdbError::Invalid(why) => {
                assert!(why.contains("FrameTooLarge"), "{why}");
                assert!(why.contains("4294967296"), "{why}");
            }
            other => panic!("expected Invalid(FrameTooLarge), got {other}"),
        }
        // In-range lengths must keep succeeding.
        let mut out = Vec::new();
        put_str(&mut out, "fits").unwrap();
        put_props(&mut out, &vec![("k".into(), Value::Int(1))]).unwrap();
    }

    #[test]
    fn truncation_never_panics() {
        let mut out = Vec::new();
        put_str(&mut out, "some payload").unwrap();
        put_u64(&mut out, 9);
        put_props(&mut out, &vec![("k".into(), Value::Int(1))]).unwrap();
        for cut in 0..out.len() {
            let mut cur = Cur::new(&out[..cut]);
            // Whatever partial reads succeed, nothing may panic and the
            // final field must fail.
            let _ = cur.str_().and_then(|_| cur.u64()).and_then(|_| cur.props());
        }
    }

    #[test]
    fn absurd_list_count_rejected_before_allocation() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX); // claims 4 billion props
        let mut cur = Cur::new(&out);
        assert!(matches!(cur.props(), Err(GdbError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut out = Vec::new();
        put_u8(&mut out, 1);
        put_u8(&mut out, 2);
        let mut cur = Cur::new(&out);
        cur.u8().unwrap();
        assert!(matches!(cur.finish(), Err(GdbError::Corrupt(_))));
    }
}
