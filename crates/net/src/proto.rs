//! The gm-net message set: versioned request/response frames.
//!
//! A connection starts with a [`Request::Hello`] carrying [`MAGIC`] and
//! [`PROTO_VERSION`]; the server answers [`Response::HelloAck`] (or an error
//! frame) before anything else. After the handshake the client may send any
//! number of requests; the server answers each **in order**, so clients are
//! free to pipeline (send several requests before reading the first
//! response) — the per-connection handler is a plain read→execute→write
//! loop, which makes pipelining safe by construction.
//!
//! Two request families share the connection:
//!
//! * **primitive calls** — one frame per [`GraphDb`](gm_model::GraphDb)
//!   method, used by `RemoteEngine` to implement the trait transparently
//!   (client-side query decomposition, one round trip per primitive);
//! * **workload frames** — [`Request::ExecOp`] ships a whole driver op
//!   ([`QueryInstance`] by query id + swept params, or a CUD write) and the
//!   server executes it against its resolved parameters in one round trip,
//!   which is how real client/server deployments execute Gremlin
//!   server-side.

use gm_core::catalog::{QueryId, QueryInstance};
use gm_model::api::{Direction, EdgeRef, EngineFeatures, LoadOptions, LoadStats, SpaceReport};
use gm_model::{Dataset, DsEdge, DsVertex, EdgeData, GdbError, GdbResult, Value, VertexData};
use gm_obs::{
    HistSnapshot, PhaseNanos, RegistrySnapshot, TraceOrigin, TraceRecord, BUCKETS, PHASES,
};
use gm_workload::{Op, WriteOp};

use crate::wire::{self, Cur};

/// Wire magic: `"GMNT"`.
pub const MAGIC: u32 = 0x474D_4E54;

/// Protocol version; bumped on any frame-format change. The server refuses
/// mismatched clients at handshake instead of misparsing their frames.
///
/// v2: `ExecOp` answers with [`Response::ExecDone`] (cardinality **plus the
/// serving epoch** when the server hosts a snapshot source) instead of a
/// bare `U64`.
///
/// v3: `ExecDone` additionally carries the op's server-side **lock wait**
/// (nanoseconds spent acquiring engine locks), so remote runs feed the
/// driver's lock-wait accounting — the per-shard vs single-lock comparison
/// works across the wire.
///
/// v4: `ExecDone` carries the full server-side phase breakdown (engine
/// execution, snapshot pin, clone/publish nanoseconds next to the lock
/// wait), so fig9 can split a remote op's latency into wire time vs server
/// time; and [`Request::GetStats`] / [`Response::Stats`] expose the
/// server's `gm-obs` metrics registry over the connection.
///
/// v5: `ExecOp` carries the client's deterministic **trace id** so the
/// server records its phase tree under the same id (the client stitches one
/// cross-process trace per op from the phases `ExecDone` already ships);
/// [`Request::GetTraces`] / [`Response::Traces`] drain the server's flight
/// recorder over the connection; and the `GetStats` snapshot gains a
/// monotonic `captured_at_us` uptime stamp so two snapshots diff into true
/// interval rates client-side.
///
/// v6: [`Request::ExecBatch`] ships many requests in one length-prefixed
/// frame and is answered by one [`Response::BatchDone`] carrying one
/// response per entry — the fleet coordinator's write path flushes a whole
/// deferred batch in a single round trip; [`Request::Epoch`] probes the
/// serving epoch without pinning work to it (the fleet-wide epoch is the
/// min over per-shard probes); and [`Response::HelloAck`] carries the
/// server's optional **shard identity** (`shard id` / `fleet size`) so a
/// fleet client can verify it dialed the shard it routed to.
///
/// v7: write transactions. [`Request::TxnBegin`] opens an epoch-pinned
/// write transaction on the connection (answered by [`Response::TxnBegun`]
/// with the pinned epoch); subsequent write primitives buffer into it and
/// reads answer from its read-your-writes overlay; [`Request::TxnCommit`]
/// validates first-committer-wins and publishes the whole write set
/// atomically ([`Response::TxnCommitted`]), [`Request::TxnAbort`] discards
/// it ([`Response::TxnAborted`]). Conflicts round-trip as the distinct
/// [`GdbError::TxnConflict`] error (wire tag 9). Encoding also became
/// fallible end to end: payloads that cannot fit the u32 length prefix
/// surface as `FrameTooLarge` protocol errors instead of truncating.
pub const PROTO_VERSION: u16 = 7;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake; must be the first frame on a connection.
    Hello {
        /// Must equal [`MAGIC`].
        magic: u32,
        /// Must equal [`PROTO_VERSION`].
        version: u16,
    },
    /// Replace the hosted engine with a fresh one from the server's factory
    /// and forget any loaded dataset / prepared workload.
    Reset,
    /// Ship a dataset and bulk-load it into the hosted engine. The server
    /// retains the dataset so a later [`Request::Prepare`] can derive
    /// workload parameters from it.
    BulkLoad {
        /// Load options.
        opts: LoadOptions,
        /// The canonical dataset, shipped in full.
        data: Dataset,
    },
    /// Resolve workload parameters server-side: `Workload::choose(data,
    /// seed, slots)` against the retained dataset, resolved on the hosted
    /// engine. Required before [`Request::ExecOp`].
    Prepare {
        /// Workload seed (must match the driver's).
        seed: u64,
        /// Victim/pair slot count (must match the driver's).
        slots: u32,
    },
    /// Execute one driver op server-side in a single round trip.
    ExecOp {
        /// Issuing worker index (parameterizes writes).
        worker: u32,
        /// Op index within the worker's sequence.
        op_index: u64,
        /// The client's deterministic trace id for this op (v5; 0 = not
        /// traced). The server records its phase tree under this id so the
        /// client can stitch one cross-process trace per op.
        trace_id: u64,
        /// Read deadline in microseconds (0 = unbounded).
        timeout_micros: u64,
        /// Strict read pin: a snapshot-hosted server must serve this read
        /// from a read-your-writes pin (`snapshot()`) instead of the
        /// group-committed `snapshot_recent` cadence. Sequential replays
        /// set this so their traces stay deterministic; concurrent drivers
        /// leave it unset for the scalable pin fast path. Ignored by
        /// locked-mode servers and for writes.
        strict: bool,
        /// The op itself.
        op: Op,
    },
    /// Snapshot the server's `gm-obs` metrics registry (v4). Always
    /// answered with [`Response::Stats`]; the snapshot is empty when the
    /// server runs with `GM_OBS=off`.
    GetStats,
    /// Drain a copy of the server's trace flight recorder (v5). Always
    /// answered with [`Response::Traces`]; the list is empty when the
    /// server runs with `GM_TRACE=off`.
    GetTraces,
    /// `GraphDb::features`.
    Features,
    /// `GraphDb::resolve_vertex`.
    ResolveVertex(u64),
    /// `GraphDb::resolve_edge`.
    ResolveEdge(u64),
    /// `GraphDb::add_vertex`.
    AddVertex {
        /// Vertex label.
        label: String,
        /// Properties.
        props: Vec<(String, Value)>,
    },
    /// `GraphDb::add_edge`.
    AddEdge {
        /// Source vertex (internal id).
        src: u64,
        /// Destination vertex (internal id).
        dst: u64,
        /// Edge label.
        label: String,
        /// Properties.
        props: Vec<(String, Value)>,
    },
    /// `GraphDb::set_vertex_property`.
    SetVertexProp {
        /// Vertex.
        v: u64,
        /// Property name.
        name: String,
        /// Property value.
        value: Value,
    },
    /// `GraphDb::set_edge_property`.
    SetEdgeProp {
        /// Edge.
        e: u64,
        /// Property name.
        name: String,
        /// Property value.
        value: Value,
    },
    /// `GraphDb::vertex_count` (`t` = read deadline in µs, 0 = unbounded).
    VertexCount {
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::edge_count`.
    EdgeCount {
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::edge_label_set`.
    EdgeLabelSet {
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::vertices_with_property`.
    VerticesWithProperty {
        /// Property name.
        name: String,
        /// Property value.
        value: Value,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::edges_with_property`.
    EdgesWithProperty {
        /// Property name.
        name: String,
        /// Property value.
        value: Value,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::edges_with_label`.
    EdgesWithLabel {
        /// Edge label.
        label: String,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::vertex` (Q14 materialization).
    GetVertex(u64),
    /// `GraphDb::edge` (Q15 materialization).
    GetEdge(u64),
    /// `GraphDb::remove_vertex`.
    RemoveVertex(u64),
    /// `GraphDb::remove_edge`.
    RemoveEdge(u64),
    /// `GraphDb::remove_vertex_property`.
    RemoveVertexProp {
        /// Vertex.
        v: u64,
        /// Property name.
        name: String,
    },
    /// `GraphDb::remove_edge_property`.
    RemoveEdgeProp {
        /// Edge.
        e: u64,
        /// Property name.
        name: String,
    },
    /// `GraphDb::neighbors`.
    Neighbors {
        /// Vertex.
        v: u64,
        /// Direction.
        dir: Direction,
        /// Optional label filter.
        label: Option<String>,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::vertex_edges`.
    VertexEdges {
        /// Vertex.
        v: u64,
        /// Direction.
        dir: Direction,
        /// Optional label filter.
        label: Option<String>,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::vertex_degree`.
    VertexDegree {
        /// Vertex.
        v: u64,
        /// Direction.
        dir: Direction,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::vertex_edge_labels`.
    VertexEdgeLabels {
        /// Vertex.
        v: u64,
        /// Direction.
        dir: Direction,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::scan_vertices`, materialized server-side.
    ScanVertices {
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::scan_edges`, materialized server-side.
    ScanEdges {
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::vertex_property`.
    VertexProperty {
        /// Vertex.
        v: u64,
        /// Property name.
        name: String,
    },
    /// `GraphDb::edge_property`.
    EdgeProperty {
        /// Edge.
        e: u64,
        /// Property name.
        name: String,
    },
    /// `GraphDb::edge_endpoints`.
    EdgeEndpoints(u64),
    /// `GraphDb::edge_label`.
    EdgeLabel(u64),
    /// `GraphDb::vertex_label`.
    VertexLabel(u64),
    /// `GraphDb::degree_scan` — executed by the *hosted engine's* strategy,
    /// so per-engine physical differences survive the wire.
    DegreeScan {
        /// Direction.
        dir: Direction,
        /// Degree threshold.
        k: u64,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::distinct_neighbor_scan`.
    DistinctNeighborScan {
        /// Direction.
        dir: Direction,
        /// Deadline µs.
        t: u64,
    },
    /// `GraphDb::create_vertex_index`.
    CreateVertexIndex {
        /// Property name.
        prop: String,
    },
    /// `GraphDb::has_vertex_index`.
    HasVertexIndex {
        /// Property name.
        prop: String,
    },
    /// `GraphDb::space`.
    Space,
    /// `GraphDb::sync`.
    Sync,
    /// Many requests in one frame (v6): the server executes the entries
    /// strictly in order and answers with a single [`Response::BatchDone`]
    /// carrying one response per entry. Per-entry failures ride inside the
    /// batch as [`Response::Err`] entries, so one bad op cannot desync the
    /// stream. Entries may be any request except [`Request::Hello`] and a
    /// nested `ExecBatch` — the decoder rejects both, which also bounds
    /// decode recursion at one level.
    ExecBatch(Vec<Request>),
    /// Probe the serving epoch (v6): answered with [`Response::U64`] — the
    /// snapshot epoch a read would pin right now, `0` under locked hosting.
    /// The fleet coordinator min-reduces this across shards, mirroring
    /// `ShardedSource`.
    Epoch,
    /// Open an epoch-pinned write transaction on this connection (v7).
    /// Answered with [`Response::TxnBegun`]. Only snapshot-hosted servers
    /// support transactions; at most one may be open per connection.
    TxnBegin,
    /// Validate and atomically publish the connection's open transaction
    /// (v7). Answered with [`Response::TxnCommitted`], or
    /// [`Response::Err`]`(TxnConflict)` when another commit won the
    /// first-committer-wins race (the write set is discarded either way).
    TxnCommit,
    /// Discard the connection's open transaction without publishing (v7).
    /// Answered with [`Response::TxnAborted`].
    TxnAbort,
}

/// A server→client message. [`Response::Err`] may answer any request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement.
    HelloAck {
        /// Server protocol version.
        version: u16,
        /// Hosted engine's display name.
        engine: String,
        /// Fleet identity when the server runs as one shard of a fleet
        /// (v6): `(shard_id, fleet_size)`. `None` for standalone servers.
        shard: Option<(u32, u32)>,
    },
    /// Success with no payload.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A u64 (counts, cardinalities, degrees).
    U64(u64),
    /// An `ExecOp` completion: result cardinality plus the epoch of the
    /// snapshot that served a read (`None` when the server executes under
    /// the shared lock, and for writes — they produce the next epoch, they
    /// don't observe one). The epoch is what lets a remote client assert
    /// that a scan's rows decode against exactly one graph version.
    ExecDone {
        /// Result cardinality.
        card: u64,
        /// Serving epoch for snapshot-backed reads.
        epoch: Option<u64>,
        /// Nanoseconds the op spent waiting on engine locks server-side
        /// (v3; the server's whole execution path reports through
        /// `gm_model::lockwait`).
        lock_wait: u64,
        /// Server-side engine execution nanoseconds (v4).
        exec_nanos: u64,
        /// Server-side snapshot-pin nanoseconds (v4).
        pin_nanos: u64,
        /// Server-side clone/publish nanoseconds (v4).
        clone_nanos: u64,
    },
    /// An optional u64 (id resolution).
    OptU64(Option<u64>),
    /// A list of ids (vertex or edge scans, filters).
    U64List(Vec<u64>),
    /// A list of strings (label sets).
    StrList(Vec<String>),
    /// An optional value (property lookups / removals).
    OptValue(Option<Value>),
    /// An optional string (label lookups).
    OptStr(Option<String>),
    /// Optional edge endpoints.
    OptPair(Option<(u64, u64)>),
    /// Incident-edge list.
    EdgeRefs(Vec<EdgeRef>),
    /// Materialized vertex.
    OptVertex(Option<VertexData>),
    /// Materialized edge.
    OptEdge(Option<EdgeData>),
    /// Bulk-load outcome.
    Load(LoadStats),
    /// Engine feature description.
    Features(EngineFeatures),
    /// Space report.
    Space(SpaceReport),
    /// The server's metrics-registry snapshot (v4, answers
    /// [`Request::GetStats`]).
    Stats(RegistrySnapshot),
    /// A copy of the server's trace flight recorder, oldest first (v5,
    /// answers [`Request::GetTraces`]).
    Traces(Vec<TraceRecord>),
    /// Answers [`Request::ExecBatch`] (v6): one response per entry, in
    /// order. Per-entry failures are [`Response::Err`] entries here, not a
    /// top-level error.
    BatchDone(Vec<Response>),
    /// Answers [`Request::TxnBegin`] (v7) with the epoch the transaction's
    /// reads are pinned to.
    TxnBegun {
        /// The pinned read epoch.
        epoch: u64,
    },
    /// Answers [`Request::TxnCommit`] (v7).
    TxnCommitted {
        /// Number of buffered write ops the commit replayed.
        ops: u64,
        /// The serving epoch after publication.
        epoch: u64,
    },
    /// Answers [`Request::TxnAbort`] (v7).
    TxnAborted {
        /// Number of buffered write ops discarded.
        ops: u64,
    },
    /// The request failed with this engine error (round-tripped losslessly).
    Err(GdbError),
}

impl Response {
    /// Short kind name, used in protocol-mismatch diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::HelloAck { .. } => "HelloAck",
            Response::Unit => "Unit",
            Response::Bool(_) => "Bool",
            Response::U64(_) => "U64",
            Response::ExecDone { .. } => "ExecDone",
            Response::OptU64(_) => "OptU64",
            Response::U64List(_) => "U64List",
            Response::StrList(_) => "StrList",
            Response::OptValue(_) => "OptValue",
            Response::OptStr(_) => "OptStr",
            Response::OptPair(_) => "OptPair",
            Response::EdgeRefs(_) => "EdgeRefs",
            Response::OptVertex(_) => "OptVertex",
            Response::OptEdge(_) => "OptEdge",
            Response::Load(_) => "Load",
            Response::Features(_) => "Features",
            Response::Space(_) => "Space",
            Response::Stats(_) => "Stats",
            Response::Traces(_) => "Traces",
            Response::BatchDone(_) => "BatchDone",
            Response::TxnBegun { .. } => "TxnBegun",
            Response::TxnCommitted { .. } => "TxnCommitted",
            Response::TxnAborted { .. } => "TxnAborted",
            Response::Err(_) => "Err",
        }
    }
}

// ----- shared field codecs -------------------------------------------------

fn put_direction(out: &mut Vec<u8>, dir: Direction) {
    wire::put_u8(
        out,
        match dir {
            Direction::In => 0,
            Direction::Out => 1,
            Direction::Both => 2,
        },
    );
}

fn get_direction(cur: &mut Cur<'_>) -> GdbResult<Direction> {
    match cur.u8()? {
        0 => Ok(Direction::In),
        1 => Ok(Direction::Out),
        2 => Ok(Direction::Both),
        d => Err(GdbError::Corrupt(format!("wire: unknown direction {d}"))),
    }
}

fn put_instance(out: &mut Vec<u8>, inst: &QueryInstance) {
    wire::put_u8(out, inst.id.number());
    match inst.depth {
        None => wire::put_bool(out, false),
        Some(d) => {
            wire::put_bool(out, true);
            wire::put_u8(out, d);
        }
    }
    match inst.k {
        None => wire::put_bool(out, false),
        Some(k) => {
            wire::put_bool(out, true);
            wire::put_u64(out, k);
        }
    }
}

fn get_instance(cur: &mut Cur<'_>) -> GdbResult<QueryInstance> {
    let number = cur.u8()?;
    let id = *QueryId::ALL
        .get(number.wrapping_sub(1) as usize)
        .ok_or_else(|| GdbError::Corrupt(format!("wire: unknown query number {number}")))?;
    let depth = if cur.bool_()? { Some(cur.u8()?) } else { None };
    let k = if cur.bool_()? { Some(cur.u64()?) } else { None };
    Ok(QueryInstance { id, depth, k })
}

fn put_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Read(inst) => {
            wire::put_u8(out, 0);
            put_instance(out, inst);
        }
        Op::Write(wop) => {
            wire::put_u8(out, 1);
            wire::put_u8(
                out,
                match wop {
                    WriteOp::AddVertex => 0,
                    WriteOp::AddEdge => 1,
                    WriteOp::SetVertexProp => 2,
                    WriteOp::RemoveOwnEdge => 3,
                },
            );
        }
    }
}

fn get_op(cur: &mut Cur<'_>) -> GdbResult<Op> {
    match cur.u8()? {
        0 => Ok(Op::Read(get_instance(cur)?)),
        1 => Ok(Op::Write(match cur.u8()? {
            0 => WriteOp::AddVertex,
            1 => WriteOp::AddEdge,
            2 => WriteOp::SetVertexProp,
            3 => WriteOp::RemoveOwnEdge,
            w => return Err(GdbError::Corrupt(format!("wire: unknown write op {w}"))),
        })),
        t => Err(GdbError::Corrupt(format!("wire: unknown op tag {t}"))),
    }
}

fn put_dataset(out: &mut Vec<u8>, data: &Dataset) -> GdbResult<()> {
    wire::put_str(out, &data.name)?;
    wire::put_u32(out, data.vertices.len() as u32);
    for v in &data.vertices {
        wire::put_str(out, &v.label)?;
        wire::put_props(out, &v.props)?;
    }
    wire::put_u32(out, data.edges.len() as u32);
    for e in &data.edges {
        wire::put_u64(out, e.src);
        wire::put_u64(out, e.dst);
        wire::put_str(out, &e.label)?;
        wire::put_props(out, &e.props)?;
    }
    Ok(())
}

fn get_dataset(cur: &mut Cur<'_>) -> GdbResult<Dataset> {
    let name = cur.str_()?;
    let nv = cur.list_len("dataset vertices")?;
    let mut vertices = Vec::with_capacity(nv);
    for id in 0..nv {
        vertices.push(DsVertex {
            id: id as u64,
            label: cur.str_()?,
            props: cur.props()?,
        });
    }
    let ne = cur.list_len("dataset edges")?;
    let mut edges = Vec::with_capacity(ne);
    for id in 0..ne {
        edges.push(DsEdge {
            id: id as u64,
            src: cur.u64()?,
            dst: cur.u64()?,
            label: cur.str_()?,
            props: cur.props()?,
        });
    }
    let data = Dataset {
        name,
        vertices,
        edges,
    };
    data.validate().map_err(GdbError::Corrupt)?;
    Ok(data)
}

fn put_u64_list(out: &mut Vec<u8>, xs: &[u64]) {
    wire::put_u32(out, xs.len() as u32);
    for x in xs {
        wire::put_u64(out, *x);
    }
}

fn get_u64_list(cur: &mut Cur<'_>) -> GdbResult<Vec<u64>> {
    let n = cur.list_len("u64 list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.u64()?);
    }
    Ok(out)
}

fn put_str_list(out: &mut Vec<u8>, xs: &[String]) -> GdbResult<()> {
    wire::put_u32(out, xs.len() as u32);
    for x in xs {
        wire::put_str(out, x)?;
    }
    Ok(())
}

fn get_str_list(cur: &mut Cur<'_>) -> GdbResult<Vec<String>> {
    let n = cur.list_len("string list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.str_()?);
    }
    Ok(out)
}

/// Log2 histograms ship sparsely: the populated bucket prefix, then the
/// scalar fields. Bucket counts above the highest populated index are zero
/// by construction, so nothing is lost.
fn put_hist(out: &mut Vec<u8>, h: &HistSnapshot) {
    let top = h.counts.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    wire::put_u8(out, top as u8);
    // gm-check: allow-panic(encode path over trusted data; top = rposition + 1 is ≤ len by construction)
    for &c in &h.counts[..top] {
        wire::put_u64(out, c);
    }
    wire::put_u64(out, h.count);
    wire::put_u64(out, h.sum);
    wire::put_u64(out, h.min);
    wire::put_u64(out, h.max);
}

fn get_hist(cur: &mut Cur<'_>) -> GdbResult<HistSnapshot> {
    let top = cur.u8()? as usize;
    if top > BUCKETS {
        return Err(GdbError::Corrupt(format!(
            "wire: histogram bucket prefix {top} exceeds {BUCKETS}"
        )));
    }
    let mut h = HistSnapshot::default();
    for slot in h.counts.iter_mut().take(top) {
        *slot = cur.u64()?;
    }
    h.count = cur.u64()?;
    h.sum = cur.u64()?;
    h.min = cur.u64()?;
    h.max = cur.u64()?;
    Ok(h)
}

fn put_stats(out: &mut Vec<u8>, s: &RegistrySnapshot) -> GdbResult<()> {
    wire::put_u64(out, s.captured_at_us);
    wire::put_u32(out, s.counters.len() as u32);
    for (name, v) in &s.counters {
        wire::put_str(out, name)?;
        wire::put_u64(out, *v);
    }
    wire::put_u32(out, s.gauges.len() as u32);
    for (name, v) in &s.gauges {
        wire::put_str(out, name)?;
        // Gauges are i64; two's-complement through u64 is lossless.
        wire::put_u64(out, *v as u64);
    }
    wire::put_u32(out, s.hists.len() as u32);
    for (name, h) in &s.hists {
        wire::put_str(out, name)?;
        put_hist(out, h);
    }
    Ok(())
}

fn get_stats(cur: &mut Cur<'_>) -> GdbResult<RegistrySnapshot> {
    let mut s = RegistrySnapshot {
        captured_at_us: cur.u64()?,
        ..RegistrySnapshot::default()
    };
    let nc = cur.list_len("stats counters")?;
    for _ in 0..nc {
        s.counters.push((cur.str_()?, cur.u64()?));
    }
    let ng = cur.list_len("stats gauges")?;
    for _ in 0..ng {
        s.gauges.push((cur.str_()?, cur.u64()? as i64));
    }
    let nh = cur.list_len("stats histograms")?;
    for _ in 0..nh {
        s.hists.push((cur.str_()?, get_hist(cur)?));
    }
    Ok(s)
}

fn put_trace_record(out: &mut Vec<u8>, r: &TraceRecord) {
    wire::put_u64(out, r.id);
    wire::put_u32(out, r.worker);
    wire::put_u64(out, r.op_index);
    wire::put_u16(out, r.op_code);
    wire::put_u64(out, r.start_us);
    wire::put_u64(out, r.total_nanos);
    wire::put_u8(out, PHASES as u8);
    for &nanos in &r.phases.0 {
        wire::put_u64(out, nanos);
    }
    wire::put_u8(out, r.origin as u8);
    wire::put_bool(out, r.tail);
}

fn get_trace_record(cur: &mut Cur<'_>) -> GdbResult<TraceRecord> {
    let id = cur.u64()?;
    let worker = cur.u32()?;
    let op_index = cur.u64()?;
    let op_code = cur.u16()?;
    let start_us = cur.u64()?;
    let total_nanos = cur.u64()?;
    let np = cur.u8()? as usize;
    if np != PHASES {
        return Err(GdbError::Corrupt(format!(
            "wire: trace record has {np} phases, expected {PHASES}"
        )));
    }
    let mut phases = PhaseNanos::zero();
    for slot in phases.0.iter_mut() {
        *slot = cur.u64()?;
    }
    let origin = match cur.u8()? {
        0 => TraceOrigin::Client,
        1 => TraceOrigin::Server,
        o => return Err(GdbError::Corrupt(format!("wire: unknown trace origin {o}"))),
    };
    Ok(TraceRecord {
        id,
        worker,
        op_index,
        op_code,
        start_us,
        total_nanos,
        phases,
        origin,
        tail: cur.bool_()?,
    })
}

// ----- request codec -------------------------------------------------------

mod req_op {
    pub const HELLO: u8 = 0x01;
    pub const RESET: u8 = 0x02;
    pub const BULK_LOAD: u8 = 0x03;
    pub const PREPARE: u8 = 0x04;
    pub const EXEC_OP: u8 = 0x05;
    pub const GET_STATS: u8 = 0x06;
    pub const GET_TRACES: u8 = 0x07;
    pub const EXEC_BATCH: u8 = 0x08;
    pub const FEATURES: u8 = 0x10;
    pub const RESOLVE_VERTEX: u8 = 0x11;
    pub const RESOLVE_EDGE: u8 = 0x12;
    pub const ADD_VERTEX: u8 = 0x13;
    pub const ADD_EDGE: u8 = 0x14;
    pub const SET_VERTEX_PROP: u8 = 0x15;
    pub const SET_EDGE_PROP: u8 = 0x16;
    pub const VERTEX_COUNT: u8 = 0x17;
    pub const EDGE_COUNT: u8 = 0x18;
    pub const EDGE_LABEL_SET: u8 = 0x19;
    pub const VERTICES_WITH_PROPERTY: u8 = 0x1A;
    pub const EDGES_WITH_PROPERTY: u8 = 0x1B;
    pub const EDGES_WITH_LABEL: u8 = 0x1C;
    pub const GET_VERTEX: u8 = 0x1D;
    pub const GET_EDGE: u8 = 0x1E;
    pub const REMOVE_VERTEX: u8 = 0x1F;
    pub const REMOVE_EDGE: u8 = 0x20;
    pub const REMOVE_VERTEX_PROP: u8 = 0x21;
    pub const REMOVE_EDGE_PROP: u8 = 0x22;
    pub const NEIGHBORS: u8 = 0x23;
    pub const VERTEX_EDGES: u8 = 0x24;
    pub const VERTEX_DEGREE: u8 = 0x25;
    pub const VERTEX_EDGE_LABELS: u8 = 0x26;
    pub const SCAN_VERTICES: u8 = 0x27;
    pub const SCAN_EDGES: u8 = 0x28;
    pub const VERTEX_PROPERTY: u8 = 0x29;
    pub const EDGE_PROPERTY: u8 = 0x2A;
    pub const EDGE_ENDPOINTS: u8 = 0x2B;
    pub const EDGE_LABEL: u8 = 0x2C;
    pub const VERTEX_LABEL: u8 = 0x2D;
    pub const DEGREE_SCAN: u8 = 0x2E;
    pub const DISTINCT_NEIGHBOR_SCAN: u8 = 0x2F;
    pub const CREATE_VERTEX_INDEX: u8 = 0x30;
    pub const HAS_VERTEX_INDEX: u8 = 0x31;
    pub const SPACE: u8 = 0x32;
    pub const SYNC: u8 = 0x33;
    pub const EPOCH: u8 = 0x34;
    pub const TXN_BEGIN: u8 = 0x35;
    pub const TXN_COMMIT: u8 = 0x36;
    pub const TXN_ABORT: u8 = 0x37;
}

impl Request {
    /// Encode into a frame payload. Fails with a `FrameTooLarge` protocol
    /// error when any field cannot fit its u32 length prefix.
    pub fn encode(&self) -> GdbResult<Vec<u8>> {
        use req_op::*;
        let mut out = Vec::new();
        match self {
            Request::Hello { magic, version } => {
                wire::put_u8(&mut out, HELLO);
                wire::put_u32(&mut out, *magic);
                wire::put_u16(&mut out, *version);
            }
            Request::Reset => wire::put_u8(&mut out, RESET),
            Request::BulkLoad { opts, data } => {
                wire::put_u8(&mut out, BULK_LOAD);
                wire::put_bool(&mut out, opts.bulk);
                wire::put_bool(&mut out, opts.index_during_load);
                put_dataset(&mut out, data)?;
            }
            Request::Prepare { seed, slots } => {
                wire::put_u8(&mut out, PREPARE);
                wire::put_u64(&mut out, *seed);
                wire::put_u32(&mut out, *slots);
            }
            Request::ExecOp {
                worker,
                op_index,
                trace_id,
                timeout_micros,
                strict,
                op,
            } => {
                wire::put_u8(&mut out, EXEC_OP);
                wire::put_u32(&mut out, *worker);
                wire::put_u64(&mut out, *op_index);
                wire::put_u64(&mut out, *trace_id);
                wire::put_u64(&mut out, *timeout_micros);
                wire::put_bool(&mut out, *strict);
                put_op(&mut out, op);
            }
            Request::GetStats => wire::put_u8(&mut out, GET_STATS),
            Request::GetTraces => wire::put_u8(&mut out, GET_TRACES),
            Request::Features => wire::put_u8(&mut out, FEATURES),
            Request::ResolveVertex(c) => {
                wire::put_u8(&mut out, RESOLVE_VERTEX);
                wire::put_u64(&mut out, *c);
            }
            Request::ResolveEdge(c) => {
                wire::put_u8(&mut out, RESOLVE_EDGE);
                wire::put_u64(&mut out, *c);
            }
            Request::AddVertex { label, props } => {
                wire::put_u8(&mut out, ADD_VERTEX);
                wire::put_str(&mut out, label)?;
                wire::put_props(&mut out, props)?;
            }
            Request::AddEdge {
                src,
                dst,
                label,
                props,
            } => {
                wire::put_u8(&mut out, ADD_EDGE);
                wire::put_u64(&mut out, *src);
                wire::put_u64(&mut out, *dst);
                wire::put_str(&mut out, label)?;
                wire::put_props(&mut out, props)?;
            }
            Request::SetVertexProp { v, name, value } => {
                wire::put_u8(&mut out, SET_VERTEX_PROP);
                wire::put_u64(&mut out, *v);
                wire::put_str(&mut out, name)?;
                wire::put_value(&mut out, value);
            }
            Request::SetEdgeProp { e, name, value } => {
                wire::put_u8(&mut out, SET_EDGE_PROP);
                wire::put_u64(&mut out, *e);
                wire::put_str(&mut out, name)?;
                wire::put_value(&mut out, value);
            }
            Request::VertexCount { t } => {
                wire::put_u8(&mut out, VERTEX_COUNT);
                wire::put_u64(&mut out, *t);
            }
            Request::EdgeCount { t } => {
                wire::put_u8(&mut out, EDGE_COUNT);
                wire::put_u64(&mut out, *t);
            }
            Request::EdgeLabelSet { t } => {
                wire::put_u8(&mut out, EDGE_LABEL_SET);
                wire::put_u64(&mut out, *t);
            }
            Request::VerticesWithProperty { name, value, t } => {
                wire::put_u8(&mut out, VERTICES_WITH_PROPERTY);
                wire::put_str(&mut out, name)?;
                wire::put_value(&mut out, value);
                wire::put_u64(&mut out, *t);
            }
            Request::EdgesWithProperty { name, value, t } => {
                wire::put_u8(&mut out, EDGES_WITH_PROPERTY);
                wire::put_str(&mut out, name)?;
                wire::put_value(&mut out, value);
                wire::put_u64(&mut out, *t);
            }
            Request::EdgesWithLabel { label, t } => {
                wire::put_u8(&mut out, EDGES_WITH_LABEL);
                wire::put_str(&mut out, label)?;
                wire::put_u64(&mut out, *t);
            }
            Request::GetVertex(v) => {
                wire::put_u8(&mut out, GET_VERTEX);
                wire::put_u64(&mut out, *v);
            }
            Request::GetEdge(e) => {
                wire::put_u8(&mut out, GET_EDGE);
                wire::put_u64(&mut out, *e);
            }
            Request::RemoveVertex(v) => {
                wire::put_u8(&mut out, REMOVE_VERTEX);
                wire::put_u64(&mut out, *v);
            }
            Request::RemoveEdge(e) => {
                wire::put_u8(&mut out, REMOVE_EDGE);
                wire::put_u64(&mut out, *e);
            }
            Request::RemoveVertexProp { v, name } => {
                wire::put_u8(&mut out, REMOVE_VERTEX_PROP);
                wire::put_u64(&mut out, *v);
                wire::put_str(&mut out, name)?;
            }
            Request::RemoveEdgeProp { e, name } => {
                wire::put_u8(&mut out, REMOVE_EDGE_PROP);
                wire::put_u64(&mut out, *e);
                wire::put_str(&mut out, name)?;
            }
            Request::Neighbors { v, dir, label, t } => {
                wire::put_u8(&mut out, NEIGHBORS);
                wire::put_u64(&mut out, *v);
                put_direction(&mut out, *dir);
                wire::put_opt_str(&mut out, label.as_deref())?;
                wire::put_u64(&mut out, *t);
            }
            Request::VertexEdges { v, dir, label, t } => {
                wire::put_u8(&mut out, VERTEX_EDGES);
                wire::put_u64(&mut out, *v);
                put_direction(&mut out, *dir);
                wire::put_opt_str(&mut out, label.as_deref())?;
                wire::put_u64(&mut out, *t);
            }
            Request::VertexDegree { v, dir, t } => {
                wire::put_u8(&mut out, VERTEX_DEGREE);
                wire::put_u64(&mut out, *v);
                put_direction(&mut out, *dir);
                wire::put_u64(&mut out, *t);
            }
            Request::VertexEdgeLabels { v, dir, t } => {
                wire::put_u8(&mut out, VERTEX_EDGE_LABELS);
                wire::put_u64(&mut out, *v);
                put_direction(&mut out, *dir);
                wire::put_u64(&mut out, *t);
            }
            Request::ScanVertices { t } => {
                wire::put_u8(&mut out, SCAN_VERTICES);
                wire::put_u64(&mut out, *t);
            }
            Request::ScanEdges { t } => {
                wire::put_u8(&mut out, SCAN_EDGES);
                wire::put_u64(&mut out, *t);
            }
            Request::VertexProperty { v, name } => {
                wire::put_u8(&mut out, VERTEX_PROPERTY);
                wire::put_u64(&mut out, *v);
                wire::put_str(&mut out, name)?;
            }
            Request::EdgeProperty { e, name } => {
                wire::put_u8(&mut out, EDGE_PROPERTY);
                wire::put_u64(&mut out, *e);
                wire::put_str(&mut out, name)?;
            }
            Request::EdgeEndpoints(e) => {
                wire::put_u8(&mut out, EDGE_ENDPOINTS);
                wire::put_u64(&mut out, *e);
            }
            Request::EdgeLabel(e) => {
                wire::put_u8(&mut out, EDGE_LABEL);
                wire::put_u64(&mut out, *e);
            }
            Request::VertexLabel(v) => {
                wire::put_u8(&mut out, VERTEX_LABEL);
                wire::put_u64(&mut out, *v);
            }
            Request::DegreeScan { dir, k, t } => {
                wire::put_u8(&mut out, DEGREE_SCAN);
                put_direction(&mut out, *dir);
                wire::put_u64(&mut out, *k);
                wire::put_u64(&mut out, *t);
            }
            Request::DistinctNeighborScan { dir, t } => {
                wire::put_u8(&mut out, DISTINCT_NEIGHBOR_SCAN);
                put_direction(&mut out, *dir);
                wire::put_u64(&mut out, *t);
            }
            Request::CreateVertexIndex { prop } => {
                wire::put_u8(&mut out, CREATE_VERTEX_INDEX);
                wire::put_str(&mut out, prop)?;
            }
            Request::HasVertexIndex { prop } => {
                wire::put_u8(&mut out, HAS_VERTEX_INDEX);
                wire::put_str(&mut out, prop)?;
            }
            Request::Space => wire::put_u8(&mut out, SPACE),
            Request::Sync => wire::put_u8(&mut out, SYNC),
            Request::ExecBatch(reqs) => {
                wire::put_u8(&mut out, EXEC_BATCH);
                wire::put_u32(&mut out, reqs.len() as u32);
                for r in reqs {
                    let sub = r.encode()?;
                    let len = u32::try_from(sub.len())
                        .map_err(|_| wire::frame_too_large("batch entry", sub.len()))?;
                    wire::put_u32(&mut out, len);
                    out.extend_from_slice(&sub);
                }
            }
            Request::Epoch => wire::put_u8(&mut out, EPOCH),
            Request::TxnBegin => wire::put_u8(&mut out, TXN_BEGIN),
            Request::TxnCommit => wire::put_u8(&mut out, TXN_COMMIT),
            Request::TxnAbort => wire::put_u8(&mut out, TXN_ABORT),
        }
        Ok(out)
    }

    /// Decode a frame payload. Rejects unknown opcodes, malformed fields
    /// and trailing bytes with [`GdbError::Corrupt`].
    pub fn decode(buf: &[u8]) -> GdbResult<Request> {
        use req_op::*;
        let mut cur = Cur::new(buf);
        let req = match cur.u8()? {
            HELLO => Request::Hello {
                magic: cur.u32()?,
                version: cur.u16()?,
            },
            RESET => Request::Reset,
            BULK_LOAD => {
                let opts = LoadOptions {
                    bulk: cur.bool_()?,
                    index_during_load: cur.bool_()?,
                };
                Request::BulkLoad {
                    opts,
                    data: get_dataset(&mut cur)?,
                }
            }
            PREPARE => Request::Prepare {
                seed: cur.u64()?,
                slots: cur.u32()?,
            },
            EXEC_OP => Request::ExecOp {
                worker: cur.u32()?,
                op_index: cur.u64()?,
                trace_id: cur.u64()?,
                timeout_micros: cur.u64()?,
                strict: cur.bool_()?,
                op: get_op(&mut cur)?,
            },
            GET_STATS => Request::GetStats,
            GET_TRACES => Request::GetTraces,
            FEATURES => Request::Features,
            RESOLVE_VERTEX => Request::ResolveVertex(cur.u64()?),
            RESOLVE_EDGE => Request::ResolveEdge(cur.u64()?),
            ADD_VERTEX => Request::AddVertex {
                label: cur.str_()?,
                props: cur.props()?,
            },
            ADD_EDGE => Request::AddEdge {
                src: cur.u64()?,
                dst: cur.u64()?,
                label: cur.str_()?,
                props: cur.props()?,
            },
            SET_VERTEX_PROP => Request::SetVertexProp {
                v: cur.u64()?,
                name: cur.str_()?,
                value: cur.value()?,
            },
            SET_EDGE_PROP => Request::SetEdgeProp {
                e: cur.u64()?,
                name: cur.str_()?,
                value: cur.value()?,
            },
            VERTEX_COUNT => Request::VertexCount { t: cur.u64()? },
            EDGE_COUNT => Request::EdgeCount { t: cur.u64()? },
            EDGE_LABEL_SET => Request::EdgeLabelSet { t: cur.u64()? },
            VERTICES_WITH_PROPERTY => Request::VerticesWithProperty {
                name: cur.str_()?,
                value: cur.value()?,
                t: cur.u64()?,
            },
            EDGES_WITH_PROPERTY => Request::EdgesWithProperty {
                name: cur.str_()?,
                value: cur.value()?,
                t: cur.u64()?,
            },
            EDGES_WITH_LABEL => Request::EdgesWithLabel {
                label: cur.str_()?,
                t: cur.u64()?,
            },
            GET_VERTEX => Request::GetVertex(cur.u64()?),
            GET_EDGE => Request::GetEdge(cur.u64()?),
            REMOVE_VERTEX => Request::RemoveVertex(cur.u64()?),
            REMOVE_EDGE => Request::RemoveEdge(cur.u64()?),
            REMOVE_VERTEX_PROP => Request::RemoveVertexProp {
                v: cur.u64()?,
                name: cur.str_()?,
            },
            REMOVE_EDGE_PROP => Request::RemoveEdgeProp {
                e: cur.u64()?,
                name: cur.str_()?,
            },
            NEIGHBORS => Request::Neighbors {
                v: cur.u64()?,
                dir: get_direction(&mut cur)?,
                label: cur.opt_str()?,
                t: cur.u64()?,
            },
            VERTEX_EDGES => Request::VertexEdges {
                v: cur.u64()?,
                dir: get_direction(&mut cur)?,
                label: cur.opt_str()?,
                t: cur.u64()?,
            },
            VERTEX_DEGREE => Request::VertexDegree {
                v: cur.u64()?,
                dir: get_direction(&mut cur)?,
                t: cur.u64()?,
            },
            VERTEX_EDGE_LABELS => Request::VertexEdgeLabels {
                v: cur.u64()?,
                dir: get_direction(&mut cur)?,
                t: cur.u64()?,
            },
            SCAN_VERTICES => Request::ScanVertices { t: cur.u64()? },
            SCAN_EDGES => Request::ScanEdges { t: cur.u64()? },
            VERTEX_PROPERTY => Request::VertexProperty {
                v: cur.u64()?,
                name: cur.str_()?,
            },
            EDGE_PROPERTY => Request::EdgeProperty {
                e: cur.u64()?,
                name: cur.str_()?,
            },
            EDGE_ENDPOINTS => Request::EdgeEndpoints(cur.u64()?),
            EDGE_LABEL => Request::EdgeLabel(cur.u64()?),
            VERTEX_LABEL => Request::VertexLabel(cur.u64()?),
            DEGREE_SCAN => Request::DegreeScan {
                dir: get_direction(&mut cur)?,
                k: cur.u64()?,
                t: cur.u64()?,
            },
            DISTINCT_NEIGHBOR_SCAN => Request::DistinctNeighborScan {
                dir: get_direction(&mut cur)?,
                t: cur.u64()?,
            },
            CREATE_VERTEX_INDEX => Request::CreateVertexIndex { prop: cur.str_()? },
            HAS_VERTEX_INDEX => Request::HasVertexIndex { prop: cur.str_()? },
            SPACE => Request::Space,
            SYNC => Request::Sync,
            EXEC_BATCH => {
                let n = cur.list_len("batch entries")?;
                let mut reqs = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = cur.u32()? as usize;
                    let sub = cur.bytes(len, "batch entry")?;
                    // Reject nesting *before* recursing: a nested batch
                    // would make decode depth attacker-controlled, and a
                    // Hello mid-stream would re-run the handshake.
                    match sub.first() {
                        Some(&EXEC_BATCH) => {
                            return Err(GdbError::Corrupt("wire: nested ExecBatch entry".into()))
                        }
                        Some(&HELLO) => {
                            return Err(GdbError::Corrupt("wire: Hello inside ExecBatch".into()))
                        }
                        _ => {}
                    }
                    reqs.push(Request::decode(sub)?);
                }
                Request::ExecBatch(reqs)
            }
            EPOCH => Request::Epoch,
            TXN_BEGIN => Request::TxnBegin,
            TXN_COMMIT => Request::TxnCommit,
            TXN_ABORT => Request::TxnAbort,
            op => {
                return Err(GdbError::Corrupt(format!(
                    "wire: unknown request op {op:#x}"
                )))
            }
        };
        cur.finish()?;
        Ok(req)
    }
}

// ----- response codec ------------------------------------------------------

mod rsp_op {
    pub const HELLO_ACK: u8 = 0x80;
    pub const UNIT: u8 = 0x81;
    pub const BOOL: u8 = 0x82;
    pub const U64: u8 = 0x83;
    pub const OPT_U64: u8 = 0x84;
    pub const U64_LIST: u8 = 0x85;
    pub const STR_LIST: u8 = 0x86;
    pub const OPT_VALUE: u8 = 0x87;
    pub const OPT_STR: u8 = 0x88;
    pub const OPT_PAIR: u8 = 0x89;
    pub const EDGE_REFS: u8 = 0x8A;
    pub const OPT_VERTEX: u8 = 0x8B;
    pub const OPT_EDGE: u8 = 0x8C;
    pub const LOAD: u8 = 0x8D;
    pub const FEATURES: u8 = 0x8E;
    pub const SPACE: u8 = 0x8F;
    pub const EXEC_DONE: u8 = 0x90;
    pub const STATS: u8 = 0x91;
    pub const TRACES: u8 = 0x92;
    pub const BATCH_DONE: u8 = 0x93;
    pub const TXN_BEGUN: u8 = 0x94;
    pub const TXN_COMMITTED: u8 = 0x95;
    pub const TXN_ABORTED: u8 = 0x96;
    pub const ERR: u8 = 0xFF;
}

impl Response {
    /// Encode into a frame payload. Fails with a `FrameTooLarge` protocol
    /// error when any field cannot fit its u32 length prefix.
    pub fn encode(&self) -> GdbResult<Vec<u8>> {
        use rsp_op::*;
        let mut out = Vec::new();
        match self {
            Response::HelloAck {
                version,
                engine,
                shard,
            } => {
                wire::put_u8(&mut out, HELLO_ACK);
                wire::put_u16(&mut out, *version);
                wire::put_str(&mut out, engine)?;
                match shard {
                    None => wire::put_bool(&mut out, false),
                    Some((id, fleet)) => {
                        wire::put_bool(&mut out, true);
                        wire::put_u32(&mut out, *id);
                        wire::put_u32(&mut out, *fleet);
                    }
                }
            }
            Response::Unit => wire::put_u8(&mut out, UNIT),
            Response::Bool(b) => {
                wire::put_u8(&mut out, BOOL);
                wire::put_bool(&mut out, *b);
            }
            Response::U64(v) => {
                wire::put_u8(&mut out, U64);
                wire::put_u64(&mut out, *v);
            }
            Response::ExecDone {
                card,
                epoch,
                lock_wait,
                exec_nanos,
                pin_nanos,
                clone_nanos,
            } => {
                wire::put_u8(&mut out, EXEC_DONE);
                wire::put_u64(&mut out, *card);
                wire::put_u64(&mut out, *lock_wait);
                wire::put_u64(&mut out, *exec_nanos);
                wire::put_u64(&mut out, *pin_nanos);
                wire::put_u64(&mut out, *clone_nanos);
                match epoch {
                    None => wire::put_bool(&mut out, false),
                    Some(e) => {
                        wire::put_bool(&mut out, true);
                        wire::put_u64(&mut out, *e);
                    }
                }
            }
            Response::OptU64(v) => {
                wire::put_u8(&mut out, OPT_U64);
                match v {
                    None => wire::put_bool(&mut out, false),
                    Some(v) => {
                        wire::put_bool(&mut out, true);
                        wire::put_u64(&mut out, *v);
                    }
                }
            }
            Response::U64List(xs) => {
                wire::put_u8(&mut out, U64_LIST);
                put_u64_list(&mut out, xs);
            }
            Response::StrList(xs) => {
                wire::put_u8(&mut out, STR_LIST);
                put_str_list(&mut out, xs)?;
            }
            Response::OptValue(v) => {
                wire::put_u8(&mut out, OPT_VALUE);
                match v {
                    None => wire::put_bool(&mut out, false),
                    Some(v) => {
                        wire::put_bool(&mut out, true);
                        wire::put_value(&mut out, v);
                    }
                }
            }
            Response::OptStr(s) => {
                wire::put_u8(&mut out, OPT_STR);
                wire::put_opt_str(&mut out, s.as_deref())?;
            }
            Response::OptPair(p) => {
                wire::put_u8(&mut out, OPT_PAIR);
                match p {
                    None => wire::put_bool(&mut out, false),
                    Some((a, b)) => {
                        wire::put_bool(&mut out, true);
                        wire::put_u64(&mut out, *a);
                        wire::put_u64(&mut out, *b);
                    }
                }
            }
            Response::EdgeRefs(refs) => {
                wire::put_u8(&mut out, EDGE_REFS);
                wire::put_u32(&mut out, refs.len() as u32);
                for r in refs {
                    wire::put_u64(&mut out, r.eid.0);
                    wire::put_u64(&mut out, r.other.0);
                }
            }
            Response::OptVertex(v) => {
                wire::put_u8(&mut out, OPT_VERTEX);
                match v {
                    None => wire::put_bool(&mut out, false),
                    Some(v) => {
                        wire::put_bool(&mut out, true);
                        wire::put_u64(&mut out, v.id.0);
                        wire::put_str(&mut out, &v.label)?;
                        wire::put_props(&mut out, &v.props)?;
                    }
                }
            }
            Response::OptEdge(e) => {
                wire::put_u8(&mut out, OPT_EDGE);
                match e {
                    None => wire::put_bool(&mut out, false),
                    Some(e) => {
                        wire::put_bool(&mut out, true);
                        wire::put_u64(&mut out, e.id.0);
                        wire::put_u64(&mut out, e.src.0);
                        wire::put_u64(&mut out, e.dst.0);
                        wire::put_str(&mut out, &e.label)?;
                        wire::put_props(&mut out, &e.props)?;
                    }
                }
            }
            Response::Load(stats) => {
                wire::put_u8(&mut out, LOAD);
                wire::put_u64(&mut out, stats.vertices);
                wire::put_u64(&mut out, stats.edges);
            }
            Response::Features(f) => {
                wire::put_u8(&mut out, FEATURES);
                wire::put_str(&mut out, &f.name)?;
                wire::put_str(&mut out, &f.system_type)?;
                wire::put_str(&mut out, &f.storage)?;
                wire::put_str(&mut out, &f.edge_traversal)?;
                wire::put_bool(&mut out, f.optimized_adapter);
                wire::put_bool(&mut out, f.async_writes);
                wire::put_bool(&mut out, f.attribute_indexes);
            }
            Response::Space(report) => {
                wire::put_u8(&mut out, SPACE);
                wire::put_u32(&mut out, report.components.len() as u32);
                for (name, bytes) in &report.components {
                    wire::put_str(&mut out, name)?;
                    wire::put_u64(&mut out, *bytes);
                }
            }
            Response::Stats(s) => {
                wire::put_u8(&mut out, STATS);
                put_stats(&mut out, s)?;
            }
            Response::Traces(rs) => {
                wire::put_u8(&mut out, TRACES);
                wire::put_u32(&mut out, rs.len() as u32);
                for r in rs {
                    put_trace_record(&mut out, r);
                }
            }
            Response::BatchDone(rsps) => {
                wire::put_u8(&mut out, BATCH_DONE);
                wire::put_u32(&mut out, rsps.len() as u32);
                for r in rsps {
                    let sub = r.encode()?;
                    let len = u32::try_from(sub.len())
                        .map_err(|_| wire::frame_too_large("batch response", sub.len()))?;
                    wire::put_u32(&mut out, len);
                    out.extend_from_slice(&sub);
                }
            }
            Response::TxnBegun { epoch } => {
                wire::put_u8(&mut out, TXN_BEGUN);
                wire::put_u64(&mut out, *epoch);
            }
            Response::TxnCommitted { ops, epoch } => {
                wire::put_u8(&mut out, TXN_COMMITTED);
                wire::put_u64(&mut out, *ops);
                wire::put_u64(&mut out, *epoch);
            }
            Response::TxnAborted { ops } => {
                wire::put_u8(&mut out, TXN_ABORTED);
                wire::put_u64(&mut out, *ops);
            }
            Response::Err(e) => {
                wire::put_u8(&mut out, ERR);
                wire::put_error(&mut out, e)?;
            }
        }
        Ok(out)
    }

    /// Decode a frame payload.
    pub fn decode(buf: &[u8]) -> GdbResult<Response> {
        use gm_model::{Eid, Vid};
        use rsp_op::*;
        let mut cur = Cur::new(buf);
        let rsp = match cur.u8()? {
            HELLO_ACK => Response::HelloAck {
                version: cur.u16()?,
                engine: cur.str_()?,
                shard: if cur.bool_()? {
                    Some((cur.u32()?, cur.u32()?))
                } else {
                    None
                },
            },
            UNIT => Response::Unit,
            BOOL => Response::Bool(cur.bool_()?),
            U64 => Response::U64(cur.u64()?),
            EXEC_DONE => Response::ExecDone {
                card: cur.u64()?,
                lock_wait: cur.u64()?,
                exec_nanos: cur.u64()?,
                pin_nanos: cur.u64()?,
                clone_nanos: cur.u64()?,
                epoch: if cur.bool_()? { Some(cur.u64()?) } else { None },
            },
            OPT_U64 => Response::OptU64(if cur.bool_()? { Some(cur.u64()?) } else { None }),
            U64_LIST => Response::U64List(get_u64_list(&mut cur)?),
            STR_LIST => Response::StrList(get_str_list(&mut cur)?),
            OPT_VALUE => Response::OptValue(if cur.bool_()? {
                Some(cur.value()?)
            } else {
                None
            }),
            OPT_STR => Response::OptStr(cur.opt_str()?),
            OPT_PAIR => Response::OptPair(if cur.bool_()? {
                Some((cur.u64()?, cur.u64()?))
            } else {
                None
            }),
            EDGE_REFS => {
                let n = cur.list_len("edge refs")?;
                let mut refs = Vec::with_capacity(n);
                for _ in 0..n {
                    refs.push(EdgeRef {
                        eid: Eid(cur.u64()?),
                        other: Vid(cur.u64()?),
                    });
                }
                Response::EdgeRefs(refs)
            }
            OPT_VERTEX => Response::OptVertex(if cur.bool_()? {
                Some(VertexData {
                    id: Vid(cur.u64()?),
                    label: cur.str_()?,
                    props: cur.props()?,
                })
            } else {
                None
            }),
            OPT_EDGE => Response::OptEdge(if cur.bool_()? {
                Some(EdgeData {
                    id: Eid(cur.u64()?),
                    src: Vid(cur.u64()?),
                    dst: Vid(cur.u64()?),
                    label: cur.str_()?,
                    props: cur.props()?,
                })
            } else {
                None
            }),
            LOAD => Response::Load(LoadStats {
                vertices: cur.u64()?,
                edges: cur.u64()?,
            }),
            FEATURES => Response::Features(EngineFeatures {
                name: cur.str_()?,
                system_type: cur.str_()?,
                storage: cur.str_()?,
                edge_traversal: cur.str_()?,
                optimized_adapter: cur.bool_()?,
                async_writes: cur.bool_()?,
                attribute_indexes: cur.bool_()?,
            }),
            SPACE => {
                let n = cur.list_len("space components")?;
                let mut report = SpaceReport::default();
                for _ in 0..n {
                    let name = cur.str_()?;
                    let bytes = cur.u64()?;
                    report.add(name, bytes);
                }
                Response::Space(report)
            }
            STATS => Response::Stats(get_stats(&mut cur)?),
            TRACES => {
                let n = cur.list_len("trace records")?;
                let mut rs = Vec::with_capacity(n);
                for _ in 0..n {
                    rs.push(get_trace_record(&mut cur)?);
                }
                Response::Traces(rs)
            }
            BATCH_DONE => {
                let n = cur.list_len("batch responses")?;
                let mut rsps = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = cur.u32()? as usize;
                    let sub = cur.bytes(len, "batch response")?;
                    // Same nesting bound as the request side.
                    if sub.first() == Some(&BATCH_DONE) {
                        return Err(GdbError::Corrupt("wire: nested BatchDone entry".into()));
                    }
                    rsps.push(Response::decode(sub)?);
                }
                Response::BatchDone(rsps)
            }
            TXN_BEGUN => Response::TxnBegun { epoch: cur.u64()? },
            TXN_COMMITTED => Response::TxnCommitted {
                ops: cur.u64()?,
                epoch: cur.u64()?,
            },
            TXN_ABORTED => Response::TxnAborted { ops: cur.u64()? },
            ERR => Response::Err(wire::get_error(&mut cur)?),
            op => {
                return Err(GdbError::Corrupt(format!(
                    "wire: unknown response op {op:#x}"
                )))
            }
        };
        cur.finish()?;
        Ok(rsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_model::testkit;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Hello {
                magic: MAGIC,
                version: PROTO_VERSION,
            },
            Request::Reset,
            Request::Prepare {
                seed: 42,
                slots: 16,
            },
            Request::ExecOp {
                worker: 3,
                op_index: 99,
                trace_id: 0xDEAD_BEEF_CAFE_0001,
                timeout_micros: 5_000_000,
                strict: false,
                op: Op::Read(QueryInstance {
                    id: QueryId::Q32,
                    depth: Some(3),
                    k: None,
                }),
            },
            Request::ExecOp {
                worker: 0,
                op_index: 0,
                trace_id: 0,
                timeout_micros: 0,
                strict: true,
                op: Op::Write(WriteOp::RemoveOwnEdge),
            },
            Request::Neighbors {
                v: 7,
                dir: Direction::Both,
                label: Some("knows".into()),
                t: 123,
            },
            Request::DegreeScan {
                dir: Direction::In,
                k: 4,
                t: 0,
            },
            Request::VerticesWithProperty {
                name: "name".into(),
                value: Value::Str("ann".into()),
                t: 1,
            },
            Request::Space,
            Request::Sync,
            Request::GetStats,
            Request::GetTraces,
            Request::Epoch,
            Request::TxnBegin,
            Request::TxnCommit,
            Request::TxnAbort,
            Request::ExecBatch(vec![]),
            Request::ExecBatch(vec![
                Request::AddVertex {
                    label: "wl_vertex".into(),
                    props: vec![("wl_worker".into(), Value::Int(2))],
                },
                Request::AddEdge {
                    src: 11,
                    dst: 42,
                    label: "wl_edge".into(),
                    props: vec![],
                },
                Request::RemoveEdge(9),
                Request::Epoch,
            ]),
        ];
        for req in reqs {
            let bytes = req.encode().unwrap();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn dataset_ships_whole() {
        let data = testkit::chain_dataset(40);
        let req = Request::BulkLoad {
            opts: LoadOptions::default(),
            data: data.clone(),
        };
        let bytes = req.encode().unwrap();
        match Request::decode(&bytes).unwrap() {
            Request::BulkLoad { data: back, .. } => {
                assert_eq!(back.name, data.name);
                assert_eq!(back.vertices, data.vertices);
                assert_eq!(back.edges, data.edges);
            }
            other => panic!("wrong request decoded: {other:?}"),
        }
    }

    #[test]
    fn response_round_trips() {
        use gm_model::{Eid, Vid};
        let rsps = vec![
            Response::HelloAck {
                version: PROTO_VERSION,
                engine: "linked(v2)".into(),
                shard: None,
            },
            Response::HelloAck {
                version: PROTO_VERSION,
                engine: "triple".into(),
                shard: Some((2, 4)),
            },
            Response::BatchDone(vec![]),
            Response::BatchDone(vec![
                Response::U64(1),
                Response::Err(GdbError::VertexNotFound(7)),
                Response::Unit,
            ]),
            Response::Unit,
            Response::Bool(true),
            Response::U64(7),
            Response::ExecDone {
                card: 12,
                epoch: Some(9),
                lock_wait: 1_250,
                exec_nanos: 48_000,
                pin_nanos: 700,
                clone_nanos: 3_000,
            },
            Response::ExecDone {
                card: 0,
                epoch: None,
                lock_wait: 0,
                exec_nanos: 0,
                pin_nanos: 0,
                clone_nanos: 0,
            },
            Response::OptU64(None),
            Response::OptU64(Some(3)),
            Response::U64List(vec![1, 2, 3]),
            Response::StrList(vec!["a".into(), "b".into()]),
            Response::OptValue(Some(Value::Float(1.5))),
            Response::OptStr(Some("knows".into())),
            Response::OptPair(Some((4, 5))),
            Response::EdgeRefs(vec![EdgeRef {
                eid: Eid(1),
                other: Vid(2),
            }]),
            Response::OptVertex(Some(VertexData {
                id: Vid(9),
                label: "person".into(),
                props: vec![("name".into(), Value::Str("ann".into()))],
            })),
            Response::OptEdge(Some(EdgeData {
                id: Eid(1),
                src: Vid(2),
                dst: Vid(3),
                label: "knows".into(),
                props: vec![],
            })),
            Response::Load(LoadStats {
                vertices: 10,
                edges: 20,
            }),
            Response::Space({
                let mut r = SpaceReport::default();
                r.add("node records", 4096);
                r
            }),
            Response::Stats(RegistrySnapshot::default()),
            Response::Traces(vec![]),
            Response::Traces(vec![
                TraceRecord {
                    id: 0x0123_4567_89AB_CDEF,
                    worker: 5,
                    op_index: 1_000,
                    op_code: 23,
                    start_us: 987_654,
                    total_nanos: 1_234_567,
                    phases: {
                        let mut p = PhaseNanos::zero();
                        p.set(gm_obs::Phase::EngineExec, 900_000);
                        p.set(gm_obs::Phase::WireIo, 300_000);
                        p
                    },
                    origin: TraceOrigin::Client,
                    tail: true,
                },
                TraceRecord {
                    id: 1,
                    worker: 0,
                    op_index: 0,
                    op_code: 201,
                    start_us: 0,
                    total_nanos: u64::MAX,
                    phases: PhaseNanos::zero(),
                    origin: TraceOrigin::Server,
                    tail: false,
                },
            ]),
            Response::Stats({
                let r = gm_obs::Registry::new();
                r.counter("net.ops").add(41);
                r.counter("shard.0.ops").add(7);
                r.gauge("mvcc.cow.epoch").set(12);
                r.gauge("negative").set(-9);
                let h = r.histogram("op_nanos");
                h.record(0);
                h.record(1_000);
                h.record(u64::MAX);
                r.snapshot()
            }),
            Response::TxnBegun { epoch: 42 },
            Response::TxnCommitted { ops: 9, epoch: 43 },
            Response::TxnAborted { ops: 3 },
            Response::Err(GdbError::TxnConflict("vertex v7".into())),
            Response::Err(GdbError::Poisoned("writer panicked".into())),
        ];
        for rsp in rsps {
            let bytes = rsp.encode().unwrap();
            assert_eq!(Response::decode(&bytes).unwrap(), rsp, "{rsp:?}");
        }
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert!(matches!(
            Request::decode(&[0x7F]),
            Err(GdbError::Corrupt(_))
        ));
        assert!(matches!(
            Response::decode(&[0x00]),
            Err(GdbError::Corrupt(_))
        ));
        assert!(matches!(Request::decode(&[]), Err(GdbError::Corrupt(_))));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::Reset.encode().unwrap();
        bytes.push(0xAB);
        assert!(matches!(Request::decode(&bytes), Err(GdbError::Corrupt(_))));
    }

    #[test]
    fn mutation_query_number_decodes_but_is_flagged() {
        // Encoding a mutating QueryInstance inside Op::Read is representable
        // on the wire; the *server* rejects it (catalog::execute_read would
        // panic). Make sure decode itself stays total.
        let req = Request::ExecOp {
            worker: 0,
            op_index: 0,
            trace_id: 0,
            timeout_micros: 0,
            strict: false,
            op: Op::Read(QueryInstance::plain(QueryId::Q2)),
        };
        let back = Request::decode(&req.encode().unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn bad_query_number_rejected() {
        let mut bytes = Request::ExecOp {
            worker: 0,
            op_index: 0,
            trace_id: 0,
            timeout_micros: 0,
            strict: false,
            op: Op::Read(QueryInstance::plain(QueryId::Q8)),
        }
        .encode()
        .unwrap();
        // Patch the query number
        // (offset: op(1)+worker(4)+op_index(8)+trace(8)+t(8)+strict(1)+tag(1)).
        bytes[31] = 99;
        assert!(matches!(Request::decode(&bytes), Err(GdbError::Corrupt(_))));
    }

    #[test]
    fn corrupt_trace_records_rejected() {
        let rsp = Response::Traces(vec![TraceRecord {
            id: 7,
            worker: 1,
            op_index: 2,
            op_code: 8,
            start_us: 3,
            total_nanos: 4,
            phases: PhaseNanos::zero(),
            origin: TraceOrigin::Client,
            tail: false,
        }]);
        let good = rsp.encode().unwrap();
        assert_eq!(Response::decode(&good).unwrap(), rsp);
        // Patch the phase count (offset: op(1)+len(4)+id(8)+worker(4)+
        // op_index(8)+op_code(2)+start(8)+total(8)).
        let mut bad = good.clone();
        bad[43] = PHASES as u8 + 1;
        assert!(matches!(Response::decode(&bad), Err(GdbError::Corrupt(_))));
        // Patch the origin byte (phase count + PHASES u64s later).
        let mut bad = good.clone();
        bad[44 + PHASES * 8] = 9;
        assert!(matches!(Response::decode(&bad), Err(GdbError::Corrupt(_))));
    }

    #[test]
    fn response_kind_names_cover_mismatch_diagnostics() {
        assert_eq!(Response::Unit.kind(), "Unit");
        assert_eq!(Response::Err(GdbError::Timeout).kind(), "Err");
        assert_eq!(Response::BatchDone(vec![]).kind(), "BatchDone");
    }

    #[test]
    fn nested_batches_rejected() {
        // A batch inside a batch is representable by hand-crafting bytes but
        // must be refused: decode recursion depth stays at one.
        let inner = Request::ExecBatch(vec![Request::Reset]).encode().unwrap();
        let mut bytes = vec![0x08];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&(inner.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&inner);
        assert!(matches!(Request::decode(&bytes), Err(GdbError::Corrupt(_))));

        let hello = Request::Hello {
            magic: MAGIC,
            version: PROTO_VERSION,
        }
        .encode()
        .unwrap();
        let mut bytes = vec![0x08];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&(hello.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&hello);
        assert!(matches!(Request::decode(&bytes), Err(GdbError::Corrupt(_))));

        let inner = Response::BatchDone(vec![Response::Unit]).encode().unwrap();
        let mut bytes = vec![0x93];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&(inner.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&inner);
        assert!(matches!(
            Response::decode(&bytes),
            Err(GdbError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_batch_rejected() {
        let bytes = Request::ExecBatch(vec![Request::Reset, Request::Sync])
            .encode()
            .unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Request::decode(&bytes[..cut]).is_err(),
                "prefix of len {cut} accepted"
            );
        }
    }
}
