//! Property tests for the gm-trace flight recorder: the seqlock ring never
//! surfaces a torn record (single-threaded wraparound *and* concurrent
//! writers against a live reader), the tail gate always retains a clear
//! outlier, and `GM_TRACE=off` derives no ids and records nothing.
//!
//! The off-mode and determinism tests flip the process-global trace mode,
//! so they serialize on one mutex and restore the previous mode on exit
//! (drop guard — a panicking case must not poison the other tests).

use std::sync::{Mutex, MutexGuard};

use gm_obs::trace::{self, mix_id, TailGate, TraceMode, TraceOrigin, TraceRecord, TraceRing};
use gm_obs::PhaseNanos;
use proptest::prelude::*;

/// Serializes every test that touches the process-global trace mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

struct ModeGuard {
    _lock: MutexGuard<'static, ()>,
    prev: TraceMode,
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        trace::set_mode(self.prev);
    }
}

fn hold_mode(mode: TraceMode) -> ModeGuard {
    let lock = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = trace::mode();
    trace::set_mode(mode);
    ModeGuard { _lock: lock, prev }
}

/// A record whose every field is a pure function of `k`, so a reader can
/// prove from any *one* field that the others were written by the same
/// push — the only way a seqlock tear could surface.
fn rec(k: u64) -> TraceRecord {
    let id = mix_id(0xFEED, 0, k);
    TraceRecord {
        id,
        worker: (k % 0xFFFF) as u32,
        op_index: k,
        op_code: (k % 40) as u16,
        start_us: k.wrapping_mul(3),
        total_nanos: id ^ 0xDEAD_BEEF,
        phases: PhaseNanos::zero(),
        origin: if k.is_multiple_of(2) {
            TraceOrigin::Client
        } else {
            TraceOrigin::Server
        },
        tail: k.is_multiple_of(3),
    }
}

/// Panic unless `r` is internally consistent with the [`rec`] scheme.
fn assert_untorn(r: &TraceRecord) {
    let k = r.op_index;
    let want = rec(k);
    assert_eq!(r.id, want.id, "id of op {k} disagrees with its op_index");
    assert_eq!(r.worker, want.worker, "worker torn for op {k}");
    assert_eq!(r.op_code, want.op_code, "op_code torn for op {k}");
    assert_eq!(r.start_us, want.start_us, "start_us torn for op {k}");
    assert_eq!(
        r.total_nanos, want.total_nanos,
        "total_nanos torn for op {k}"
    );
    assert_eq!(r.origin, want.origin, "origin torn for op {k}");
    assert_eq!(r.tail, want.tail, "tail flag torn for op {k}");
}

proptest! {
    /// Sequential pushes across arbitrary wraparound: the snapshot holds
    /// exactly the newest `min(count, cap)` records, each untorn.
    #[test]
    fn wraparound_keeps_the_newest_records_untorn(
        cap in 16usize..64,
        count in 0u64..300,
    ) {
        let ring = TraceRing::new(cap);
        for k in 0..count {
            prop_assert!(ring.push(&rec(k)), "uncontended push must land");
        }
        let snap = ring.snapshot();
        let kept = count.min(cap as u64);
        prop_assert_eq!(snap.len() as u64, kept);
        for r in &snap {
            assert_untorn(r);
            prop_assert!(
                r.op_index >= count - kept,
                "op {} survived past its generation (count {count}, cap {cap})",
                r.op_index
            );
        }
        // Every surviving id is retrievable — the exemplar contract.
        for k in (count - kept)..count {
            prop_assert!(ring.find(rec(k).id).is_some());
        }
    }

    /// An op slower than twice everything seen before it always qualifies
    /// as tail: the gate's threshold provably stays under `2·max + 2`.
    #[test]
    fn a_clear_outlier_is_always_tail(samples in prop::collection::vec(any::<u32>(), 1..200)) {
        let gate = TailGate::new();
        let mut max_seen: u64 = 0;
        for (i, &s) in samples.iter().enumerate() {
            let v = s as u64;
            let tail = gate.observe(v);
            if i == 0 || v > 2 * max_seen + 2 {
                prop_assert!(
                    tail,
                    "sample {i} = {v} (> 2·{max_seen}+2, threshold {}) must be tail",
                    gate.threshold()
                );
            }
            max_seen = max_seen.max(v);
        }
    }

    /// `GM_TRACE=off` is inert end to end: no ids derived, `record_op`
    /// refuses every record, the global ring does not grow.
    #[test]
    fn off_mode_derives_no_ids_and_records_nothing(
        seed in any::<u64>(),
        worker in any::<u32>(),
        op_index in any::<u64>(),
        nanos in any::<u64>(),
    ) {
        let _mode = hold_mode(TraceMode::Off);
        prop_assert_eq!(trace::derive_id(seed, worker, op_index), 0);
        let before = trace::global_ring().pushed();
        let gate = TailGate::new();
        let recorded = trace::record_op(
            &gate,
            mix_id(seed, worker, op_index),
            worker,
            op_index,
            1,
            TraceOrigin::Client,
            nanos,
            PhaseNanos::zero(),
        );
        prop_assert!(!recorded, "off mode must not record");
        prop_assert_eq!(trace::global_ring().pushed(), before, "ring grew in off mode");
    }

    /// In tail mode ids are nonzero, deterministic, and replay-stable:
    /// the same (seed, worker, op_index) always derives the same id.
    #[test]
    fn tail_mode_ids_are_deterministic_and_nonzero(
        seed in any::<u64>(),
        worker in any::<u32>(),
        op_index in any::<u64>(),
    ) {
        let _mode = hold_mode(TraceMode::Tail);
        let id = trace::derive_id(seed, worker, op_index);
        prop_assert_ne!(id, 0);
        prop_assert_eq!(id, trace::derive_id(seed, worker, op_index));
        prop_assert_eq!(id, mix_id(seed, worker, op_index));
    }
}

/// Concurrent writers racing a live snapshotting reader across heavy
/// wraparound: every record any snapshot ever surfaces is untorn. (Plain
/// test, not proptest — the schedule is the randomness that matters.)
#[test]
fn concurrent_writers_never_surface_a_torn_record() {
    let ring = TraceRing::new(32);
    let writers = 4u64;
    let pushes_per_writer = 5_000u64;
    std::thread::scope(|s| {
        for w in 0..writers {
            let ring = &ring;
            s.spawn(move || {
                // Disjoint key ranges per writer; collisions under
                // wraparound may *drop* records, never tear them.
                for k in (w * pushes_per_writer)..((w + 1) * pushes_per_writer) {
                    ring.push(&rec(k));
                }
            });
        }
        let ring = &ring;
        s.spawn(move || {
            for _ in 0..2_000 {
                for r in ring.snapshot() {
                    assert_untorn(&r);
                }
            }
        });
    });
    // Quiescent: a final snapshot is fully populated and untorn.
    let snap = ring.snapshot();
    assert!(!snap.is_empty());
    for r in &snap {
        assert_untorn(r);
    }
}
