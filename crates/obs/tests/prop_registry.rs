//! Property tests for the registry's two structural claims:
//!
//! 1. **Snapshot merge is associative and commutative** — fleets and
//!    per-shard registries can be folded in any grouping/order and report
//!    the same totals.
//! 2. **Concurrent increments never lose counts** — N threads hammering
//!    the same counter/histogram handles account for every update.

use gm_obs::{Registry, RegistrySnapshot};
use proptest::prelude::*;

/// One randomly-populated registry snapshot: a few counters, gauges, and
/// histogram observations drawn from a tiny name pool so merges collide.
fn arb_snapshot() -> impl Strategy<Value = RegistrySnapshot> {
    fn name() -> impl Strategy<Value = &'static str> {
        prop_oneof![
            Just("ops"),
            Just("errors"),
            Just("shard0.ops"),
            Just("shard1.ops"),
            Just("epoch_lag"),
        ]
    }
    let counters = prop::collection::vec((name(), 0u64..1_000_000), 0..6);
    let gauges = prop::collection::vec((name(), -1_000i64..1_000), 0..4);
    let hist_obs = prop::collection::vec(
        (name(), prop::collection::vec(0u64..1u64 << 40, 0..12)),
        0..3,
    );
    (counters, gauges, hist_obs).prop_map(|(cs, gs, hs)| {
        let r = Registry::new();
        for (n, v) in cs {
            r.counter(n).add(v);
        }
        for (n, v) in gs {
            r.gauge(n).add(v);
        }
        for (n, obs) in hs {
            let h = r.histogram(n);
            for v in obs {
                h.record(v);
            }
        }
        r.snapshot()
    })
}

fn merged(parts: &[&RegistrySnapshot]) -> RegistrySnapshot {
    let mut out = RegistrySnapshot::default();
    for p in parts {
        out.merge(p);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Every permutation agrees.
        prop_assert_eq!(&left, &merged(&[&c, &a, &b]));
        prop_assert_eq!(&left, &merged(&[&b, &c, &a]));
        // Identity.
        let mut with_zero = left.clone();
        with_zero.merge(&RegistrySnapshot::default());
        prop_assert_eq!(&left, &with_zero);
    }

    #[test]
    fn concurrent_increments_never_lose_counts(
        per_thread in prop::collection::vec(1u64..2_000, 2..5),
    ) {
        let r = std::sync::Arc::new(Registry::new());
        let expected: u64 = per_thread.iter().sum();
        let threads: Vec<_> = per_thread
            .iter()
            .map(|&n| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram("lat");
                    for i in 0..n {
                        c.inc();
                        h.record(i % 1024);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = r.snapshot();
        prop_assert_eq!(s.counter("hits"), expected);
        let h = s.hist("lat").unwrap();
        prop_assert_eq!(h.count, expected);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), expected);
    }
}
