//! Atomic log2 histograms and their plain-data snapshots.
//!
//! Bucketing is identical to `gm_workload::LatencyHistogram` (bucket *i*
//! for `i >= 1` holds `[2^i, 2^(i+1))`, bucket 0 spans `[0, 2)`), so a
//! registry histogram and a driver histogram of the same signal agree
//! bucket-for-bucket. The difference is the write side: registry
//! histograms are recorded into by many threads at once, so every field is
//! an atomic updated with relaxed ordering — recording is lock-free and a
//! concurrent [`snapshot`](AtomicHistogram::snapshot) may be torn *across*
//! fields (count vs sum) but never within one, which is the usual and
//! acceptable contract for monitoring data.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of power-of-two buckets (covers all of `u64`).
pub const BUCKETS: usize = 64;

/// Bucket index for a value (same rule as the workload histogram).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    63 - v.max(1).leading_zeros() as usize
}

/// Inclusive lower bound of bucket `i`: 0 for bucket 0 (it spans `[0, 2)`),
/// `2^i` otherwise.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Width of bucket `i`: 2 for bucket 0, `2^i` otherwise.
pub fn bucket_width(i: usize) -> u64 {
    if i == 0 {
        2
    } else {
        1u64 << i
    }
}

/// A log2 histogram whose every field is atomic: record from any thread,
/// snapshot from any thread, no locks anywhere.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (relaxed atomics; sum saturates).
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // fetch_add would wrap; monitoring sums must saturate like the
        // driver histogram's. A rare lost race under-counts the sum by one
        // observation, which monitoring tolerates.
        let _ = self
            .sum
            .fetch_update(Relaxed, Relaxed, |s| Some(s.saturating_add(v)));
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Copy the current contents into a plain-data snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Relaxed)),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Reset every field to the empty state (used between stats intervals).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// A plain-data histogram: what snapshots, merges, and crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (index = log2 bucket).
    pub counts: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Fold another snapshot into this one (pure addition: associative and
    /// commutative, the property the registry merge tests pin down).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Smallest observation (0 when empty).
    pub fn min_observed(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`, interpolated inside the hit
    /// bucket and clamped to the observed extrema — the same estimator as
    /// the workload histogram's.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let into = (target - seen - 1) as f64 / c as f64;
                let est = bucket_floor(i) as f64 + into * bucket_width(i) as f64;
                return (est as u64).clamp(self.min_observed(), self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_matches_workload_rule() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i);
        }
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_width(0), 2);
        assert_eq!(bucket_width(10), 1024);
    }

    #[test]
    fn record_snapshot_reset() {
        let h = AtomicHistogram::new();
        for v in [10u64, 20, 30, 4000, 5_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5_004_060);
        assert_eq!(s.min_observed(), 10);
        assert_eq!(s.max, 5_000_000);
        assert_eq!(s.mean(), 1_000_812);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s, HistSnapshot::default());
        assert_eq!(s.min_observed(), 0);
    }

    #[test]
    fn quantiles_ordered_and_clamped() {
        let h = AtomicHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.quantile(0.95));
        assert!(s.quantile(0.95) <= s.p99());
        assert!(s.p99() <= s.max);
        assert_eq!(s.quantile(0.0), s.min_observed());
        assert_eq!(s.quantile(1.0), s.max);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        let all = AtomicHistogram::new();
        for i in 0..500u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa, all.snapshot());
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
        assert_eq!(h.snapshot().counts.iter().sum::<u64>(), 40_000);
    }
}
