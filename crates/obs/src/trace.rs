//! gm-trace: deterministic per-op trace ids and a tail-biased flight
//! recorder.
//!
//! Aggregate phase histograms answer *where the run's time went*; they
//! cannot answer *which op was slow and where its time went* — the question
//! every tail-latency investigation starts with. This module closes that
//! gap with three pieces:
//!
//! * **Deterministic trace ids** — [`derive_id`] mixes (seed, worker,
//!   op index) through a splitmix64-style finalizer, so the same replay
//!   produces bit-identical ids and a trace id printed by one run can be
//!   looked up in the next. Id 0 is reserved for "not traced". The id
//!   travels with the op: the driver stamps it into the thread-local
//!   [`begin_op`] slot, the net client copies [`current`] into the `ExecOp`
//!   frame, and the server adopts the *client's* id — one id names one op
//!   across both processes.
//! * **A fixed-capacity lock-free ring** ([`TraceRing`]) — the flight
//!   recorder. Writers claim a slot by ticket and publish through a per-slot
//!   seqlock generation (odd = write in progress), so concurrent writers
//!   across wraparound can collide (the loser's record is dropped) but a
//!   reader can never observe a torn record: [`TraceRing::snapshot`]
//!   re-validates the generation after copying and discards mid-write
//!   slots.
//! * **Tail-biased retention** ([`TailGate`]) — ops slower than a moving
//!   threshold are always kept; the threshold self-adjusts (+1/16 on a tail
//!   hit, −1/256 otherwise) toward an ~6% keep rate, so p99 ops reliably
//!   land in the recorder no matter how the latency regime drifts. In
//!   `tail` mode the non-tail remainder is head-sampled 1-in-128 by the
//!   trace id's low bits — deterministic, RNG-free. `all` keeps everything;
//!   `off` records nothing.
//!
//! ## The `off` guarantee
//!
//! Mirroring `GM_OBS=off`: with [`TraceMode::Off`] every probe on the op
//! path folds to one relaxed load and a branch — [`derive_id`] returns 0
//! without mixing, [`record_op`] returns before reading any clock, and the
//! global ring is never even allocated. The regression test in
//! `tests/prop_trace.rs` and the `trace_smoke` CI gate both pin this down.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{fence, AtomicU64, AtomicU8, AtomicUsize};
use std::sync::OnceLock;
use std::time::Instant;

use crate::phase::{Phase, PhaseNanos, PHASES};

/// How much the trace layer records (the `GM_TRACE` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceMode {
    /// No ids, no records, no clock reads.
    Off = 0,
    /// Always-on flight recorder: tail ops always kept, the rest
    /// head-sampled 1-in-128 (the default).
    Tail = 1,
    /// Every completed op is recorded (subject to ring capacity).
    All = 2,
}

impl TraceMode {
    /// Knob spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Tail => "tail",
            TraceMode::All => "all",
        }
    }

    /// Parse a knob value (`off` / `tail` / `all`).
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(TraceMode::Off),
            "tail" | "on" => Some(TraceMode::Tail),
            "all" | "full" => Some(TraceMode::All),
            _ => None,
        }
    }
}

/// The process-wide trace mode. `tail` by default: the flight recorder is
/// always on, and `GM_TRACE=off` recovers the bare path.
static MODE: AtomicU8 = AtomicU8::new(TraceMode::Tail as u8);

/// Set the process-wide trace mode (idempotent, any thread).
pub fn set_mode(mode: TraceMode) {
    MODE.store(mode as u8, Relaxed);
}

/// The current process-wide trace mode.
pub fn mode() -> TraceMode {
    match MODE.load(Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Tail,
        _ => TraceMode::All,
    }
}

/// Is any tracing live? One relaxed load — the whole off-path cost.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Relaxed) != TraceMode::Off as u8
}

/// The process-start instant every monotonic stamp in this crate is
/// relative to (trace `start_us`, the registry snapshot's `captured_at_us`).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first call in this process — the shared monotonic
/// origin for trace timestamps and stats-snapshot stamps. Two readings diff
/// into a true interval (monotonic clock, no wall-time steps).
pub fn uptime_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// The splitmix64-style mixer behind [`derive_id`], exposed separately so
/// tests (and tools resolving a printed id back to its op) can compute ids
/// without consulting the mode. Never returns 0 (reserved for "no trace").
#[inline]
pub fn mix_id(seed: u64, worker: u32, op_index: u64) -> u64 {
    let mut z = seed
        ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ op_index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// The deterministic trace id for one driver op, or 0 when tracing is off
/// (the off-path: one relaxed load, no mixing).
#[inline]
pub fn derive_id(seed: u64, worker: u32, op_index: u64) -> u64 {
    if !enabled() {
        return 0;
    }
    mix_id(seed, worker, op_index)
}

thread_local! {
    /// The trace id of the op currently executing on this thread (0 = none).
    static CURRENT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Mark `id` as the trace id of the op now executing on this thread. The
/// net client reads it back with [`current`] to stamp outgoing `ExecOp`
/// frames; the server calls this with the *client's* id so both processes
/// record under one name.
#[inline]
pub fn begin_op(id: u64) {
    CURRENT.with(|c| c.set(id));
}

/// The trace id of the op currently executing on this thread (0 = none).
#[inline]
pub fn current() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Which process recorded a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceOrigin {
    /// The driver/client side: end-to-end latency, wire phases, and the
    /// server-reported phases stitched in from `ExecDone`.
    Client = 0,
    /// The server side: the op's phase tree as the server measured it.
    Server = 1,
}

impl TraceOrigin {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            TraceOrigin::Client => "client",
            TraceOrigin::Server => "server",
        }
    }

    fn from_u8(b: u8) -> TraceOrigin {
        if b == 1 {
            TraceOrigin::Server
        } else {
            TraceOrigin::Client
        }
    }
}

/// One captured op: a fixed-size, heap-free record (`Copy`, 11 machine
/// words) so recording never allocates on the op path.
///
/// `op_code` is a compact display code chosen by the recorder — the
/// workload driver uses the paper's query number for reads and `200 +
/// write-op index` for CUD writes ([`op_code_label`] renders both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Deterministic trace id ([`derive_id`]); never 0 in a stored record.
    pub id: u64,
    /// Worker (client) index that issued the op.
    pub worker: u32,
    /// Position in that worker's deterministic op sequence.
    pub op_index: u64,
    /// Compact op display code (see type docs).
    pub op_code: u16,
    /// Process-uptime microseconds at op start ([`uptime_us`] origin) —
    /// the `ts` of the Chrome `trace_event` render.
    pub start_us: u64,
    /// End-to-end latency of the op in nanoseconds.
    pub total_nanos: u64,
    /// Per-phase self-time split (sums to at most `total_nanos` on the
    /// recording side; a stitched client record folds the server-reported
    /// phases in).
    pub phases: PhaseNanos,
    /// Which process recorded this.
    pub origin: TraceOrigin,
    /// Kept because it crossed the moving tail threshold (as opposed to
    /// head-sampling or `all` mode).
    pub tail: bool,
}

/// Render an `op_code` under the driver's convention: `Q{n}` for the
/// paper's read queries, `W{i}` for CUD writes, `-` for 0/unknown.
pub fn op_code_label(code: u16) -> String {
    match code {
        0 => "-".into(),
        c if c >= 200 => format!("W{}", c - 200),
        c => format!("Q{c}"),
    }
}

/// Words per packed record: id, packed meta, op_index, start_us,
/// total_nanos, and the six phase slots.
const REC_WORDS: usize = 5 + PHASES;

fn pack(rec: &TraceRecord) -> [u64; REC_WORDS] {
    let meta = ((rec.worker as u64) << 32)
        | ((rec.op_code as u64) << 16)
        | ((rec.origin as u64) << 8)
        | rec.tail as u64;
    let mut w = [0u64; REC_WORDS];
    w[0] = rec.id;
    w[1] = meta;
    w[2] = rec.op_index;
    w[3] = rec.start_us;
    w[4] = rec.total_nanos;
    w[5..].copy_from_slice(&rec.phases.0);
    w
}

fn unpack(w: &[u64; REC_WORDS]) -> TraceRecord {
    let meta = w[1];
    let mut phases = PhaseNanos::zero();
    phases.0.copy_from_slice(&w[5..]);
    TraceRecord {
        id: w[0],
        worker: (meta >> 32) as u32,
        op_code: (meta >> 16) as u16,
        origin: TraceOrigin::from_u8((meta >> 8) as u8),
        tail: meta & 1 == 1,
        op_index: w[2],
        start_us: w[3],
        total_nanos: w[4],
        phases,
    }
}

/// One ring slot: a seqlock generation counter guarding a packed record.
/// `seq` is even when the slot is stable (generation `seq/2`), odd while a
/// writer is mid-publish. Readers copy the words and re-check `seq`; any
/// change means the copy may be torn and is discarded.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; REC_WORDS],
}

/// The flight recorder: a fixed-capacity MPMC ring of [`TraceRecord`]s.
///
/// Writers take a global ticket (`fetch_add`) and publish into
/// `ticket % capacity` under that slot's seqlock. Two writers racing the
/// same slot across a wraparound resolve by generation: the claim CAS of
/// the loser fails and its record is **dropped** (a flight recorder keeps
/// recent history; it never blocks the op path to keep a particular
/// record). Readers never block writers and never observe torn records.
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl TraceRing {
    /// A ring holding up to `capacity` records (clamped to `[16, 1<<20]`).
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.clamp(16, 1 << 20);
        TraceRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (including dropped-on-collision ones).
    pub fn pushed(&self) -> u64 {
        // gm-check: relaxed(monotonic statistics counter; read for display only)
        self.head.load(Relaxed)
    }

    /// Publish one record. Returns `false` when the record was dropped:
    /// either tracing is off, the id is 0, or a concurrent writer raced
    /// this slot (collision under wraparound).
    pub fn push(&self, rec: &TraceRecord) -> bool {
        if rec.id == 0 {
            return false;
        }
        // gm-check: relaxed(ticket counter only orders slot choice; publication is the seq CAS/Release below)
        let ticket = self.head.fetch_add(1, Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(ticket % cap) as usize];
        // Final even seq for this generation; the odd claim value precedes it.
        let target = (ticket / cap + 1) * 2;
        let prev = slot.seq.load(Acquire);
        if prev >= target - 1 {
            // A later generation already claimed or published this slot:
            // our ticket lost a full wraparound race. Drop.
            return false;
        }
        if slot
            .seq
            .compare_exchange(prev, target - 1, Acquire, Relaxed)
            .is_err()
        {
            // Another writer claimed the slot between our load and CAS.
            return false;
        }
        for (w, v) in slot.words.iter().zip(pack(rec)) {
            // gm-check: relaxed(word stores are published by the Release seq store below)
            w.store(v, Relaxed);
        }
        slot.seq.store(target, Release);
        true
    }

    /// Copy out every stable record, oldest ticket first. Slots mid-write
    /// or overwritten during the copy are skipped — never returned torn.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let head = self.head.load(Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - lo) as usize);
        for ticket in lo..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let s1 = slot.seq.load(Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or a writer is mid-publish
            }
            let words: [u64; REC_WORDS] =
                // gm-check: relaxed(seqlock read side; the fence + seq re-check below reject torn copies)
                std::array::from_fn(|i| slot.words[i].load(Relaxed));
            fence(Acquire);
            // gm-check: relaxed(the Acquire fence above orders this re-check after the word loads)
            if slot.seq.load(Relaxed) != s1 {
                continue; // a writer raced the copy: discard, never tear
            }
            out.push(unpack(&words));
        }
        out
    }

    /// Find the most recent stable record with this trace id (a client and
    /// a server record of the same remote op share an id; this returns the
    /// later-pushed one).
    pub fn find(&self, id: u64) -> Option<TraceRecord> {
        if id == 0 {
            return None;
        }
        self.snapshot().into_iter().rev().find(|r| r.id == id)
    }
}

/// The moving tail threshold: ops slower than it are always retained.
///
/// Self-adjusting, lock-free: a tail hit raises the threshold by 1/16, a
/// non-tail op decays it by 1/256, so the keep rate converges near
/// 1/17 ≈ 6% of ops — comfortably covering the p99 — and tracks latency
/// regime changes in either direction. One gate per latency population
/// (the driver keeps one per run/mix; the server one per process).
#[derive(Debug, Default)]
pub struct TailGate {
    thr: AtomicU64,
}

impl TailGate {
    /// A fresh gate (threshold initializes from the first observation).
    pub const fn new() -> TailGate {
        TailGate {
            thr: AtomicU64::new(0),
        }
    }

    /// The current threshold in nanoseconds (0 until the first sample).
    pub fn threshold(&self) -> u64 {
        // gm-check: relaxed(threshold is an independent scalar; no data is published under it)
        self.thr.load(Relaxed)
    }

    /// Observe one op's end-to-end nanoseconds; returns whether it
    /// qualifies as tail. The first observation seeds the threshold at 2×
    /// itself (and counts as tail — the first op of a run is always worth
    /// keeping).
    pub fn observe(&self, nanos: u64) -> bool {
        // gm-check: relaxed(threshold adaptation tolerates lost updates; it is a moving estimate, not a count)
        let t = self.thr.load(Relaxed);
        if t == 0 {
            let seed = nanos.max(1).saturating_mul(2);
            // gm-check: relaxed(see above)
            let _ = self.thr.compare_exchange(0, seed, Relaxed, Relaxed);
            return true;
        }
        if nanos > t {
            // gm-check: relaxed(see above)
            self.thr.fetch_add((t >> 4).max(1), Relaxed);
            true
        } else {
            let dec = (t >> 8).max(1);
            if t > dec {
                // gm-check: relaxed(see above)
                self.thr.fetch_sub(dec, Relaxed);
            }
            false
        }
    }
}

/// Global ring capacity, settable (via `GM_TRACE_CAP`) until the first
/// record forces allocation.
static CAP: AtomicUsize = AtomicUsize::new(4096);
static RING: OnceLock<TraceRing> = OnceLock::new();

/// Set the global ring's capacity. A no-op once the ring exists (call it
/// during startup, before the first recorded op).
pub fn set_capacity(cap: usize) {
    // gm-check: relaxed(startup-only configuration scalar)
    CAP.store(cap.clamp(16, 1 << 20), Relaxed);
}

/// The process-wide flight recorder (allocated on first use).
pub fn global_ring() -> &'static TraceRing {
    // gm-check: relaxed(capacity was stored at startup; OnceLock publishes the ring itself)
    RING.get_or_init(|| TraceRing::new(CAP.load(Relaxed)))
}

/// Record one completed op into the global flight recorder, applying the
/// retention policy. Returns `true` only when the record actually landed in
/// the ring — callers that print the id (histogram exemplars) use this so
/// every printed id resolves to a retrievable record.
///
/// Off-path: with `id == 0` or `GM_TRACE=off` this returns immediately —
/// no clock read, no allocation, no ring access.
#[allow(clippy::too_many_arguments)] // one flat call per op on the hot path; a builder would allocate
pub fn record_op(
    gate: &TailGate,
    id: u64,
    worker: u32,
    op_index: u64,
    op_code: u16,
    origin: TraceOrigin,
    total_nanos: u64,
    phases: PhaseNanos,
) -> bool {
    if id == 0 {
        return false;
    }
    let (keep, tail) = match mode() {
        TraceMode::Off => return false,
        TraceMode::All => {
            // Keep everything, but still tag tails (and keep the gate warm
            // so a later switch to `tail` mode starts calibrated).
            (true, gate.observe(total_nanos))
        }
        TraceMode::Tail => {
            let tail = gate.observe(total_nanos);
            // Head-sample the non-tail remainder 1-in-128 by the id's low
            // bits: deterministic across replays, no RNG on the op path.
            (tail || id & 0x7F == 0, tail)
        }
    };
    if !keep {
        return false;
    }
    let start_us = uptime_us().saturating_sub(total_nanos / 1_000);
    global_ring().push(&TraceRecord {
        id,
        worker,
        op_index,
        op_code,
        start_us,
        total_nanos,
        phases,
        origin,
        tail,
    })
}

// ----- renderers ------------------------------------------------------------

/// Render records as an aligned text table (one line per record, phases as
/// self-time columns, newest last).
pub fn render_table(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<6} {:>6} {:>8} {:<6} {:>12} {:>12} {:>5}",
        "trace_id", "origin", "worker", "op_idx", "op", "start_us", "total_ns", "tail"
    ));
    for p in Phase::ALL {
        out.push_str(&format!(" {:>13}", p.name()));
    }
    out.push('\n');
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.start_us, r.id));
    for r in sorted {
        out.push_str(&format!(
            "{:#018x} {:<6} {:>6} {:>8} {:<6} {:>12} {:>12} {:>5}",
            r.id,
            r.origin.name(),
            r.worker,
            r.op_index,
            op_code_label(r.op_code),
            r.start_us,
            r.total_nanos,
            if r.tail { "yes" } else { "no" }
        ));
        for p in Phase::ALL {
            out.push_str(&format!(" {:>13}", r.phases.get(p)));
        }
        out.push('\n');
    }
    out
}

/// Render records as Chrome `trace_event` JSON (load via `chrome://tracing`
/// or Perfetto). Each record becomes one complete (`"ph":"X"`) event per
/// op, with its phases as back-to-back child events — phase *ordering*
/// within the op window is a rendering convention (only self-times are
/// recorded), but widths are exact.
pub fn render_chrome_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for r in records {
        let pid = r.origin.name();
        let dur_us = (r.total_nanos / 1_000).max(1);
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":\"{}\",\"tid\":{},\"args\":{{\"trace_id\":\"{:#x}\",\
             \"op_index\":{},\"tail\":{}}}}}",
            op_code_label(r.op_code),
            r.start_us,
            dur_us,
            pid,
            r.worker,
            r.id,
            r.op_index,
            r.tail
        ));
        let mut ts = r.start_us;
        for p in Phase::ALL {
            let nanos = r.phases.get(p);
            if nanos == 0 {
                continue;
            }
            let dur = (nanos / 1_000).max(1);
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{ts},\
                 \"dur\":{dur},\"pid\":\"{pid}\",\"tid\":{}}}",
                p.name(),
                r.worker
            ));
            ts += dur;
        }
    }
    out.push_str("]}");
    out
}

/// Dump records to `<base>.txt` (aligned table) and `<base>.json` (Chrome
/// `trace_event`), the `GM_TRACE_DUMP` path.
pub fn dump_to(base: &str, records: &[TraceRecord]) -> std::io::Result<()> {
    std::fs::write(format!("{base}.txt"), render_table(records))?;
    std::fs::write(format!("{base}.json"), render_chrome_json(records))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_names() {
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse(" Tail "), Some(TraceMode::Tail));
        assert_eq!(TraceMode::parse("all"), Some(TraceMode::All));
        assert_eq!(TraceMode::parse("bogus"), None);
        for m in [TraceMode::Off, TraceMode::Tail, TraceMode::All] {
            assert_eq!(TraceMode::parse(m.name()), Some(m));
        }
        assert!(TraceMode::Off < TraceMode::Tail);
    }

    #[test]
    fn ids_are_deterministic_distinct_and_nonzero() {
        let a = mix_id(42, 0, 0);
        assert_eq!(a, mix_id(42, 0, 0), "same inputs, same id");
        assert_ne!(a, mix_id(42, 0, 1));
        assert_ne!(a, mix_id(42, 1, 0));
        assert_ne!(a, mix_id(43, 0, 0));
        // No zero over a realistic sweep (0 means "no trace").
        for w in 0..8u32 {
            for i in 0..2_000u64 {
                assert_ne!(mix_id(42, w, i), 0);
            }
        }
    }

    #[test]
    fn record_pack_round_trips() {
        let mut phases = PhaseNanos::zero();
        phases.set(Phase::EngineExec, 12_345);
        phases.set(Phase::WireIo, u64::MAX);
        let rec = TraceRecord {
            id: 0xDEAD_BEEF_0000_0001,
            worker: 7,
            op_index: 99,
            op_code: 23,
            start_us: 1_000_000,
            total_nanos: 5_000_000,
            phases,
            origin: TraceOrigin::Server,
            tail: true,
        };
        assert_eq!(unpack(&pack(&rec)), rec);
        let plain = TraceRecord {
            origin: TraceOrigin::Client,
            tail: false,
            ..rec
        };
        assert_eq!(unpack(&pack(&plain)), plain);
    }

    #[test]
    fn ring_keeps_the_most_recent_capacity_records() {
        let ring = TraceRing::new(16);
        assert_eq!(ring.capacity(), 16);
        let rec = |i: u64| TraceRecord {
            id: i + 1,
            worker: 0,
            op_index: i,
            op_code: 8,
            start_us: i,
            total_nanos: 100,
            phases: PhaseNanos::zero(),
            origin: TraceOrigin::Client,
            tail: false,
        };
        for i in 0..40 {
            assert!(ring.push(&rec(i)), "uncontended push must land");
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 16, "ring holds exactly its capacity");
        // Oldest surviving ticket is 24; order is oldest-first.
        assert_eq!(snap.first().unwrap().op_index, 24);
        assert_eq!(snap.last().unwrap().op_index, 39);
        assert!(ring.find(40).is_some(), "recent ids resolve");
        assert!(ring.find(1).is_none(), "evicted ids do not");
        assert!(ring.find(0).is_none(), "id 0 never resolves");
        assert_eq!(ring.pushed(), 40);
    }

    #[test]
    fn zero_id_records_are_refused() {
        let ring = TraceRing::new(16);
        let rec = TraceRecord {
            id: 0,
            worker: 0,
            op_index: 0,
            op_code: 0,
            start_us: 0,
            total_nanos: 0,
            phases: PhaseNanos::zero(),
            origin: TraceOrigin::Client,
            tail: false,
        };
        assert!(!ring.push(&rec));
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn tail_gate_converges_to_a_few_percent_keep_rate() {
        let gate = TailGate::new();
        assert_eq!(gate.threshold(), 0);
        assert!(gate.observe(1_000), "first sample is always tail");
        // A steady stream of ~1µs ops with occasional 10µs spikes: after
        // warm-up the gate must keep the spikes and only a sliver of the
        // steady stream.
        for _ in 0..2_000 {
            gate.observe(1_000);
        }
        let mut kept_steady = 0;
        let mut kept_spikes = 0;
        for i in 0..1_000 {
            if i % 100 == 0 {
                if gate.observe(10_000) {
                    kept_spikes += 1;
                }
            } else if gate.observe(1_000) {
                kept_steady += 1;
            }
        }
        assert_eq!(kept_spikes, 10, "every spike is tail");
        assert!(
            kept_steady < 250,
            "steady-state keep rate must stay tail-biased, kept {kept_steady}/990"
        );
        assert!(
            gate.threshold() > 1_000,
            "threshold sits above the steady stream"
        );
    }

    #[test]
    fn tail_gate_tracks_a_regime_change_downward() {
        let gate = TailGate::new();
        for _ in 0..500 {
            gate.observe(1_000_000); // 1ms regime
        }
        let high = gate.threshold();
        for _ in 0..5_000 {
            gate.observe(1_000); // regime drops to 1µs
        }
        assert!(
            gate.threshold() < high,
            "threshold must decay toward the new regime"
        );
    }

    #[test]
    fn op_code_labels() {
        assert_eq!(op_code_label(0), "-");
        assert_eq!(op_code_label(23), "Q23");
        assert_eq!(op_code_label(201), "W1");
    }

    #[test]
    fn renders_mention_every_record() {
        let rec = TraceRecord {
            id: 0xABCD,
            worker: 3,
            op_index: 17,
            op_code: 23,
            start_us: 42,
            total_nanos: 9_000,
            phases: {
                let mut p = PhaseNanos::zero();
                p.set(Phase::EngineExec, 6_000);
                p.set(Phase::WireIo, 2_000);
                p
            },
            origin: TraceOrigin::Client,
            tail: true,
        };
        let table = render_table(&[rec]);
        assert!(table.contains("0x000000000000abcd"), "{table}");
        assert!(table.contains("Q23"), "{table}");
        assert!(table.contains("engine_exec"), "{table}");
        let json = render_chrome_json(&[rec]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"Q23\""), "{json}");
        assert!(json.contains("\"name\":\"engine_exec\""), "{json}");
        assert!(json.contains("\"trace_id\":\"0xabcd\""), "{json}");
    }
}
