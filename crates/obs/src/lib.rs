//! # gm-obs — unified observability: metrics registry + per-op phase tracing
//!
//! The paper's methodology is *attribution*: microbenchmarks localize where
//! a graph database spends its time. This crate gives the reproduction the
//! same property at runtime — instead of one end-to-end latency number plus
//! a bolt-on lock-wait column, every op can be split into named **phases**
//! and every subsystem can export **metrics** through one registry:
//!
//! * [`registry`] — a global registry of atomic counters, gauges, and log2
//!   histograms. Registration takes a short lock once per name; every
//!   update after that is a single relaxed atomic op on a cached handle.
//!   [`RegistrySnapshot`]s are plain data: mergeable (pure addition, so
//!   merging is associative and commutative) and renderable as
//!   Prometheus-style text.
//! * [`phase`] — a thread-local **span stack** generalizing the old
//!   `gm_model::lockwait` cell: code brackets a region with
//!   [`phase::span`] and the elapsed time lands in that phase's per-op
//!   accumulator as *self time* (nested spans subtract from their parent),
//!   so the per-op phase vector sums to at most the end-to-end latency.
//!   The driver resets the stack on op entry and rolls the vector into
//!   `OpResult`.
//! * [`hist`] — the shared-write sibling of `gm_workload`'s
//!   `LatencyHistogram`: identical power-of-two bucketing, but atomic, so
//!   many threads can record into one registry histogram without locks.
//! * [`trace`] — per-op tracing: deterministic trace ids (seed + worker +
//!   op index, replay-stable), a fixed-capacity lock-free flight recorder
//!   with tail-biased retention, and renderers (aligned table + Chrome
//!   `trace_event` JSON). Gated by its own [`TraceMode`] knob (`GM_TRACE`,
//!   `off|tail|all`) — orthogonal to [`ObsMode`], with the same off-path
//!   guarantee (one relaxed load + branch per probe when `off`).
//!
//! ## Modes
//!
//! The global [`ObsMode`] (set from the `GM_OBS` knob) trades detail for
//! overhead:
//!
//! | mode | phase spans | registry counters | cost on the op path |
//! |---|---|---|---|
//! | `off` | no | no | one relaxed load + branch per site |
//! | `counters` | no | yes | + one atomic RMW per counter site |
//! | `phases` (default) | yes | yes | + two `Instant::now` per span |
//!
//! The legacy lock-wait accounting (`gm_model::lockwait`, now a shim over
//! [`phase`]) stays on in every mode — it predates this crate and the
//! fig8/fig10 lock-wait columns must not change meaning under `GM_OBS=off`.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod hist;
pub mod phase;
pub mod registry;
pub mod trace;

pub use hist::{AtomicHistogram, HistSnapshot, BUCKETS};
pub use phase::{Phase, PhaseNanos, SpanGuard, PHASES};
pub use registry::{global, Counter, Gauge, Histo, Registry, RegistrySnapshot};
pub use trace::{TailGate, TraceMode, TraceOrigin, TraceRecord, TraceRing};

/// How much the observability layer records (see the crate docs table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsMode {
    /// Nothing beyond the legacy lock-wait accounting.
    Off = 0,
    /// Registry counters/gauges/histograms, no per-op phase spans.
    Counters = 1,
    /// Counters plus per-op phase spans (the default).
    Phases = 2,
}

impl ObsMode {
    /// Knob spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Counters => "counters",
            ObsMode::Phases => "phases",
        }
    }

    /// Parse a knob value (`off` / `counters` / `phases`).
    pub fn parse(s: &str) -> Option<ObsMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(ObsMode::Off),
            "counters" => Some(ObsMode::Counters),
            "phases" | "on" | "full" => Some(ObsMode::Phases),
            _ => None,
        }
    }
}

/// The process-wide mode. Phases by default: the figures carry their phase
/// breakdown out of the box, and `GM_OBS=off` recovers the bare path.
static MODE: AtomicU8 = AtomicU8::new(ObsMode::Phases as u8);

/// Set the process-wide observability mode (idempotent, any thread).
pub fn set_mode(mode: ObsMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current process-wide mode.
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        0 => ObsMode::Off,
        1 => ObsMode::Counters,
        _ => ObsMode::Phases,
    }
}

/// Are registry counters/gauges/histograms live? (`counters` or `phases`.)
#[inline]
pub fn counters_on() -> bool {
    MODE.load(Ordering::Relaxed) >= ObsMode::Counters as u8
}

/// Are per-op phase spans live? (`phases` only.)
#[inline]
pub fn phases_on() -> bool {
    MODE.load(Ordering::Relaxed) >= ObsMode::Phases as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_orders() {
        assert_eq!(ObsMode::parse("off"), Some(ObsMode::Off));
        assert_eq!(ObsMode::parse(" Counters "), Some(ObsMode::Counters));
        assert_eq!(ObsMode::parse("phases"), Some(ObsMode::Phases));
        assert_eq!(ObsMode::parse("bogus"), None);
        assert!(ObsMode::Off < ObsMode::Counters);
        assert!(ObsMode::Counters < ObsMode::Phases);
        for m in [ObsMode::Off, ObsMode::Counters, ObsMode::Phases] {
            assert_eq!(ObsMode::parse(m.name()), Some(m));
        }
    }
}
