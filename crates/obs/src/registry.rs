//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a short `RwLock` write once per
//! name; after that every update is a single relaxed atomic op on a cached
//! [`Counter`]/[`Gauge`]/[`Histo`] handle — the hot path is lock-free.
//! [`Registry::snapshot`] reads everything into a [`RegistrySnapshot`]:
//! plain sorted data that merges by pure addition (associative and
//! commutative), crosses the gm-net wire as the `GetStats` payload, and
//! renders as Prometheus-style text.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock, RwLock};

use crate::hist::{bucket_floor, bucket_width, AtomicHistogram, HistSnapshot, BUCKETS};

/// A monotone counter handle (cheap to clone, lock-free to update).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Relaxed);
    }

    /// Raise the gauge to at least `v` (monotone max).
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// A histogram handle (atomic log2 buckets, see [`crate::hist`]).
#[derive(Debug, Clone, Default)]
pub struct Histo(Arc<AtomicHistogram>);

impl Histo {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Snapshot this histogram alone.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.snapshot()
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    hists: RwLock<BTreeMap<String, Histo>>,
}

fn get_or_insert<T: Clone + Default>(map: &RwLock<BTreeMap<String, T>>, name: &str) -> T {
    if let Some(h) = map.read().expect("registry lock").get(name) {
        return h.clone();
    }
    map.write()
        .expect("registry lock")
        .entry(name.to_string())
        .or_default()
        .clone()
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&self.counters, name)
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&self.gauges, name)
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histo {
        get_or_insert(&self.hists, name)
    }

    /// Copy every metric into a plain-data snapshot (sorted by name),
    /// stamped with the process-uptime capture time.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            captured_at_us: crate::trace::uptime_us(),
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            hists: self
                .hists
                .read()
                .expect("registry lock")
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry every subsystem exports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Plain-data view of a registry: sorted name/value lists. This is what
/// merges across processes and what `GetStats` ships over the wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Monotonic capture stamp: microseconds of process uptime
    /// ([`crate::trace::uptime_us`]) at snapshot time, 0 when unknown
    /// (e.g. a default-constructed accumulator). Two snapshots of the same
    /// process diff into a true interval — monotonic clock, no wall-time
    /// steps — so clients can turn counter deltas into rates. Merging
    /// takes the max (latest capture wins), which keeps merge associative
    /// and commutative with 0 as identity.
    pub captured_at_us: u64,
    /// Monotone counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
}

/// Merge two sorted name/value lists with a per-value combiner.
fn merge_sorted<V: Clone>(
    a: &mut Vec<(String, V)>,
    b: &[(String, V)],
    combine: impl Fn(&mut V, &V),
) {
    let mut out: Vec<(String, V)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let mut v = a[i].1.clone();
                combine(&mut v, &b[j].1);
                out.push((a[i].0.clone(), v));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    *a = out;
}

impl RegistrySnapshot {
    /// Fold another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise. Pure addition end to end, so merging
    /// is associative and commutative (pinned by the proptest suite).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        self.captured_at_us = self.captured_at_us.max(other.captured_at_us);
        merge_sorted(&mut self.counters, &other.counters, |a, b| {
            *a = a.saturating_add(*b)
        });
        merge_sorted(&mut self.gauges, &other.gauges, |a, b| {
            *a = a.saturating_add(*b)
        });
        merge_sorted(&mut self.hists, &other.hists, |a, b| a.merge(b));
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// A histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Render as Prometheus-style exposition text: `# TYPE` lines,
    /// sanitized `gm_`-prefixed names, cumulative `_bucket{le=...}` series
    /// for histograms.
    pub fn render_prometheus(&self) -> String {
        fn sane(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 3);
            out.push_str("gm_");
            for ch in name.chars() {
                out.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
            }
            out
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sane(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sane(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.hists {
            let n = sane(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let top = h
                .counts
                .iter()
                .rposition(|&c| c > 0)
                .map_or(0, |i| i + 1)
                .min(BUCKETS - 1);
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate().take(top) {
                cumulative += c;
                let le = bucket_floor(i) + bucket_width(i);
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {}\n{n}_count {}\n",
                h.count, h.sum, h.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_cached_and_shared() {
        let r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("ops").get(), 3);
        let g = r.gauge("lag");
        g.set(-4);
        r.gauge("lag").add(1);
        assert_eq!(g.get(), -3);
        g.fetch_max(10);
        assert_eq!(g.get(), 10);
        r.histogram("lat").record(100);
        assert_eq!(r.histogram("lat").snapshot().count, 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("zeta").add(5);
        r.counter("alpha").add(2);
        r.gauge("mid").set(7);
        r.histogram("h").record(42);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "alpha");
        assert_eq!(s.counters[1].0, "zeta");
        assert_eq!(s.counter("zeta"), 5);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("mid"), 7);
        assert_eq!(s.hist("h").unwrap().count, 1);
        assert!(s.hist("absent").is_none());
        assert!(!s.is_empty());
        assert!(RegistrySnapshot::default().is_empty());
    }

    #[test]
    fn merge_unions_names_and_adds_values() {
        let ra = Registry::new();
        ra.counter("shared").add(10);
        ra.counter("only_a").add(1);
        ra.gauge("g").set(5);
        ra.histogram("h").record(8);
        let rb = Registry::new();
        rb.counter("shared").add(32);
        rb.counter("only_b").add(2);
        rb.gauge("g").set(-3);
        rb.histogram("h").record(16);
        let mut s = ra.snapshot();
        s.merge(&rb.snapshot());
        assert_eq!(s.counter("shared"), 42);
        assert_eq!(s.counter("only_a"), 1);
        assert_eq!(s.counter("only_b"), 2);
        assert_eq!(s.gauge("g"), 2);
        let h = s.hist("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 8);
        assert_eq!(h.max, 16);
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["only_a", "only_b", "shared"], "sorted union");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("net.ops").add(3);
        r.gauge("mvcc.live-pins").set(2);
        r.histogram("op_nanos").record(1000);
        r.histogram("op_nanos").record(3000);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE gm_net_ops counter"), "{text}");
        assert!(text.contains("gm_net_ops 3"), "{text}");
        assert!(text.contains("# TYPE gm_mvcc_live_pins gauge"), "{text}");
        assert!(text.contains("# TYPE gm_op_nanos histogram"), "{text}");
        assert!(text.contains("gm_op_nanos_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("gm_op_nanos_sum 4000"), "{text}");
        assert!(text.contains("gm_op_nanos_count 2"), "{text}");
    }

    #[test]
    fn snapshots_carry_a_monotonic_capture_stamp() {
        let r = Registry::new();
        r.counter("ops").inc();
        let first = r.snapshot();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = r.snapshot();
        assert!(second.captured_at_us > first.captured_at_us);
        assert!(second.captured_at_us - first.captured_at_us >= 2_000);
        // Merging keeps the latest stamp; default (0) is the identity.
        let mut acc = RegistrySnapshot::default();
        assert_eq!(acc.captured_at_us, 0);
        acc.merge(&second);
        acc.merge(&first);
        assert_eq!(acc.captured_at_us, second.captured_at_us);
    }

    #[test]
    fn global_registry_is_one_instance() {
        global().counter("test.global.marker").inc();
        assert!(global().snapshot().counter("test.global.marker") >= 1);
    }
}
