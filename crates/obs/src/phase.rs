//! Per-op phase spans: a thread-local span stack with self-time attribution.
//!
//! This generalizes the old `gm_model::lockwait` single-cell pattern: each
//! worker thread carries one accumulator per named [`Phase`], reset at op
//! entry ([`reset_op`]) and collected at op exit ([`take_all`]). Code
//! brackets a region with [`span`] (RAII) or [`timed`] (closure); nested
//! spans attribute **self time** — a child's elapsed time is subtracted
//! from its parent — so every nanosecond lands in exactly one phase and
//! the per-op phase vector sums to at most the end-to-end latency (the
//! invariant the CI observability smoke checks).
//!
//! Resetting on *entry* rather than exit is the staleness fix: an op that
//! panics or aborts on a poisoned lock unwinds without taking its
//! accumulators, and without the entry reset that residue would be
//! attributed to the next op scheduled on the same worker thread.
//!
//! [`span`] is inert unless the global mode is `phases`; [`add`] and
//! [`timed`] always accumulate, because the legacy lock-wait column
//! predates the mode knob and must not change meaning under `GM_OBS=off`.

use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Number of named phases.
pub const PHASES: usize = 6;

/// The named phases an op can spend time in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Queueing on an engine/shard lock (the legacy `lockwait` signal).
    LockWait = 0,
    /// Executing the query against the engine.
    EngineExec = 1,
    /// Pinning an MVCC snapshot epoch.
    SnapshotPin = 2,
    /// Cloning/freezing the live engine to publish an epoch.
    ClonePublish = 3,
    /// Serializing a request/response frame.
    WireEncode = 4,
    /// Socket send/receive round trip.
    WireIo = 5,
}

impl Phase {
    /// Every phase, in accumulator order.
    pub const ALL: [Phase; PHASES] = [
        Phase::LockWait,
        Phase::EngineExec,
        Phase::SnapshotPin,
        Phase::ClonePublish,
        Phase::WireEncode,
        Phase::WireIo,
    ];

    /// Stable snake_case name (used in column headers and metrics).
    pub fn name(self) -> &'static str {
        match self {
            Phase::LockWait => "lock_wait",
            Phase::EngineExec => "engine_exec",
            Phase::SnapshotPin => "snapshot_pin",
            Phase::ClonePublish => "clone_publish",
            Phase::WireEncode => "wire_encode",
            Phase::WireIo => "wire_io",
        }
    }
}

/// One op's (or one run's — it adds) per-phase nanosecond totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseNanos(pub [u64; PHASES]);

impl PhaseNanos {
    /// All zero.
    pub fn zero() -> PhaseNanos {
        PhaseNanos::default()
    }

    /// Nanoseconds attributed to one phase.
    #[inline]
    pub fn get(&self, p: Phase) -> u64 {
        self.0[p as usize]
    }

    /// Set one phase's value.
    pub fn set(&mut self, p: Phase, nanos: u64) {
        self.0[p as usize] = nanos;
    }

    /// Add to one phase (saturating).
    pub fn add(&mut self, p: Phase, nanos: u64) {
        let slot = &mut self.0[p as usize];
        *slot = slot.saturating_add(nanos);
    }

    /// Fold another vector into this one (saturating, element-wise).
    pub fn accumulate(&mut self, other: &PhaseNanos) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Sum over all phases (saturating).
    pub fn total(&self) -> u64 {
        self.0.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The wire cost: encode + socket I/O.
    pub fn wire(&self) -> u64 {
        self.get(Phase::WireEncode)
            .saturating_add(self.get(Phase::WireIo))
    }

    /// True when no phase recorded anything.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

/// A pending span on the thread-local stack.
struct Frame {
    phase: Phase,
    start: Instant,
    /// Elapsed time of completed child spans, subtracted from self time.
    child_nanos: u64,
}

thread_local! {
    static ACC: [Cell<u64>; PHASES] = const { [const { Cell::new(0) }; PHASES] };
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Reset all per-op state: accumulators to zero, span stack cleared.
/// Called at op entry by every driver session and the server op loop.
pub fn reset_op() {
    ACC.with(|acc| {
        for c in acc {
            c.set(0);
        }
    });
    STACK.with(|s| s.borrow_mut().clear());
}

/// Add nanoseconds to a phase directly (always live, any mode).
#[inline]
pub fn add(p: Phase, nanos: u64) {
    ACC.with(|acc| {
        let c = &acc[p as usize];
        c.set(c.get().saturating_add(nanos));
    });
}

/// Reset one phase's accumulator (legacy `lockwait::reset`).
pub fn reset(p: Phase) {
    ACC.with(|acc| acc[p as usize].set(0));
}

/// Take one phase's accumulated nanoseconds, leaving zero.
pub fn take(p: Phase) -> u64 {
    ACC.with(|acc| acc[p as usize].replace(0))
}

/// Read one phase's accumulator without clearing it.
pub fn get(p: Phase) -> u64 {
    ACC.with(|acc| acc[p as usize].get())
}

/// Take the whole per-op phase vector, leaving zeroes.
pub fn take_all() -> PhaseNanos {
    ACC.with(|acc| PhaseNanos(std::array::from_fn(|i| acc[i].replace(0))))
}

/// RAII span: times from creation to drop and attributes the *self time*
/// (elapsed minus completed child spans) to `phase`. Inert — no clock
/// read — unless the global mode is `phases`.
#[must_use = "a span measures nothing unless it lives across the region"]
pub fn span(phase: Phase) -> SpanGuard {
    if !crate::phases_on() {
        return SpanGuard { depth: None };
    }
    span_always(phase)
}

/// RAII span that is live in every mode (the lock-wait shim uses this so
/// `GM_OBS=off` keeps the legacy column meaningful).
pub fn span_always(phase: Phase) -> SpanGuard {
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(Frame {
            phase,
            start: Instant::now(),
            child_nanos: 0,
        });
        s.len() - 1
    });
    SpanGuard { depth: Some(depth) }
}

/// Guard returned by [`span`]; closing attributes the elapsed self time.
pub struct SpanGuard {
    depth: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // A reset_op between creation and drop already discarded this
            // frame; attribute nothing rather than someone else's time.
            if s.len() <= depth {
                return;
            }
            // Guards close LIFO in normal flow; a leaked inner guard (e.g.
            // mem::forget) leaves frames above us — fold their time into
            // ours rather than corrupting the stack.
            s.truncate(depth + 1);
            let frame = s.pop().expect("frame at own depth");
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            add(frame.phase, elapsed.saturating_sub(frame.child_nanos));
            if let Some(parent) = s.last_mut() {
                parent.child_nanos = parent.child_nanos.saturating_add(elapsed);
            }
        });
    }
}

/// Run `f` and attribute its duration to `phase`. Always live: under
/// `phases` it participates in the span stack (self-time attribution);
/// otherwise it is a flat start/stop measurement.
#[inline]
pub fn timed<R>(phase: Phase, f: impl FnOnce() -> R) -> R {
    if crate::phases_on() {
        let _guard = span_always(phase);
        f()
    } else {
        let start = Instant::now();
        let out = f();
        add(phase, start.elapsed().as_nanos() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(nanos: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < nanos {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn add_take_reset() {
        reset_op();
        add(Phase::LockWait, 5);
        add(Phase::LockWait, 7);
        add(Phase::EngineExec, 3);
        assert_eq!(get(Phase::LockWait), 12);
        assert_eq!(take(Phase::LockWait), 12);
        assert_eq!(take(Phase::LockWait), 0);
        let all = take_all();
        assert_eq!(all.get(Phase::EngineExec), 3);
        assert_eq!(all.total(), 3);
        add(Phase::WireIo, 9);
        reset_op();
        assert!(take_all().is_zero());
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        reset_op();
        {
            let _outer = span_always(Phase::EngineExec);
            spin(400_000);
            {
                let _inner = span_always(Phase::LockWait);
                spin(400_000);
            }
            spin(100_000);
        }
        let v = take_all();
        let exec = v.get(Phase::EngineExec);
        let lock = v.get(Phase::LockWait);
        assert!(lock >= 400_000, "inner span under-measured: {lock}");
        assert!(exec >= 400_000, "outer self time under-measured: {exec}");
        // Self-time attribution: the outer phase must not double-count the
        // inner span's duration. Bound it by the outer's own spin time plus
        // slack, well below outer+inner combined.
        assert!(
            exec < 400_000 + 400_000,
            "outer span double-counted the nested one: exec={exec} lock={lock}"
        );
    }

    #[test]
    fn reset_mid_span_discards_the_frame() {
        reset_op();
        let guard = span_always(Phase::EngineExec);
        spin(100_000);
        reset_op();
        drop(guard);
        // The guard closed after a reset: it must attribute nothing.
        assert!(take_all().is_zero());
    }

    #[test]
    fn timed_accumulates_in_any_mode() {
        reset_op();
        let out = timed(Phase::LockWait, || {
            spin(200_000);
            42
        });
        assert_eq!(out, 42);
        assert!(get(Phase::LockWait) >= 200_000);
        reset_op();
    }

    #[test]
    fn phase_vector_arithmetic() {
        let mut a = PhaseNanos::zero();
        a.set(Phase::WireEncode, 10);
        a.add(Phase::WireIo, 20);
        let mut b = PhaseNanos::zero();
        b.set(Phase::WireIo, u64::MAX);
        a.accumulate(&b);
        assert_eq!(a.get(Phase::WireIo), u64::MAX);
        assert_eq!(a.wire(), u64::MAX);
        assert_eq!(a.total(), u64::MAX);
        assert!(!a.is_zero());
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn threads_have_independent_accumulators() {
        reset_op();
        add(Phase::LockWait, 100);
        std::thread::spawn(|| {
            assert_eq!(get(Phase::LockWait), 0);
            add(Phase::LockWait, 7);
            assert_eq!(take(Phase::LockWait), 7);
        })
        .join()
        .unwrap();
        assert_eq!(take(Phase::LockWait), 100);
    }
}
