//! Measurement records and report rendering.

use std::collections::BTreeMap;
use std::fmt;

/// Execution mode (§6.4, *Single vs Batch Execution*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// One execution on fresh state ("Interactive"/isolation in Fig. 1c).
    Isolation,
    /// N consecutive executions ("Batch").
    Batch,
}

impl fmt::Display for RunMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunMode::Isolation => write!(f, "single"),
            RunMode::Batch => write!(f, "batch"),
        }
    }
}

/// What happened to a query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Completed within the deadline.
    Completed,
    /// Hit the deadline (counts toward Figure 1c).
    Timeout,
    /// Failed with an engine error (e.g. the bitmap engine's
    /// resource-exhaustion on degree scans — also a Fig. 1c non-completion).
    Failed(String),
}

impl Outcome {
    /// True when the query did not complete (timeout or failure).
    pub fn is_dnf(&self) -> bool {
        !matches!(self, Outcome::Completed)
    }
}

/// One measured query execution (or batch thereof).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Engine name.
    pub engine: String,
    /// Dataset name.
    pub dataset: String,
    /// Query instance name (e.g. `"Q32(d=3)"`) or experiment label.
    pub query: String,
    /// Execution mode.
    pub mode: RunMode,
    /// Outcome.
    pub outcome: Outcome,
    /// Wall-clock nanoseconds (of the whole batch in batch mode).
    pub nanos: u64,
    /// Result cardinality, when the query completed.
    pub cardinality: Option<u64>,
}

impl Measurement {
    /// Milliseconds, as the paper's figures report.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// A collection of measurements with helpers for the figure renderers.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All rows.
    pub rows: Vec<Measurement>,
}

impl Report {
    /// Add a row.
    pub fn push(&mut self, m: Measurement) {
        self.rows.push(m);
    }

    /// Append another report.
    pub fn extend(&mut self, other: Report) {
        self.rows.extend(other.rows);
    }

    /// Count of non-completions per engine (Figure 1c).
    pub fn timeouts_by_engine(&self, mode: RunMode) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for r in &self.rows {
            if r.mode == mode && r.outcome.is_dnf() {
                *out.entry(r.engine.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total completed time per engine in seconds (Figure 7c/d).
    pub fn total_seconds_by_engine(&self, mode: RunMode) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for r in &self.rows {
            if r.mode == mode && r.outcome == Outcome::Completed {
                *out.entry(r.engine.clone()).or_insert(0.0) += r.nanos as f64 / 1e9;
            }
        }
        out
    }

    /// Milliseconds for (engine, query) in a given mode, if completed.
    pub fn millis_of(&self, engine: &str, query: &str, mode: RunMode) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.engine == engine && r.query == query && r.mode == mode)
            .filter(|r| r.outcome == Outcome::Completed)
            .map(|r| r.millis())
    }

    /// Render a figure-style table: rows = queries, columns = engines,
    /// cells = milliseconds or `TIMEOUT`/`FAILED`.
    pub fn render_matrix(&self, mode: RunMode) -> String {
        let mut engines: Vec<String> = self
            .rows
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.engine.clone())
            .collect();
        engines.sort();
        engines.dedup();
        let mut queries: Vec<String> = Vec::new();
        for r in self.rows.iter().filter(|r| r.mode == mode) {
            if !queries.contains(&r.query) {
                queries.push(r.query.clone());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{:<12}", "query"));
        for e in &engines {
            out.push_str(&format!(" | {e:>14}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(12 + engines.len() * 17));
        out.push('\n');
        for q in &queries {
            out.push_str(&format!("{q:<12}"));
            for e in &engines {
                let cell = self
                    .rows
                    .iter()
                    .find(|r| r.mode == mode && &r.query == q && &r.engine == e);
                let text = match cell {
                    Some(r) if r.outcome == Outcome::Completed => {
                        format!("{:.3} ms", r.millis())
                    }
                    Some(r) if matches!(r.outcome, Outcome::Timeout) => "TIMEOUT".to_string(),
                    Some(_) => "FAILED".to_string(),
                    None => "-".to_string(),
                };
                out.push_str(&format!(" | {text:>14}"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (machine-readable companion to the figures).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("engine,dataset,query,mode,outcome,millis,cardinality\n");
        for r in &self.rows {
            let outcome = match &r.outcome {
                Outcome::Completed => "ok",
                Outcome::Timeout => "timeout",
                Outcome::Failed(_) => "failed",
            };
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{}\n",
                r.engine,
                r.dataset,
                r.query,
                r.mode,
                outcome,
                r.millis(),
                r.cardinality.map(|c| c.to_string()).unwrap_or_default()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(engine: &str, query: &str, mode: RunMode, outcome: Outcome, ms: f64) -> Measurement {
        Measurement {
            engine: engine.into(),
            dataset: "d".into(),
            query: query.into(),
            mode,
            outcome,
            nanos: (ms * 1e6) as u64,
            cardinality: Some(1),
        }
    }

    #[test]
    fn timeout_accounting() {
        let mut rep = Report::default();
        rep.push(row("a", "Q8", RunMode::Isolation, Outcome::Completed, 1.0));
        rep.push(row("a", "Q9", RunMode::Isolation, Outcome::Timeout, 0.0));
        rep.push(row(
            "b",
            "Q9",
            RunMode::Isolation,
            Outcome::Failed("oom".into()),
            0.0,
        ));
        let t = rep.timeouts_by_engine(RunMode::Isolation);
        assert_eq!(t.get("a"), Some(&1));
        assert_eq!(t.get("b"), Some(&1));
        assert_eq!(t.get("c"), None);
    }

    #[test]
    fn totals_exclude_dnf() {
        let mut rep = Report::default();
        rep.push(row("a", "Q8", RunMode::Batch, Outcome::Completed, 1000.0));
        rep.push(row("a", "Q9", RunMode::Batch, Outcome::Timeout, 99999.0));
        let t = rep.total_seconds_by_engine(RunMode::Batch);
        assert!((t["a"] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_contains_cells() {
        let mut rep = Report::default();
        rep.push(row("a", "Q8", RunMode::Isolation, Outcome::Completed, 1.5));
        rep.push(row("b", "Q8", RunMode::Isolation, Outcome::Timeout, 0.0));
        let m = rep.render_matrix(RunMode::Isolation);
        assert!(m.contains("Q8"));
        assert!(m.contains("1.500 ms"));
        assert!(m.contains("TIMEOUT"));
    }

    #[test]
    fn csv_shape() {
        let mut rep = Report::default();
        rep.push(row("a", "Q8", RunMode::Isolation, Outcome::Completed, 1.5));
        let csv = rep.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("a,d,Q8,single,ok"));
    }

    #[test]
    fn millis_lookup() {
        let mut rep = Report::default();
        rep.push(row("a", "Q8", RunMode::Isolation, Outcome::Completed, 2.0));
        assert_eq!(rep.millis_of("a", "Q8", RunMode::Isolation), Some(2.0));
        assert_eq!(rep.millis_of("a", "Q9", RunMode::Isolation), None);
    }
}
