//! The benchmark runner: isolation/batch execution with deadlines.
//!
//! Reproduces the paper's measurement discipline (§5):
//!
//! * **isolation**: each query runs against freshly loaded state, so no
//!   query observes another's mutations (the paper used one Docker
//!   container per test);
//! * **batch**: the same query repeated `batch` times back to back, with
//!   rotating mutation victims (Figure 1c's "B" columns and Figure 7d);
//! * a **cooperative deadline** per execution — the scaled-down analogue of
//!   the paper's 2-hour cap;
//! * **untimed setup**: engine loading, parameter resolution and `sync()`
//!   happen outside the measured window.

use std::time::{Duration, Instant};

use gm_model::api::LoadOptions;
use gm_model::{Dataset, GdbError, GraphDb, QueryCtx};

use crate::catalog::{self, QueryInstance};
use crate::params::Workload;
use crate::report::{Measurement, Outcome, Report, RunMode};

/// Engine factory used by the runner to create fresh instances.
pub type EngineFactory<'a> = dyn Fn() -> Box<dyn GraphDb> + 'a;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Per-execution deadline (per batch in batch mode).
    pub timeout: Duration,
    /// Batch length (the paper uses 10).
    pub batch: u32,
    /// Load options (bulk on/off — the triple-engine ablation).
    pub load: LoadOptions,
    /// Build an attribute index on the Q11 property before running
    /// (Figure 4c).
    pub with_index: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            timeout: Duration::from_secs(10),
            batch: 10,
            load: LoadOptions::default(),
            with_index: false,
        }
    }
}

/// The benchmark runner for one (engine, dataset) pair.
pub struct Runner<'a> {
    factory: &'a EngineFactory<'a>,
    engine_name: String,
    dataset: &'a Dataset,
    workload: &'a Workload,
    config: BenchConfig,
    /// Reusable loaded engine for read-only queries.
    cached: Option<Box<dyn GraphDb>>,
}

impl<'a> Runner<'a> {
    /// Create a runner. `factory` must produce empty engines.
    pub fn new(
        factory: &'a EngineFactory<'a>,
        dataset: &'a Dataset,
        workload: &'a Workload,
        config: BenchConfig,
    ) -> Self {
        let engine_name = factory().name();
        Runner {
            factory,
            engine_name,
            dataset,
            workload,
            config,
            cached: None,
        }
    }

    /// Engine name this runner measures.
    pub fn engine_name(&self) -> &str {
        &self.engine_name
    }

    fn fresh_loaded(&self) -> Result<Box<dyn GraphDb>, GdbError> {
        let mut db = (self.factory)();
        db.bulk_load(self.dataset, &self.config.load)?;
        if self.config.with_index {
            let _ = db.create_vertex_index(&self.workload.vertex_prop.0);
        }
        db.sync()?;
        Ok(db)
    }

    fn loaded_for(&mut self, mutating: bool) -> Result<Box<dyn GraphDb>, GdbError> {
        if mutating {
            // Mutations always get pristine state.
            return self.fresh_loaded();
        }
        match self.cached.take() {
            Some(db) => Ok(db),
            None => self.fresh_loaded(),
        }
    }

    fn give_back(&mut self, db: Box<dyn GraphDb>, mutating: bool) {
        if !mutating {
            self.cached = Some(db);
        }
    }

    /// Measure Q1: bulk load time (Figure 3a) and the space report
    /// (Figure 1a/b). Returns (measurement, space bytes, raw json bytes).
    pub fn measure_load(&self) -> (Measurement, u64, u64) {
        let mut db = (self.factory)();
        let start = Instant::now();
        let outcome = match db.bulk_load(self.dataset, &self.config.load) {
            Ok(_) => match db.sync() {
                Ok(()) => Outcome::Completed,
                Err(e) => Outcome::Failed(e.to_string()),
            },
            Err(e) => Outcome::Failed(e.to_string()),
        };
        let nanos = start.elapsed().as_nanos() as u64;
        let space = db.space().total();
        let raw = gm_model::graphson::raw_json_bytes(self.dataset);
        (
            Measurement {
                engine: self.engine_name.clone(),
                dataset: self.dataset.name.clone(),
                query: "Q1".into(),
                mode: RunMode::Isolation,
                outcome,
                nanos,
                cardinality: None,
            },
            space,
            raw,
        )
    }

    /// Run one query instance in the given mode.
    pub fn run_instance(&mut self, inst: &QueryInstance, mode: RunMode) -> Measurement {
        let mutating = inst.id.is_mutation();
        let mut db = match self.loaded_for(mutating) {
            Ok(db) => db,
            Err(e) => {
                return Measurement {
                    engine: self.engine_name.clone(),
                    dataset: self.dataset.name.clone(),
                    query: inst.name(),
                    mode,
                    outcome: Outcome::Failed(format!("load: {e}")),
                    nanos: 0,
                    cardinality: None,
                }
            }
        };
        let params = match self.workload.resolve(db.as_ref()) {
            Ok(p) => p,
            Err(e) => {
                return Measurement {
                    engine: self.engine_name.clone(),
                    dataset: self.dataset.name.clone(),
                    query: inst.name(),
                    mode,
                    outcome: Outcome::Failed(format!("resolve: {e}")),
                    nanos: 0,
                    cardinality: None,
                }
            }
        };

        let rounds = match mode {
            RunMode::Isolation => 1,
            RunMode::Batch => self.config.batch,
        };
        let ctx = QueryCtx::with_timeout(self.config.timeout);
        let start = Instant::now();
        let mut outcome = Outcome::Completed;
        let mut cardinality = None;
        for round in 0..rounds {
            match catalog::execute(inst, db.as_mut(), &params, round as usize, &ctx) {
                Ok(card) => cardinality = Some(card),
                Err(GdbError::Timeout) => {
                    outcome = Outcome::Timeout;
                    break;
                }
                Err(e) => {
                    outcome = Outcome::Failed(e.to_string());
                    break;
                }
            }
        }
        let nanos = start.elapsed().as_nanos() as u64;
        self.give_back(db, mutating);
        Measurement {
            engine: self.engine_name.clone(),
            dataset: self.dataset.name.clone(),
            query: inst.name(),
            mode,
            outcome,
            nanos,
            cardinality,
        }
    }

    /// Run the full Table 2 suite in both modes (plus the load measurement).
    /// This is the workhorse behind Figures 1c, 3–7.
    pub fn run_suite(&mut self, modes: &[RunMode]) -> Report {
        let mut report = Report::default();
        let (load, _, _) = self.measure_load();
        report.push(load);
        let suite = QueryInstance::full_suite(self.workload.k);
        for inst in &suite {
            for &mode in modes {
                report.push(self.run_instance(inst, mode));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::QueryId;
    use engine_linked::LinkedGraph;
    use gm_model::testkit;

    fn setup() -> (Dataset, Workload) {
        let d = testkit::chain_dataset(300);
        let w = Workload::choose(&d, 7, 16);
        (d, w)
    }

    #[test]
    fn load_measurement_reports_space() {
        let (d, w) = setup();
        let factory = || -> Box<dyn GraphDb> { Box::new(LinkedGraph::v1()) };
        let runner = Runner::new(&factory, &d, &w, BenchConfig::default());
        let (m, space, raw) = runner.measure_load();
        assert_eq!(m.outcome, Outcome::Completed);
        assert!(space > 0);
        assert!(raw > 0);
    }

    #[test]
    fn read_query_reuses_cached_engine() {
        let (d, w) = setup();
        let factory = || -> Box<dyn GraphDb> { Box::new(LinkedGraph::v1()) };
        let mut runner = Runner::new(&factory, &d, &w, BenchConfig::default());
        let q8 = QueryInstance::plain(QueryId::Q8);
        let m1 = runner.run_instance(&q8, RunMode::Isolation);
        assert_eq!(m1.outcome, Outcome::Completed);
        assert_eq!(m1.cardinality, Some(300));
        let m2 = runner.run_instance(&q8, RunMode::Isolation);
        assert_eq!(m2.cardinality, Some(300));
    }

    #[test]
    fn mutations_run_on_fresh_state() {
        let (d, w) = setup();
        let factory = || -> Box<dyn GraphDb> { Box::new(LinkedGraph::v1()) };
        let mut runner = Runner::new(&factory, &d, &w, BenchConfig::default());
        let q18 = QueryInstance::plain(QueryId::Q18);
        // Run deletion twice: both succeed because state is re-loaded.
        let m1 = runner.run_instance(&q18, RunMode::Isolation);
        assert_eq!(m1.outcome, Outcome::Completed, "{:?}", m1.outcome);
        let m2 = runner.run_instance(&q18, RunMode::Isolation);
        assert_eq!(m2.outcome, Outcome::Completed);
        // And a read afterwards still sees the pristine vertex count.
        let q8 = QueryInstance::plain(QueryId::Q8);
        let m3 = runner.run_instance(&q8, RunMode::Isolation);
        assert_eq!(m3.cardinality, Some(300));
    }

    #[test]
    fn batch_mode_rotates_victims() {
        let (d, w) = setup();
        let factory = || -> Box<dyn GraphDb> { Box::new(LinkedGraph::v1()) };
        let mut runner = Runner::new(&factory, &d, &w, BenchConfig::default());
        let q19 = QueryInstance::plain(QueryId::Q19);
        let m = runner.run_instance(&q19, RunMode::Batch);
        assert_eq!(m.outcome, Outcome::Completed, "10 distinct edge victims");
    }

    #[test]
    fn timeout_is_reported() {
        // Large enough that the scan crosses the deadline's clock-check
        // granularity (4096 ticks).
        let d = testkit::chain_dataset(20_000);
        let w = Workload::choose(&d, 7, 16);
        let factory = || -> Box<dyn GraphDb> { Box::new(LinkedGraph::v1()) };
        let mut runner = Runner::new(
            &factory,
            &d,
            &w,
            BenchConfig {
                timeout: Duration::from_nanos(1),
                ..BenchConfig::default()
            },
        );
        let q31 = QueryInstance::plain(QueryId::Q31);
        let m = runner.run_instance(&q31, RunMode::Isolation);
        assert_eq!(m.outcome, Outcome::Timeout);
    }

    #[test]
    fn suite_covers_everything() {
        let (d, w) = setup();
        let factory = || -> Box<dyn GraphDb> { Box::new(LinkedGraph::v1()) };
        let mut runner = Runner::new(
            &factory,
            &d,
            &w,
            BenchConfig {
                batch: 3,
                ..BenchConfig::default()
            },
        );
        let report = runner.run_suite(&[RunMode::Isolation]);
        // Q1 + 40 instances.
        assert_eq!(report.rows.len(), 41);
        let dnf = report.rows.iter().filter(|r| r.outcome.is_dnf()).count();
        assert_eq!(dnf, 0, "linked engine completes the whole suite");
    }
}
